// Thread-safe facade over one history log: appends from the service's
// ordered release path, queries from the network front end.
//
// The FleetService history callback runs on worker threads (serialised by
// the OrderedSink, but on whichever thread released the frame), while the
// IngestServer answers QUERY messages from its own poll thread. The
// HistoryService owns the writer and the query engine behind one mutex:
// Append is the callback target, and each query first flushes buffered
// blocks so a result always reflects every record released before it.
#ifndef NAVARCHOS_HISTORY_HISTORY_SERVICE_H_
#define NAVARCHOS_HISTORY_HISTORY_SERVICE_H_

#include <mutex>
#include <string>

#include "history/history_log.h"
#include "history/query.h"
#include "obs/metrics.h"
#include "util/status.h"

/// \file
/// \brief HistoryService: the mutex-guarded writer + query engine pair
/// that lets ingest append and the network front end query one log.

namespace navarchos::history {

/// One history log served for both appends and queries. Thread-safe; the
/// first append error latches (later appends are dropped) and is surfaced
/// through first_error() and every subsequent query.
class HistoryService {
 public:
  /// Builds the service over `dir` with the given log tuning.
  explicit HistoryService(std::string dir,
                          HistoryConfig config = HistoryConfig());

  /// Opens (creating or recovering) the log directory.
  util::Status Open();

  /// Appends one record; the FleetService history-callback target.
  /// Errors latch into first_error() instead of throwing into the
  /// release path.
  void Append(const HistoryRecord& record);

  /// Flushes buffered blocks to disk.
  util::Status Flush();

  /// Flushes, then answers RANK over the log.
  util::Status Rank(const RankQuery& query, RankResult* out);

  /// Flushes, then answers TIMELINE over the log.
  util::Status Timeline(const TimelineQuery& query, TimelineResult* out);

  /// Flushes, then answers COMOVE over the log.
  util::Status Comove(const ComoveQuery& query, ComoveResult* out);

  /// First append/flush error, if any (OK otherwise).
  util::Status first_error() const;

  /// Writer counters (records appended/skipped, blocks, seals).
  WriterStats writer_stats() const;

  /// Registers the append-path metrics in `registry` and starts
  /// reporting: `history.append_records` (records offered and not dropped
  /// by a latched error), `history.append_bytes` (nominal encoded record
  /// bytes, a deterministic function of each record - not on-disk bytes,
  /// which delta-compression makes layout-dependent) and the
  /// `history.append_us` latency histogram. Observe-only. Call once,
  /// before the first Append; the registry must outlive the service.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// The log directory.
  const std::string& dir() const { return dir_; }

 private:
  /// Flush + latched-error check shared by the query entry points.
  util::Status PrepareQuery();

  const std::string dir_;
  mutable std::mutex mu_;
  HistoryWriter writer_;
  QueryEngine engine_;
  util::Status error_;
  obs::Counter* append_records_ = nullptr;  ///< Null until AttachMetrics.
  obs::Counter* append_bytes_ = nullptr;
  obs::Histogram* append_us_ = nullptr;
};

}  // namespace navarchos::history

#endif  // NAVARCHOS_HISTORY_HISTORY_SERVICE_H_
