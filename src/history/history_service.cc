#include "history/history_service.h"

#include <utility>

namespace navarchos::history {

HistoryService::HistoryService(std::string dir, HistoryConfig config)
    : dir_(std::move(dir)), writer_(config), engine_(dir_) {}

util::Status HistoryService::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_.Open(dir_);
}

void HistoryService::Append(const HistoryRecord& record) {
  const std::uint64_t start =
      append_us_ != nullptr ? obs::MonotonicMicros() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_.ok()) return;  // latched: drop, surface through queries
  error_ = writer_.Append(record);
  if (append_records_ != nullptr) {
    append_records_->Increment();
    // Nominal encoded size of the record's fields (fixed fields + count
    // byte + 4 bytes per top channel); deterministic per record, unlike
    // the delta-compressed on-disk footprint.
    append_bytes_->Add(46 + 4 * record.top_channels.size());
    append_us_->Record(obs::MonotonicMicros() - start);
  }
}

util::Status HistoryService::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_.ok()) return error_;
  error_ = writer_.Flush();
  return error_;
}

util::Status HistoryService::PrepareQuery() {
  if (!error_.ok()) return error_;
  error_ = writer_.Flush();
  return error_;
}

util::Status HistoryService::Rank(const RankQuery& query, RankResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Status status = PrepareQuery();
  if (!status.ok()) return status;
  return engine_.Rank(query, out);
}

util::Status HistoryService::Timeline(const TimelineQuery& query,
                                      TimelineResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Status status = PrepareQuery();
  if (!status.ok()) return status;
  return engine_.Timeline(query, out);
}

util::Status HistoryService::Comove(const ComoveQuery& query,
                                    ComoveResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  util::Status status = PrepareQuery();
  if (!status.ok()) return status;
  return engine_.Comove(query, out);
}

util::Status HistoryService::first_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

WriterStats HistoryService::writer_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writer_.stats();
}

void HistoryService::AttachMetrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  append_us_ = registry->histogram("history.append_us");
  append_bytes_ = registry->counter("history.append_bytes");
  append_records_ = registry->counter("history.append_records");
}

}  // namespace navarchos::history
