// Append-only per-vehicle anomaly history log.
//
// The streaming service scores every live frame, but those scores used to
// leave through the ordered sink and vanish. The history log is the durable
// substrate underneath fleet-level triage ("which vehicles look worst this
// week", "what co-moved around this alarm"): one compact record per scored
// sample, appended in the deterministic OrderedSink release order, stored
// in fixed-size CRC-checked segments that survive a kill -9 mid-write.
//
// On-disk layout (one directory per log):
//
//   v<ID>_<ORDINAL>.hseg   sealed segment (immutable, strict CRC on read)
//   v<ID>_<ORDINAL>.part   the vehicle's active tail segment (append-only)
//
// Segment format (persist::Encoder little-endian encoding throughout):
//
//   header   magic "NHS1" u32 | version u32 | vehicle i32 |
//            base_seq u64 | base_ts i64 | crc32(header bytes) u32
//   block*   length u32 | payload | crc32(payload) u32
//   payload  count u32 | count x record
//   record   dseq u64 | dts i64 | score f64 | threshold f64 | flags u8 |
//            k x channel u32       (k = flags >> 1, alarm bit = flags & 1)
//
// Version-2 segments append a consensus tail to every record:
//
//   record   ... | votes_plus1 u8 | live u8
//
// votes_plus1 is 0 when the sample carried no ensemble verdict and
// votes + 1 otherwise (both fields saturate at 255). Readers accept both
// versions; version-1 records decode with votes = -1, live = 0.
//
// dseq/dts are deltas against the previous record of the segment (the
// header's base for the first one); the delta chain runs across blocks,
// which is safe because only the final block of the active tail can ever
// be torn. Each block is written with a single write() call after its CRC
// is computed, so a crash leaves at most one torn block at the very end of
// one .part file. Readers verify every block CRC: a torn tail block is
// detected, reported, and truncated - never silently served. Sealing is
// atomic via the snapshot temp-file+rename pattern: the segment's bytes
// (mirrored in memory while the .part grows) are rewritten to a temp file,
// renamed to .hseg, and the .part unlinked; a crash between rename and
// unlink leaves both, and the reader/writer prefer the sealed twin.
//
// Idempotent re-append: records carry the admitting frame's global
// sequence number, and several records may share one (a frame can release
// multiple reorder-buffered samples). The writer tracks the last
// (global_seq, sub-index) pair per vehicle - recovered from disk on Open -
// and silently skips re-appends at or below it, so a restored service
// replaying from its checkpoint regenerates the byte-identical records
// without ever duplicating a line of history.
#ifndef NAVARCHOS_HISTORY_HISTORY_LOG_H_
#define NAVARCHOS_HISTORY_HISTORY_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// \brief Append-only per-vehicle anomaly history log: CRC'd delta-encoded
/// segments with torn-tail recovery, an idempotent HistoryWriter and the
/// HistoryReader that scans a log directory back into records.

/// \namespace navarchos::history
/// \brief The anomaly history subsystem: durable per-vehicle score/alarm
/// logs on the persist codecs plus the query engine (RANK / TIMELINE /
/// COMOVE) that turns them into fleet-level triage answers.

namespace navarchos::history {

/// Magic leading every history segment ("NHS1" little-endian).
inline constexpr std::uint32_t kSegmentMagic = 0x3153484Eu;

/// Base layout version of the segment format (records without the consensus
/// tail). Still written for streams that never carry ensemble votes, so an
/// ensemble-disabled run produces byte-identical logs to older builds.
inline constexpr std::uint32_t kSegmentVersion = 1;

/// Segment version whose records end with a two-byte consensus tail
/// (votes_plus1 u8 | live u8). Readers accept both versions; the writer
/// picks per segment from the first record it sees.
inline constexpr std::uint32_t kSegmentVersionVotes = 2;

/// Encoded size of a segment header (magic, version, vehicle, base_seq,
/// base_ts, header CRC).
inline constexpr std::size_t kSegmentHeaderBytes = 4 + 4 + 4 + 8 + 8 + 4;

/// Upper bound on one block's payload; a length field above this in a tail
/// segment is treated as torn garbage, not an allocation request.
inline constexpr std::size_t kMaxBlockBytes = std::size_t{8} << 20;

/// Most contributing channels a record can carry (flags packs k into 7
/// bits).
inline constexpr std::size_t kMaxTopChannels = 127;

/// One scored sample as logged: the anomaly bit and severity of one frame
/// release, attributable to its admitting global sequence number.
struct HistoryRecord {
  std::int32_t vehicle_id = 0;   ///< Vehicle the sample belongs to.
  std::uint64_t global_seq = 0;  ///< Admitting frame's global ingest seq.
  std::int64_t timestamp = 0;    ///< Stream time (minutes) of the sample.
  double score = 0.0;            ///< Score of the worst channel.
  double threshold = 0.0;        ///< Threshold of the worst channel.
  bool alarm = false;            ///< True when this sample raised an alarm.
  /// Contributing score channels, worst first (severity-ratio descending,
  /// ties to the lower channel index), at most kMaxTopChannels entries.
  std::vector<std::uint32_t> top_channels;
  /// Consensus votes of the rolling ensemble for this sample; -1 when the
  /// ensemble was disabled (or the record came from a version-1 segment).
  std::int32_t votes = -1;
  /// Live ensemble members at the time of the vote (0 without an ensemble).
  std::uint32_t ensemble_live = 0;
};

/// Tuning knobs of a history log.
struct HistoryConfig {
  /// Roll (seal) a vehicle's active segment once it reaches this many
  /// bytes. Small segments bound the bytes a torn tail can lose.
  std::size_t segment_bytes = 64 * 1024;
  /// Records buffered per vehicle before a block is written. Flush() writes
  /// a partial block, so durability never waits for a full one.
  std::size_t block_records = 64;
};

/// Counters of one writer's lifetime (diagnostics and bench reporting).
struct WriterStats {
  std::uint64_t records_appended = 0;   ///< Accepted (new) records.
  std::uint64_t records_skipped = 0;    ///< Idempotent re-append skips.
  std::uint64_t blocks_written = 0;     ///< CRC'd blocks written.
  std::uint64_t segments_sealed = 0;    ///< .part files rolled to .hseg.
  std::uint64_t torn_bytes_truncated = 0;  ///< Tail bytes dropped on Open.
};

/// Appends HistoryRecords to a log directory, one segment chain per
/// vehicle. Not thread-safe: the intended caller is the FleetService
/// history callback, which the OrderedSink already serialises.
class HistoryWriter {
 public:
  /// Builds an unopened writer with the given tuning.
  explicit HistoryWriter(HistoryConfig config = HistoryConfig());

  /// Closes (best effort) without flushing buffered records; call Flush()
  /// or Close() first for durability.
  ~HistoryWriter();

  HistoryWriter(const HistoryWriter&) = delete;
  HistoryWriter& operator=(const HistoryWriter&) = delete;

  /// Opens (creating if needed) the log directory: scans existing
  /// segments, truncates any torn tail, and recovers each vehicle's
  /// append cursor so re-appends of already-logged records are skipped.
  util::Status Open(const std::string& dir);

  /// Appends one record (routing by vehicle id; unknown vehicles start a
  /// new segment chain). Records already on disk - at or below the
  /// vehicle's recovered (global_seq, sub) cursor - are skipped, which is
  /// what makes checkpoint-replay after a crash idempotent.
  util::Status Append(const HistoryRecord& record);

  /// Writes every buffered record out as (possibly partial) blocks.
  util::Status Flush();

  /// Flush, then close every file descriptor. The active tails stay
  /// .part files; a later Open resumes them in place.
  util::Status Close();

  /// Lifetime counters.
  const WriterStats& stats() const { return stats_; }

  /// The opened directory (empty before Open).
  const std::string& dir() const { return dir_; }

 private:
  /// Per-vehicle append state: the active tail and the idempotence cursor.
  struct VehicleLog {
    std::uint32_t next_ordinal = 0;  ///< Ordinal the next segment takes.
    int fd = -1;                     ///< Open .part file, -1 when none.
    std::string part_path;           ///< Path of the active .part.
    bool has_active = false;         ///< A tail segment is open.
    /// Record layout of the active tail. A resumed version-1 tail keeps
    /// encoding version-1 records until it seals, even if the stream now
    /// carries votes (they are dropped for that segment only).
    std::uint32_t segment_version = kSegmentVersion;
    std::uint64_t prev_seq = 0;      ///< Delta-chain cursor (seq).
    std::int64_t prev_ts = 0;        ///< Delta-chain cursor (timestamp).
    std::vector<std::uint8_t> mirror;  ///< In-memory copy of the .part.
    std::vector<HistoryRecord> pending;  ///< Records not yet in a block.
    bool has_logged = false;         ///< Any record accepted/recovered.
    std::uint64_t last_seq = 0;      ///< Idempotence cursor: last seq.
    std::uint32_t last_sub = 0;      ///< ... and its sub-index.
    bool has_incoming = false;       ///< Any record offered this lifetime.
    std::uint64_t in_seq = 0;        ///< Incoming-stream cursor (seq).
    std::uint32_t in_sub = 0;        ///< ... and its sub-index.
  };

  util::Status StartSegment(std::int32_t vehicle_id, VehicleLog* log,
                            const HistoryRecord& first);
  util::Status WriteBlock(std::int32_t vehicle_id, VehicleLog* log);
  util::Status SealSegment(std::int32_t vehicle_id, VehicleLog* log);

  HistoryConfig config_;
  std::string dir_;
  bool open_ = false;
  std::map<std::int32_t, VehicleLog> vehicles_;
  WriterStats stats_;
};

/// One vehicle's decoded log: every record in append order.
struct VehicleLogData {
  std::int32_t vehicle_id = 0;
  std::vector<HistoryRecord> records;
};

/// Counters of one directory scan.
struct ReadStats {
  std::size_t segments = 0;         ///< Segments decoded (sealed + tails).
  std::size_t records = 0;          ///< Records decoded in total.
  std::size_t torn_tail_bytes = 0;  ///< Bytes rejected from torn tails.
};

/// Scans a history log directory back into per-vehicle record vectors.
class HistoryReader {
 public:
  /// Reads every vehicle's segment chain under `dir`, in vehicle-id order.
  /// Sealed segments must verify fully (any CRC or decode failure is an
  /// error); the one active tail per vehicle may be torn, in which case
  /// the valid prefix is returned and the torn bytes are counted in
  /// `stats` - torn data is detected and dropped, never served.
  static util::Status ReadDir(const std::string& dir,
                              std::vector<VehicleLogData>* out,
                              ReadStats* stats = nullptr);
};

}  // namespace navarchos::history

#endif  // NAVARCHOS_HISTORY_HISTORY_LOG_H_
