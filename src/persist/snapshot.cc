#include "persist/snapshot.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

namespace navarchos::persist {
namespace {

constexpr char kMagic[8] = {'N', 'A', 'V', 'S', 'N', 'P', '0', '1'};

std::uint32_t ChunkCrc(const SnapshotChunk& chunk) {
  // CRC over tag + payload so a flipped tag byte is detected even when the
  // payload itself is intact.
  std::vector<std::uint8_t> buffer;
  buffer.reserve(chunk.tag.size() + chunk.payload.size());
  buffer.insert(buffer.end(), chunk.tag.begin(), chunk.tag.end());
  buffer.insert(buffer.end(), chunk.payload.begin(), chunk.payload.end());
  return Crc32(buffer.data(), buffer.size());
}

}  // namespace

void Snapshot::Add(std::string tag, Encoder&& encoder) {
  chunks_.push_back(SnapshotChunk{std::move(tag), encoder.TakeBytes()});
}

void Snapshot::Add(std::string tag, std::vector<std::uint8_t> payload) {
  chunks_.push_back(SnapshotChunk{std::move(tag), std::move(payload)});
}

const SnapshotChunk* Snapshot::Find(std::string_view tag) const {
  for (const auto& chunk : chunks_)
    if (chunk.tag == tag) return &chunk;
  return nullptr;
}

std::size_t Snapshot::PayloadBytes() const {
  std::size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.payload.size();
  return total;
}

std::vector<std::uint8_t> SerialiseSnapshot(const Snapshot& snapshot) {
  Encoder encoder;
  for (char c : kMagic) encoder.PutU8(static_cast<std::uint8_t>(c));
  encoder.PutU32(kSnapshotVersion);
  encoder.PutU32(static_cast<std::uint32_t>(snapshot.chunks().size()));
  for (const auto& chunk : snapshot.chunks()) {
    encoder.PutU32(static_cast<std::uint32_t>(chunk.tag.size()));
    for (char c : chunk.tag) encoder.PutU8(static_cast<std::uint8_t>(c));
    encoder.PutU64(chunk.payload.size());
    encoder.PutU32(ChunkCrc(chunk));
    for (std::uint8_t byte : chunk.payload) encoder.PutU8(byte);
  }
  return encoder.TakeBytes();
}

util::Status WriteSnapshot(const std::string& path, const Snapshot& snapshot) {
  const std::vector<std::uint8_t> bytes = SerialiseSnapshot(snapshot);
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::Error("snapshot write: cannot open " + temp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return util::Status::Error("snapshot write: short write to " + temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return util::Status::Error("snapshot write: cannot publish " + path);
  }
  return util::Status();
}

util::Status ParseSnapshot(const std::uint8_t* data, std::size_t size,
                           const std::string& context, Snapshot* out) {
  *out = Snapshot();
  Decoder decoder(data, size);
  for (char expected : kMagic) {
    const std::size_t at = decoder.offset();
    const std::uint8_t byte = decoder.GetU8();
    if (decoder.ok() && byte != static_cast<std::uint8_t>(expected)) {
      decoder.Fail("bad magic byte at offset " + std::to_string(at) +
                   " (not a snapshot file)");
    }
    if (!decoder.ok()) return decoder.ToStatus(context);
  }
  const std::uint32_t version = decoder.GetU32();
  if (decoder.ok() && version != kSnapshotVersion) {
    decoder.Fail("unsupported snapshot version " + std::to_string(version) +
                 " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint32_t count = decoder.GetU32();
  if (!decoder.ok()) return decoder.ToStatus(context);

  Snapshot parsed;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t tag_len = decoder.GetU32();
    SnapshotChunk chunk;
    if (decoder.ok() && tag_len > decoder.remaining()) {
      decoder.Fail("chunk " + std::to_string(i) + " tag length " +
                   std::to_string(tag_len) + " out of bounds");
    }
    if (!decoder.ok()) return decoder.ToStatus(context);
    chunk.tag.reserve(tag_len);
    for (std::uint32_t b = 0; b < tag_len; ++b)
      chunk.tag.push_back(static_cast<char>(decoder.GetU8()));
    const std::uint64_t payload_len = decoder.GetU64();
    const std::uint32_t expected_crc = decoder.GetU32();
    if (decoder.ok() && payload_len > decoder.remaining()) {
      decoder.Fail("chunk " + std::to_string(i) + " (\"" + chunk.tag +
                   "\") payload length " + std::to_string(payload_len) +
                   " out of bounds");
    }
    if (!decoder.ok()) return decoder.ToStatus(context);
    const std::size_t payload_offset = decoder.offset();
    chunk.payload.assign(data + payload_offset,
                         data + payload_offset + payload_len);
    for (std::uint64_t b = 0; b < payload_len; ++b) decoder.GetU8();
    const std::uint32_t found_crc = ChunkCrc(chunk);
    if (found_crc != expected_crc) {
      return util::Status::Error(
          context + ": chunk " + std::to_string(i) + " (\"" + chunk.tag +
          "\") CRC mismatch at offset " + std::to_string(payload_offset) +
          ": expected " + std::to_string(expected_crc) + ", found " +
          std::to_string(found_crc));
    }
    parsed.Add(std::move(chunk.tag), std::move(chunk.payload));
  }
  util::Status status = decoder.ToStatus(context);
  if (!status.ok()) return status;
  *out = std::move(parsed);
  return util::Status();
}

util::Status ReadSnapshot(const std::string& path, Snapshot* out) {
  *out = Snapshot();
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Error("snapshot read: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) return util::Status::Error("snapshot read: I/O error on " + path);
  return ParseSnapshot(bytes.data(), bytes.size(), path, out);
}

util::Status Crc32OfFile(const std::string& path, std::uint32_t* crc,
                         std::uint64_t* size) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::Error("crc32: cannot open " + path);
  std::uint32_t running = Crc32Init();
  std::uint64_t total = 0;
  char buffer[64 * 1024];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    running = Crc32Update(running,
                          reinterpret_cast<const std::uint8_t*>(buffer), got);
    total += got;
  }
  if (in.bad()) return util::Status::Error("crc32: I/O error on " + path);
  if (crc != nullptr) *crc = Crc32Final(running);
  if (size != nullptr) *size = total;
  return util::Status();
}

}  // namespace navarchos::persist
