// Binary encoding primitives of the checkpoint/restore subsystem.
//
// Encoder appends fixed-width little-endian primitives to a byte buffer;
// Decoder reads them back with full bounds checking. Doubles are encoded by
// bit pattern (never through text), so a value restored from a snapshot is
// bit-identical to the value saved - the foundation of the subsystem's
// restore-equals-uninterrupted determinism guarantee.
//
// Decoder robustness contract: no input - truncated, bit-flipped, or
// adversarial - may crash the decoder or trigger an unbounded allocation.
// Every length field is validated against the bytes actually remaining
// before any allocation, and the first malformed read latches an error
// (with its byte offset) after which every further read returns a default.
#ifndef NAVARCHOS_PERSIST_CODEC_H_
#define NAVARCHOS_PERSIST_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file
/// \brief Bounds-checked binary Encoder/Decoder (little-endian, bit-exact
/// doubles) and the CRC32 used to checksum snapshot chunks.

/// \namespace navarchos::persist
/// \brief The checkpoint/restore subsystem: binary codec, versioned
/// checksummed snapshot files, and the Save/Restore plumbing that lets a
/// monitoring service restart mid-stream with bit-identical output.

namespace navarchos::persist {

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes at `data`.
/// Guarantees detection of any single-bit or single-byte corruption of the
/// checksummed region.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

/// Incremental CRC32 over discontiguous spans: start from Crc32Init(),
/// fold each span in with Crc32Update, finish with Crc32Final. The result
/// is bit-identical to Crc32 over the concatenation, so callers (e.g. the
/// wire protocol's header+payload checksum) avoid joining buffers.
std::uint32_t Crc32Init();

/// Folds `size` bytes at `data` into a running CRC started by Crc32Init().
std::uint32_t Crc32Update(std::uint32_t crc, const std::uint8_t* data,
                          std::size_t size);

/// Finalises a running CRC into the Crc32-compatible checksum value.
std::uint32_t Crc32Final(std::uint32_t crc);

/// Append-only binary encoder (little-endian, bit-exact doubles).
class Encoder {
 public:
  /// Appends one byte.
  void PutU8(std::uint8_t value);
  /// Appends a 32-bit unsigned value.
  void PutU32(std::uint32_t value);
  /// Appends a 64-bit unsigned value.
  void PutU64(std::uint64_t value);
  /// Appends a 32-bit signed value (two's complement).
  void PutI32(std::int32_t value);
  /// Appends a 64-bit signed value (two's complement).
  void PutI64(std::int64_t value);
  /// Appends a bool as one byte (0 or 1).
  void PutBool(bool value);
  /// Appends a double by bit pattern (bit-exact round trip, NaN included).
  void PutDouble(double value);
  /// Appends a length-prefixed byte string.
  void PutString(std::string_view value);
  /// Appends a length-prefixed vector of doubles.
  void PutDoubleVec(const std::vector<double>& values);
  /// Appends a row-count-prefixed matrix (vector of double rows).
  void PutDoubleMat(const std::vector<std::vector<double>>& rows);

  /// The encoded bytes so far.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Moves the encoded bytes out of the encoder.
  std::vector<std::uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked binary decoder over a borrowed byte range.
///
/// The first malformed read (out-of-bounds, oversized length prefix, or an
/// explicit Fail) latches `ok() == false` with the failing byte offset;
/// every subsequent read returns a default value without touching the
/// input, so restore code can decode an entire structure and check ok()
/// once at the end.
class Decoder {
 public:
  /// Decodes `size` bytes at `data` (borrowed; must outlive the decoder).
  Decoder(const std::uint8_t* data, std::size_t size);

  /// Decodes a byte vector (borrowed; must outlive the decoder).
  explicit Decoder(const std::vector<std::uint8_t>& bytes);

  /// Reads one byte.
  std::uint8_t GetU8();
  /// Reads a 32-bit unsigned value.
  std::uint32_t GetU32();
  /// Reads a 64-bit unsigned value.
  std::uint64_t GetU64();
  /// Reads a 32-bit signed value.
  std::int32_t GetI32();
  /// Reads a 64-bit signed value.
  std::int64_t GetI64();
  /// Reads a bool; any byte other than 0/1 fails the decoder.
  bool GetBool();
  /// Reads a double by bit pattern.
  double GetDouble();
  /// Reads a length-prefixed byte string.
  std::string GetString();
  /// Reads a length-prefixed vector of doubles.
  std::vector<double> GetDoubleVec();
  /// Reads a row-count-prefixed matrix of doubles.
  std::vector<std::vector<double>> GetDoubleMat();

  /// True until the first malformed read or Fail().
  bool ok() const { return error_.empty(); }

  /// Description of the first failure; empty while ok().
  const std::string& error() const { return error_; }

  /// Current read offset in bytes.
  std::size_t offset() const { return offset_; }

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - offset_; }

  /// Latches a semantic validation failure (recorded at the current
  /// offset). No-op if the decoder already failed.
  void Fail(const std::string& message);

  /// Converts the decoder state to a Status: OK while ok() and fully
  /// consumed, an error naming `context` and the failing offset otherwise.
  util::Status ToStatus(std::string_view context) const;

 private:
  /// Reserves `n` bytes for reading; latches an error when unavailable.
  bool Take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  std::string error_;
};

}  // namespace navarchos::persist

#endif  // NAVARCHOS_PERSIST_CODEC_H_
