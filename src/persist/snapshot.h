// Versioned, checksummed snapshot files: the durable container of the
// checkpoint/restore subsystem.
//
// A Snapshot is an ordered sequence of tagged chunks (tag string + opaque
// payload). On disk it is a tagged chunk stream:
//
//   offset 0   magic     "NAVSNP01"                        (8 bytes)
//   offset 8   version   u32, little-endian                (currently 1)
//   offset 12  count     u32, number of chunks
//   then, per chunk:
//              tag_len   u32
//              tag       tag_len bytes (UTF-8, no NUL)
//              size      u64, payload bytes
//              crc32     u32 over tag bytes + payload bytes
//              payload   size bytes
//   EOF exactly after the last chunk (trailing bytes are an error).
//
// Writes are atomic: the stream goes to a process-unique temp file that is
// published with std::filesystem::rename (same idiom as the bench grid
// cache), so a reader - including a restore racing a crash - never observes
// a torn snapshot. Reads verify magic, version, every bound and every
// chunk CRC before any payload is exposed; any corruption yields a Status
// error naming the file, offset, and expected-vs-found CRC, never a crash.
//
// Compatibility policy: the version field is bumped on any layout change;
// readers reject snapshots whose version they do not know (no silent
// best-effort decoding of foreign layouts). Chunk payloads carry their own
// per-subsystem state version so subsystems can evolve independently.
#ifndef NAVARCHOS_PERSIST_SNAPSHOT_H_
#define NAVARCHOS_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "persist/codec.h"
#include "util/status.h"

/// \file
/// \brief Snapshot (an ordered tagged-chunk container) and its durable,
/// CRC-checked, atomically-written file format.

namespace navarchos::persist {

/// Current snapshot file-format version (see the compatibility policy in
/// the header comment).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// One tagged chunk of a snapshot: an opaque payload labelled by the
/// subsystem that owns it (e.g. "service/meta", "lane/3").
struct SnapshotChunk {
  std::string tag;                    ///< Owner label; unique per snapshot.
  std::vector<std::uint8_t> payload;  ///< Opaque encoded bytes.
};

/// An ordered collection of tagged chunks - the in-memory form of a
/// snapshot file.
class Snapshot {
 public:
  /// Appends a chunk holding the encoder's bytes under `tag`.
  void Add(std::string tag, Encoder&& encoder);

  /// Appends a chunk holding raw payload bytes under `tag`.
  void Add(std::string tag, std::vector<std::uint8_t> payload);

  /// Returns the first chunk tagged `tag`, or nullptr when absent.
  const SnapshotChunk* Find(std::string_view tag) const;

  /// All chunks in append order.
  const std::vector<SnapshotChunk>& chunks() const { return chunks_; }

  /// Sum of payload sizes in bytes (excludes framing).
  std::size_t PayloadBytes() const;

 private:
  std::vector<SnapshotChunk> chunks_;
};

/// Serialises `snapshot` to `path` atomically (temp file + rename). Returns
/// an error Status when the file cannot be written or published.
util::Status WriteSnapshot(const std::string& path, const Snapshot& snapshot);

/// Parses the snapshot file at `path` into `out`, verifying magic, version,
/// all bounds and every chunk's CRC32. On any corruption - truncation, bit
/// flips, version mismatch - returns an error Status naming the file and
/// byte offset (and expected-vs-found CRC for checksum failures); `out` is
/// left empty. Never crashes on malformed input.
util::Status ReadSnapshot(const std::string& path, Snapshot* out);

/// In-memory variant of ReadSnapshot over `size` bytes at `data`;
/// `context` names the source in error messages.
util::Status ParseSnapshot(const std::uint8_t* data, std::size_t size,
                           const std::string& context, Snapshot* out);

/// Serialises `snapshot` to its byte-stream form (the exact file contents).
std::vector<std::uint8_t> SerialiseSnapshot(const Snapshot& snapshot);

/// Streams the file at `path` through CRC32, writing the checksum to `crc`
/// and the byte count to `size` (either may be null). Used by fleet
/// manifests to fingerprint their per-shard snapshot files.
util::Status Crc32OfFile(const std::string& path, std::uint32_t* crc,
                         std::uint64_t* size);

}  // namespace navarchos::persist

#endif  // NAVARCHOS_PERSIST_SNAPSHOT_H_
