#include "persist/codec.h"

#include <array>
#include <bit>
#include <cstring>

namespace navarchos::persist {
namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  return Crc32Final(Crc32Update(Crc32Init(), data, size));
}

std::uint32_t Crc32Init() { return 0xFFFFFFFFu; }

std::uint32_t Crc32Update(std::uint32_t crc, const std::uint8_t* data,
                          std::size_t size) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  return crc;
}

std::uint32_t Crc32Final(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

// ------------------------------------------------------------------ Encoder

void Encoder::PutU8(std::uint8_t value) { bytes_.push_back(value); }

void Encoder::PutU32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void Encoder::PutU64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void Encoder::PutI32(std::int32_t value) { PutU32(static_cast<std::uint32_t>(value)); }

void Encoder::PutI64(std::int64_t value) { PutU64(static_cast<std::uint64_t>(value)); }

void Encoder::PutBool(bool value) { PutU8(value ? 1 : 0); }

void Encoder::PutDouble(double value) { PutU64(std::bit_cast<std::uint64_t>(value)); }

void Encoder::PutString(std::string_view value) {
  PutU64(value.size());
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void Encoder::PutDoubleVec(const std::vector<double>& values) {
  PutU64(values.size());
  for (double value : values) PutDouble(value);
}

void Encoder::PutDoubleMat(const std::vector<std::vector<double>>& rows) {
  PutU64(rows.size());
  for (const auto& row : rows) PutDoubleVec(row);
}

// ------------------------------------------------------------------ Decoder

Decoder::Decoder(const std::uint8_t* data, std::size_t size)
    : data_(data), size_(size) {}

Decoder::Decoder(const std::vector<std::uint8_t>& bytes)
    : data_(bytes.data()), size_(bytes.size()) {}

bool Decoder::Take(std::size_t n) {
  if (!ok()) return false;
  if (n > size_ - offset_) {
    error_ = "truncated read of " + std::to_string(n) + " byte(s) at offset " +
             std::to_string(offset_) + " (" + std::to_string(size_ - offset_) +
             " remaining)";
    return false;
  }
  return true;
}

std::uint8_t Decoder::GetU8() {
  if (!Take(1)) return 0;
  return data_[offset_++];
}

std::uint32_t Decoder::GetU32() {
  if (!Take(4)) return 0;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(data_[offset_ + static_cast<std::size_t>(i)])
             << (8 * i);
  offset_ += 4;
  return value;
}

std::uint64_t Decoder::GetU64() {
  if (!Take(8)) return 0;
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(data_[offset_ + static_cast<std::size_t>(i)])
             << (8 * i);
  offset_ += 8;
  return value;
}

std::int32_t Decoder::GetI32() { return static_cast<std::int32_t>(GetU32()); }

std::int64_t Decoder::GetI64() { return static_cast<std::int64_t>(GetU64()); }

bool Decoder::GetBool() {
  const std::uint8_t value = GetU8();
  if (ok() && value > 1) Fail("invalid bool byte " + std::to_string(value));
  return value == 1;
}

double Decoder::GetDouble() { return std::bit_cast<double>(GetU64()); }

std::string Decoder::GetString() {
  const std::uint64_t length = GetU64();
  // Validate before allocating: a corrupted length prefix must produce a
  // clean error, never a gigantic allocation or an out-of-bounds read.
  if (!ok() || !Take(static_cast<std::size_t>(length))) {
    if (ok()) Fail("string length out of bounds");
    return {};
  }
  std::string value(reinterpret_cast<const char*>(data_ + offset_),
                    static_cast<std::size_t>(length));
  offset_ += static_cast<std::size_t>(length);
  return value;
}

std::vector<double> Decoder::GetDoubleVec() {
  const std::uint64_t count = GetU64();
  if (!ok() || count > remaining() / 8) {
    if (ok()) Fail("double-vector length out of bounds");
    return {};
  }
  std::vector<double> values(static_cast<std::size_t>(count));
  for (auto& value : values) value = GetDouble();
  return values;
}

std::vector<std::vector<double>> Decoder::GetDoubleMat() {
  const std::uint64_t rows = GetU64();
  // Each row costs at least its 8-byte length prefix.
  if (!ok() || rows > remaining() / 8) {
    if (ok()) Fail("matrix row count out of bounds");
    return {};
  }
  std::vector<std::vector<double>> matrix(static_cast<std::size_t>(rows));
  for (auto& row : matrix) {
    row = GetDoubleVec();
    if (!ok()) return {};
  }
  return matrix;
}

void Decoder::Fail(const std::string& message) {
  if (!ok()) return;
  error_ = message + " at offset " + std::to_string(offset_);
}

util::Status Decoder::ToStatus(std::string_view context) const {
  if (!ok()) return util::Status::Error(std::string(context) + ": " + error_);
  if (remaining() != 0) {
    return util::Status::Error(std::string(context) + ": " +
                               std::to_string(remaining()) +
                               " trailing byte(s) after offset " +
                               std::to_string(offset_));
  }
  return util::Status();
}

}  // namespace navarchos::persist
