// Fleet observability: one registry of named counters, gauges and
// deterministic log-scale histograms, snapshotted into a codec-encodable
// StatsSnapshot.
//
// The system that watches vehicles must be able to watch itself. Before
// this subsystem, counters were scattered across ServiceStats, ServerStats
// and EnsembleStats with no histograms, no unified export path and no
// cross-shard view. The MetricsRegistry is the one source of truth: every
// layer (service, runtime pool, ensemble, history, net) registers its
// counters here, the existing stats structs are views over the registry,
// and a point-in-time StatsSnapshot travels through the persist codecs -
// over the wire as a STATS message, or merged across shards into one
// fleet view.
//
// Design rules, in force everywhere a metric is touched:
//   * observe-only: no code path may branch on a metric value. Metrics
//     never feed back into admission, scheduling or scoring, so the house
//     determinism invariant (bit-identical outputs at any thread count,
//     shard count, live or replayed, across kill -9 + restore) holds with
//     observability enabled - it observes the run, it never steers it.
//   * cheap on the hot path: counters and histogram buckets are relaxed
//     atomics; one increment is one uncontended fetch_add, never a lock.
//   * deterministic structure: histogram buckets are fixed powers of two,
//     so two histograms fed the same values have bit-identical bucket
//     counts regardless of threading, and merging per-shard histograms in
//     any order equals the unsharded histogram (integer addition is
//     associative and commutative - no float accumulation anywhere).
#ifndef NAVARCHOS_OBS_METRICS_H_
#define NAVARCHOS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "persist/codec.h"

/// \file
/// \brief The observability subsystem: MetricsRegistry (named counters,
/// gauges, log-scale histograms), the codec-encodable StatsSnapshot, the
/// order-independent cross-shard merge and the diffable text rendering.

/// \namespace navarchos::obs
/// \brief Fleet observability: the unified metrics registry every layer
/// reports into, and the snapshot/merge/serve machinery above it.

namespace navarchos::obs {

/// Monotonic counter: a named, relaxed-atomic event count. Increments are
/// one uncontended fetch_add - cheap enough for per-frame hot paths.
/// Counters are zeroed only by construction; Set exists solely for the
/// checkpoint-restore path, which reinstates a prior life's totals.
class Counter {
 public:
  /// Adds one.
  void Increment() { Add(1); }

  /// Adds `delta`.
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Adds one, assuming the caller serializes every writer of this counter
  /// externally (e.g. all increments happen under one mutex). Compiles to a
  /// plain load/add/store instead of a locked read-modify-write, which
  /// matters on per-frame hot paths; concurrent readers stay race-free
  /// because the load and store are still atomic. Never mix with
  /// Increment()/Add() from unserialized threads.
  void IncrementSingleWriter() {
    value_.store(value_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  }

  /// Overwrites the count (checkpoint restore and snapshot-time refresh of
  /// derived counters only; never a reset path).
  void Set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

  /// Current count.
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Gauge: a named instantaneous or high-water-mark value. Set overwrites;
/// UpdateMax ratchets upward (the lane-depth high-water use), implemented
/// as a compare-exchange loop on a relaxed atomic.
class Gauge {
 public:
  /// Overwrites the value.
  void Set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

  /// Raises the value to `candidate` when larger (high-water mark).
  void UpdateMax(std::uint64_t candidate) {
    std::uint64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Current value.
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket log-scale histogram of non-negative integer values
/// (latencies in microseconds, sizes in bytes, depths in items).
///
/// Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b). The
/// boundaries are fixed powers of two - a pure function of the value, not
/// of the data seen so far - so bucket placement is deterministic, two
/// histograms fed the same values are bit-identical, and per-shard
/// histograms merge by plain bucket addition in any order. All cells are
/// relaxed atomics: recording is lock-free and safe from any thread.
class Histogram {
 public:
  /// Number of buckets: the zero bucket plus one per bit of a u64.
  static constexpr std::size_t kBucketCount = 65;

  /// Lowest value bucket `bucket` holds (0, 1, 2, 4, 8, ...).
  static std::uint64_t BucketLowerBound(std::size_t bucket);

  /// Index of the bucket holding `value`.
  static std::size_t BucketOf(std::uint64_t value);

  /// Records one observation.
  void Record(std::uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Observations recorded so far.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of all recorded values (exact: u64 addition, no floats).
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Count in bucket `bucket`.
  std::uint64_t bucket(std::size_t bucket_index) const {
    return buckets_[bucket_index].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One named scalar sample of a snapshot (a counter or a gauge).
struct ScalarSample {
  std::string name;          ///< Registry name of the metric.
  std::uint64_t value = 0;   ///< Value at snapshot time.
};

/// One named histogram sample of a snapshot.
struct HistogramSample {
  std::string name;         ///< Registry name of the metric.
  std::uint64_t count = 0;  ///< Observations at snapshot time.
  std::uint64_t sum = 0;    ///< Sum of observed values.
  /// Per-bucket counts (Histogram's fixed power-of-two buckets).
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};

  /// Upper bucket bound covering quantile `q` in [0, 1] - the histogram
  /// estimate of e.g. p50/p99 (0 when the histogram is empty).
  std::uint64_t ValueAtQuantile(double q) const;
};

/// A point-in-time copy of one registry (or a merge of several): every
/// sample list is sorted by name, so two snapshots of equal state compare
/// and render identically. Encoded with the persist codecs for checkpoints
/// and the wire STATS message.
struct StatsSnapshot {
  std::vector<ScalarSample> counters;        ///< Name-sorted counters.
  std::vector<ScalarSample> gauges;          ///< Name-sorted gauges.
  std::vector<HistogramSample> histograms;   ///< Name-sorted histograms.

  /// Value of counter `name` (0 when absent).
  std::uint64_t CounterValue(const std::string& name) const;

  /// Value of gauge `name` (0 when absent).
  std::uint64_t GaugeValue(const std::string& name) const;

  /// Histogram sample `name` (null when absent; pointer into this
  /// snapshot, invalidated by any mutation).
  const HistogramSample* FindHistogram(const std::string& name) const;
};

/// The process-wide (or per-shard) registry of named metrics. Lookup takes
/// a mutex once per metric per call site - callers cache the returned
/// pointer and increment lock-free afterwards. Registered metrics live as
/// long as the registry; the returned pointers are stable.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use.
  Counter* counter(const std::string& name);

  /// Returns the gauge named `name`, creating it on first use.
  Gauge* gauge(const std::string& name);

  /// Returns the histogram named `name`, creating it on first use.
  Histogram* histogram(const std::string& name);

  /// Point-in-time copy of every registered metric, name-sorted.
  StatsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;  ///< Guards the maps; values are atomics.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Merges `from` into `into`: counters and histogram cells add, gauges
/// take the maximum (high-water semantics), names union. Pure integer
/// arithmetic, so merging any number of snapshots in any order yields the
/// identical result - the property that makes the wire-scraped per-shard
/// merge equal the in-process fleet aggregate.
void MergeSnapshot(StatsSnapshot* into, const StatsSnapshot& from);

/// Appends the snapshot's encoding (versioned, name-sorted) to `encoder`.
void EncodeStatsSnapshot(persist::Encoder& encoder,
                         const StatsSnapshot& snapshot);

/// Decodes a snapshot written by EncodeStatsSnapshot. Returns false (with
/// the decoder failed) on any malformed input; claimed element counts are
/// bounded by the remaining payload before any allocation (the codec
/// robustness contract).
bool DecodeStatsSnapshot(persist::Decoder& decoder, StatsSnapshot* out);

/// Renders the snapshot as diffable text: one line per metric, sorted by
/// kind then name ("counter <name> <value>", "gauge <name> <value>",
/// "histogram <name> count=<n> sum=<s> p50=<v> p99=<v>"). Two equal
/// snapshots render byte-identically.
std::string FormatSnapshot(const StatsSnapshot& snapshot);

/// Monotonic wall-clock microseconds (steady clock), the time base of
/// every latency histogram. Never used for scheduling decisions - the
/// observe-only rule keeps wall clock out of all outputs.
std::uint64_t MonotonicMicros();

}  // namespace navarchos::obs

#endif  // NAVARCHOS_OBS_METRICS_H_
