#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace navarchos::obs {

namespace {

/// Layout version of the encoded StatsSnapshot, bumped on any incompatible
/// change to the encoding below.
constexpr std::uint32_t kSnapshotVersion = 1;

/// Minimum encoded size of one scalar sample: a length-prefixed name (the
/// prefix alone is 4 bytes) plus the u64 value.
constexpr std::size_t kMinScalarBytes = 4 + 8;

/// Minimum encoded size of one histogram sample: name prefix, count, sum
/// and every bucket cell.
constexpr std::size_t kMinHistogramBytes =
    4 + 8 + 8 + Histogram::kBucketCount * 8;

/// Binary search for `name` in a name-sorted sample list.
template <typename Sample>
const Sample* FindByName(const std::vector<Sample>& samples,
                         const std::string& name) {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const Sample& sample, const std::string& key) {
        return sample.name < key;
      });
  if (it == samples.end() || it->name != name) return nullptr;
  return &*it;
}

/// Merges name-sorted `from` into name-sorted `into`, combining samples of
/// equal name with `combine` and inserting the rest - a linear merge that
/// keeps the result sorted.
template <typename Sample, typename Combine>
void MergeSorted(std::vector<Sample>* into, const std::vector<Sample>& from,
                 Combine combine) {
  std::vector<Sample> merged;
  merged.reserve(into->size() + from.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < into->size() && b < from.size()) {
    if ((*into)[a].name < from[b].name) {
      merged.push_back(std::move((*into)[a++]));
    } else if (from[b].name < (*into)[a].name) {
      merged.push_back(from[b++]);
    } else {
      Sample combined = std::move((*into)[a++]);
      combine(&combined, from[b++]);
      merged.push_back(std::move(combined));
    }
  }
  while (a < into->size()) merged.push_back(std::move((*into)[a++]));
  while (b < from.size()) merged.push_back(from[b++]);
  *into = std::move(merged);
}

void EncodeScalars(persist::Encoder& encoder,
                   const std::vector<ScalarSample>& samples) {
  encoder.PutU32(static_cast<std::uint32_t>(samples.size()));
  for (const ScalarSample& sample : samples) {
    encoder.PutString(sample.name);
    encoder.PutU64(sample.value);
  }
}

bool DecodeScalars(persist::Decoder& decoder,
                   std::vector<ScalarSample>* out) {
  const std::uint32_t count = decoder.GetU32();
  if (decoder.ok() && count > decoder.remaining() / kMinScalarBytes)
    decoder.Fail("scalar sample count exceeds payload size");
  if (!decoder.ok()) return false;
  out->clear();
  out->reserve(count);
  std::string previous;
  for (std::uint32_t i = 0; i < count; ++i) {
    ScalarSample sample;
    sample.name = decoder.GetString();
    sample.value = decoder.GetU64();
    if (!decoder.ok()) return false;
    // The sort order is part of the format: it makes equal snapshots
    // encode identically, and lets lookups binary-search.
    if (i > 0 && !(previous < sample.name)) {
      decoder.Fail("snapshot samples not strictly name-sorted");
      return false;
    }
    previous = sample.name;
    out->push_back(std::move(sample));
  }
  return decoder.ok();
}

}  // namespace

// ------------------------------------------------------------------ Histogram

std::uint64_t Histogram::BucketLowerBound(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

std::size_t Histogram::BucketOf(std::uint64_t value) {
  if (value == 0) return 0;
  return static_cast<std::size_t>(std::bit_width(value));
}

// ------------------------------------------------------------ HistogramSample

std::uint64_t HistogramSample::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  // The observation with (1-based) rank ceil(q * count), found by walking
  // the cumulative bucket counts - integer arithmetic after the rank.
  std::uint64_t rank =
      static_cast<std::uint64_t>(clamped * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      // Upper bound of the bucket: lower bound of the next one, minus one.
      if (b == 0) return 0;
      if (b + 1 >= buckets.size()) return ~std::uint64_t{0};
      return Histogram::BucketLowerBound(b + 1) - 1;
    }
  }
  return Histogram::BucketLowerBound(buckets.size() - 1);
}

// --------------------------------------------------------------- StatsSnapshot

std::uint64_t StatsSnapshot::CounterValue(const std::string& name) const {
  const ScalarSample* sample = FindByName(counters, name);
  return sample == nullptr ? 0 : sample->value;
}

std::uint64_t StatsSnapshot::GaugeValue(const std::string& name) const {
  const ScalarSample* sample = FindByName(gauges, name);
  return sample == nullptr ? 0 : sample->value;
}

const HistogramSample* StatsSnapshot::FindHistogram(
    const std::string& name) const {
  return FindByName(histograms, name);
}

// -------------------------------------------------------------- MetricsRegistry

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

StatsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snapshot.counters.push_back({name, counter->value()});
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snapshot.gauges.push_back({name, gauge->value()});
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    for (std::size_t b = 0; b < Histogram::kBucketCount; ++b)
      sample.buckets[b] = histogram->bucket(b);
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;  // std::map iteration is already name-sorted
}

// ---------------------------------------------------------------------- merge

void MergeSnapshot(StatsSnapshot* into, const StatsSnapshot& from) {
  MergeSorted(&into->counters, from.counters,
              [](ScalarSample* a, const ScalarSample& b) {
                a->value += b.value;
              });
  MergeSorted(&into->gauges, from.gauges,
              [](ScalarSample* a, const ScalarSample& b) {
                a->value = std::max(a->value, b.value);
              });
  MergeSorted(&into->histograms, from.histograms,
              [](HistogramSample* a, const HistogramSample& b) {
                a->count += b.count;
                a->sum += b.sum;
                for (std::size_t i = 0; i < a->buckets.size(); ++i)
                  a->buckets[i] += b.buckets[i];
              });
}

// ---------------------------------------------------------------------- codec

void EncodeStatsSnapshot(persist::Encoder& encoder,
                         const StatsSnapshot& snapshot) {
  encoder.PutU32(kSnapshotVersion);
  EncodeScalars(encoder, snapshot.counters);
  EncodeScalars(encoder, snapshot.gauges);
  encoder.PutU32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const HistogramSample& sample : snapshot.histograms) {
    encoder.PutString(sample.name);
    encoder.PutU64(sample.count);
    encoder.PutU64(sample.sum);
    for (const std::uint64_t cell : sample.buckets) encoder.PutU64(cell);
  }
}

bool DecodeStatsSnapshot(persist::Decoder& decoder, StatsSnapshot* out) {
  const std::uint32_t version = decoder.GetU32();
  if (decoder.ok() && version != kSnapshotVersion) {
    decoder.Fail("unsupported stats snapshot version " +
                 std::to_string(version));
    return false;
  }
  if (!DecodeScalars(decoder, &out->counters)) return false;
  if (!DecodeScalars(decoder, &out->gauges)) return false;
  const std::uint32_t count = decoder.GetU32();
  if (decoder.ok() && count > decoder.remaining() / kMinHistogramBytes)
    decoder.Fail("histogram sample count exceeds payload size");
  if (!decoder.ok()) return false;
  out->histograms.clear();
  out->histograms.reserve(count);
  std::string previous;
  for (std::uint32_t i = 0; i < count; ++i) {
    HistogramSample sample;
    sample.name = decoder.GetString();
    sample.count = decoder.GetU64();
    sample.sum = decoder.GetU64();
    for (std::uint64_t& cell : sample.buckets) cell = decoder.GetU64();
    if (!decoder.ok()) return false;
    if (i > 0 && !(previous < sample.name)) {
      decoder.Fail("snapshot samples not strictly name-sorted");
      return false;
    }
    // Internal consistency: the cells must account for every observation,
    // so a flipped count or bucket byte cannot slip through as a merely
    // different-looking histogram.
    std::uint64_t total = 0;
    for (const std::uint64_t cell : sample.buckets) total += cell;
    if (total != sample.count) {
      decoder.Fail("histogram bucket cells do not sum to its count");
      return false;
    }
    previous = sample.name;
    out->histograms.push_back(std::move(sample));
  }
  return decoder.ok();
}

// --------------------------------------------------------------------- render

std::string FormatSnapshot(const StatsSnapshot& snapshot) {
  std::string text;
  char line[256];
  for (const ScalarSample& sample : snapshot.counters) {
    std::snprintf(line, sizeof(line), "counter %s %" PRIu64 "\n",
                  sample.name.c_str(), sample.value);
    text += line;
  }
  for (const ScalarSample& sample : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "gauge %s %" PRIu64 "\n",
                  sample.name.c_str(), sample.value);
    text += line;
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%" PRIu64 " sum=%" PRIu64 " p50=%" PRIu64
                  " p99=%" PRIu64 "\n",
                  sample.name.c_str(), sample.count, sample.sum,
                  sample.ValueAtQuantile(0.5), sample.ValueAtQuantile(0.99));
    text += line;
  }
  return text;
}

std::uint64_t MonotonicMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace navarchos::obs
