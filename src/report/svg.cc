#include "report/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace navarchos::report {
namespace {

constexpr int kMarginLeft = 56;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 34;
constexpr int kMarginBottom = 48;

std::string Escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

void OpenDocument(std::ostringstream& svg, int width, int height,
                  const std::string& title) {
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << width / 2 << "\" y=\"20\" text-anchor=\"middle\" "
         "font-size=\"14\" font-weight=\"bold\">"
      << Escape(title) << "</text>\n";
}

void DrawYAxis(std::ostringstream& svg, double y_max, int plot_left, int plot_top,
               int plot_bottom, int plot_right) {
  const int ticks = 5;
  for (int t = 0; t <= ticks; ++t) {
    const double value = y_max * t / ticks;
    const double y = plot_bottom - (plot_bottom - plot_top) *
                                       (value / std::max(1e-12, y_max));
    svg << "<line x1=\"" << plot_left << "\" y1=\"" << y << "\" x2=\"" << plot_right
        << "\" y2=\"" << y << "\" stroke=\"#dddddd\"/>\n";
    char label[32];
    std::snprintf(label, sizeof(label), "%.2g", value);
    svg << "<text x=\"" << plot_left - 6 << "\" y=\"" << y + 4
        << "\" text-anchor=\"end\" font-size=\"10\">" << label << "</text>\n";
  }
}

}  // namespace

const std::vector<std::string>& ColourCycle() {
  static const std::vector<std::string> kColours = {
      "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb"};
  return kColours;
}

std::string RenderBarChart(const BarChart& chart) {
  NAVARCHOS_CHECK(!chart.groups.empty());
  NAVARCHOS_CHECK(!chart.series.empty());
  std::ostringstream svg;
  OpenDocument(svg, chart.width, chart.height, chart.title);

  const int plot_left = kMarginLeft;
  const int plot_right = chart.width - kMarginRight;
  const int plot_top = kMarginTop;
  const int plot_bottom = chart.height - kMarginBottom;
  DrawYAxis(svg, chart.y_max, plot_left, plot_top, plot_bottom, plot_right);

  const double group_width =
      static_cast<double>(plot_right - plot_left) / chart.groups.size();
  const double bar_width = group_width * 0.8 / chart.series.size();

  for (std::size_t g = 0; g < chart.groups.size(); ++g) {
    const double group_x = plot_left + group_width * static_cast<double>(g);
    for (std::size_t s = 0; s < chart.series.size(); ++s) {
      const BarSeries& series = chart.series[s];
      NAVARCHOS_CHECK(series.values.size() == chart.groups.size());
      const double value = std::clamp(series.values[g], 0.0, chart.y_max);
      const double bar_height =
          (plot_bottom - plot_top) * value / std::max(1e-12, chart.y_max);
      const double x = group_x + group_width * 0.1 + bar_width * static_cast<double>(s);
      svg << "<rect x=\"" << x << "\" y=\"" << plot_bottom - bar_height
          << "\" width=\"" << bar_width * 0.92 << "\" height=\"" << bar_height
          << "\" fill=\"" << series.colour << "\"/>\n";
    }
    svg << "<text x=\"" << group_x + group_width / 2 << "\" y=\""
        << plot_bottom + 16 << "\" text-anchor=\"middle\" font-size=\"11\">"
        << Escape(chart.groups[g]) << "</text>\n";
  }

  // Legend.
  double legend_x = plot_left;
  const int legend_y = chart.height - 14;
  for (const BarSeries& series : chart.series) {
    svg << "<rect x=\"" << legend_x << "\" y=\"" << legend_y - 9
        << "\" width=\"10\" height=\"10\" fill=\"" << series.colour << "\"/>\n";
    svg << "<text x=\"" << legend_x + 14 << "\" y=\"" << legend_y
        << "\" font-size=\"11\">" << Escape(series.label) << "</text>\n";
    legend_x += 18.0 + 7.0 * static_cast<double>(series.label.size()) + 14.0;
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string RenderTraceChart(const TraceChart& chart) {
  NAVARCHOS_CHECK(!chart.series.empty());
  std::ostringstream svg;
  OpenDocument(svg, chart.width, chart.height, chart.title);

  const int plot_left = kMarginLeft;
  const int plot_right = chart.width - kMarginRight;
  const int plot_top = kMarginTop;
  const int plot_bottom = chart.height - kMarginBottom;

  // Data ranges.
  double x_min = 1e300, x_max = -1e300, y_min = 0.0, y_max = -1e300;
  for (const TraceSeries& series : chart.series) {
    NAVARCHOS_CHECK(series.x.size() == series.y.size());
    for (double x : series.x) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
    }
    for (double y : series.y) y_max = std::max(y_max, y);
  }
  if (!(x_max > x_min)) x_max = x_min + 1.0;
  if (!(y_max > y_min)) y_max = y_min + 1.0;
  y_max *= 1.05;

  auto to_px_x = [&](double x) {
    return plot_left + (plot_right - plot_left) * (x - x_min) / (x_max - x_min);
  };
  auto to_px_y = [&](double y) {
    return plot_bottom - (plot_bottom - plot_top) * (y - y_min) / (y_max - y_min);
  };

  DrawYAxis(svg, y_max, plot_left, plot_top, plot_bottom, plot_right);

  for (const TraceMarker& marker : chart.markers) {
    const double x = to_px_x(marker.x);
    svg << "<line x1=\"" << x << "\" y1=\"" << plot_top << "\" x2=\"" << x
        << "\" y2=\"" << plot_bottom << "\" stroke=\"" << marker.colour
        << "\" stroke-width=\"1.5\"/>\n";
    svg << "<text x=\"" << x + 3 << "\" y=\"" << plot_top + 10
        << "\" font-size=\"10\" fill=\"" << marker.colour << "\">"
        << Escape(marker.label) << "</text>\n";
  }

  for (const TraceSeries& series : chart.series) {
    if (series.x.empty()) continue;
    svg << "<polyline fill=\"none\" stroke=\"" << series.colour
        << "\" stroke-width=\"1.2\"";
    if (series.dashed) svg << " stroke-dasharray=\"5,4\"";
    svg << " points=\"";
    for (std::size_t i = 0; i < series.x.size(); ++i)
      svg << to_px_x(series.x[i]) << "," << to_px_y(series.y[i]) << " ";
    svg << "\"/>\n";
  }

  // Legend + x label.
  double legend_x = plot_left;
  const int legend_y = chart.height - 10;
  for (const TraceSeries& series : chart.series) {
    svg << "<line x1=\"" << legend_x << "\" y1=\"" << legend_y - 4 << "\" x2=\""
        << legend_x + 14 << "\" y2=\"" << legend_y - 4 << "\" stroke=\""
        << series.colour << "\" stroke-width=\"2\""
        << (series.dashed ? " stroke-dasharray=\"5,4\"" : "") << "/>\n";
    svg << "<text x=\"" << legend_x + 18 << "\" y=\"" << legend_y
        << "\" font-size=\"10\">" << Escape(series.label) << "</text>\n";
    legend_x += 24.0 + 6.5 * static_cast<double>(series.label.size()) + 10.0;
  }
  svg << "<text x=\"" << (plot_left + plot_right) / 2 << "\" y=\""
      << plot_bottom + 30 << "\" text-anchor=\"middle\" font-size=\"11\">"
      << Escape(chart.x_label) << "</text>\n";
  svg << "</svg>\n";
  return svg.str();
}

util::Status WriteSvg(const std::string& path, const std::string& svg) {
  std::ofstream out(path);
  if (!out) return util::Status::Error("cannot open for writing: " + path);
  out << svg;
  out.flush();
  if (!out) return util::Status::Error("write failed: " + path);
  return util::Status();
}

}  // namespace navarchos::report
