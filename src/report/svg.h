// Minimal SVG chart rendering.
//
// The benches print text tables/diagrams; this module additionally renders
// the paper's figures as standalone SVG files (grouped bar charts for
// Figs. 4/5, score-trace panels for Fig. 8) so results can be eyeballed next
// to the paper without any plotting stack.
#ifndef NAVARCHOS_REPORT_SVG_H_
#define NAVARCHOS_REPORT_SVG_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace navarchos::report {

/// One bar series (e.g. one technique across transformations).
struct BarSeries {
  std::string label;
  std::vector<double> values;  ///< One value per group.
  std::string colour = "#4477aa";
};

/// Grouped bar chart: `groups` along the x-axis, one bar per series within
/// each group. Y-axis spans [0, y_max].
struct BarChart {
  std::string title;
  std::vector<std::string> groups;
  std::vector<BarSeries> series;
  double y_max = 1.0;
  int width = 860;
  int height = 360;
};

/// Renders the chart as an SVG document.
std::string RenderBarChart(const BarChart& chart);

/// One line series for a trace panel (e.g. a score channel over time).
struct TraceSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  std::string colour = "#4477aa";
  bool dashed = false;  ///< e.g. for thresholds
};

/// Vertical event markers on a trace panel.
struct TraceMarker {
  double x = 0.0;
  std::string label;
  std::string colour = "#cc3311";
};

/// A time-series panel with optional markers.
struct TraceChart {
  std::string title;
  std::string x_label;
  std::vector<TraceSeries> series;
  std::vector<TraceMarker> markers;
  int width = 860;
  int height = 280;
};

/// Renders the trace chart as an SVG document.
std::string RenderTraceChart(const TraceChart& chart);

/// Writes an SVG document to `path`.
util::Status WriteSvg(const std::string& path, const std::string& svg);

/// A qualitative colour cycle (colour-blind-safe Tol palette).
const std::vector<std::string>& ColourCycle();

}  // namespace navarchos::report

#endif  // NAVARCHOS_REPORT_SVG_H_
