// Fault-injection study: which fault families does each detector see?
//
// Injects each of the five simulated fault families into an otherwise
// healthy vehicle, runs all four detectors on correlation-transformed data,
// and reports the peak score-to-threshold ratio during the degradation
// window. This is the kind of per-failure-mode analysis a maintenance team
// would use to understand the coverage of the deployed solution.
//
// Flags: --days N (default 220), --seed S.
#include <algorithm>
#include <cstdio>

#include "core/monitor.h"
#include "telemetry/fleet.h"
#include "util/args.h"
#include "util/table.h"

namespace {

using namespace navarchos;

/// Builds a single-vehicle fleet whose one vehicle degrades with `type` and
/// is repaired near the end of monitoring.
telemetry::FleetDataset SingleFaultFleet(telemetry::FaultType type, int days,
                                         std::uint64_t seed) {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.num_vehicles = 1;
  config.num_reporting = 1;
  config.num_recorded_failures = 1;
  config.num_hidden_failures = 0;
  config.days = days;
  config.fault_lead_days = 30;
  config.service_interval_days = 70;
  config.seed = seed;
  telemetry::FleetDataset fleet = telemetry::GenerateFleet(config);
  // Force the sampled fault to the requested family (regenerate records so
  // the signals reflect it): simplest route is to resample until the drawn
  // family matches - families are drawn uniformly, so a handful of tries.
  std::uint64_t attempt = seed;
  while (fleet.vehicles[0].faults.empty() ||
         fleet.vehicles[0].faults[0].type != type) {
    config.seed = ++attempt;
    fleet = telemetry::GenerateFleet(config);
  }
  return fleet;
}

/// Peak score/threshold ratio inside the degradation window vs before it.
struct Visibility {
  double healthy_peak = 0.0;
  double degraded_peak = 0.0;
};

Visibility MeasureVisibility(const telemetry::FleetDataset& fleet,
                             detect::DetectorKind detector) {
  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detector;
  config.detector_options.tranad.epochs = 6;

  const auto& vehicle = fleet.vehicles[0];
  core::VehicleMonitor monitor(vehicle.spec.id, config);
  std::size_t record_index = 0, event_index = 0;
  while (record_index < vehicle.records.size() ||
         event_index < vehicle.events.size()) {
    const bool take_event =
        event_index < vehicle.events.size() &&
        (record_index >= vehicle.records.size() ||
         vehicle.events[event_index].timestamp <=
             vehicle.records[record_index].timestamp);
    if (take_event) {
      monitor.OnEvent(vehicle.events[event_index++]);
    } else {
      monitor.OnRecord(vehicle.records[record_index++]);
    }
  }
  monitor.Flush();  // drain the ingest guard's reorder buffer

  const auto& fault = vehicle.faults[0];
  Visibility visibility;
  for (const auto& sample : monitor.scored_samples()) {
    const auto& stats =
        monitor.calibrations()[static_cast<std::size_t>(sample.calibration_index)];
    double worst_ratio = 0.0;
    for (std::size_t c = 0; c < sample.scores.size(); ++c) {
      const double scale = std::max(1e-9, stats.mean[c] + 3.0 * stats.stddev[c]);
      worst_ratio = std::max(worst_ratio, sample.scores[c] / scale);
    }
    if (sample.timestamp >= fault.onset && sample.timestamp < fault.repair_time) {
      visibility.degraded_peak = std::max(visibility.degraded_peak, worst_ratio);
    } else {
      visibility.healthy_peak = std::max(visibility.healthy_peak, worst_ratio);
    }
  }
  return visibility;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int days = static_cast<int>(args.GetInt("days", 220));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));

  std::printf("per-fault-family visibility: peak score relative to a 3-sigma "
              "healthy scale,\nduring degradation vs outside it "
              "(correlation transform)\n\n");
  util::Table table({"fault family", "detector", "healthy peak",
                     "degraded peak", "separation"});
  for (int f = 0; f < telemetry::kNumFaultTypes; ++f) {
    const auto type = static_cast<telemetry::FaultType>(f);
    const auto fleet = SingleFaultFleet(type, days, seed);
    for (auto detector : {detect::DetectorKind::kClosestPair,
                          detect::DetectorKind::kXgBoost}) {
      const Visibility visibility = MeasureVisibility(fleet, detector);
      const double separation =
          visibility.degraded_peak / std::max(1e-9, visibility.healthy_peak);
      table.AddRow({telemetry::FaultTypeName(type),
                    detect::DetectorKindName(detector),
                    util::Table::Num(visibility.healthy_peak, 2),
                    util::Table::Num(visibility.degraded_peak, 2),
                    util::Table::Num(separation, 2) + "x"});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nseparation > 1 means the degradation stood out from the "
              "vehicle's own healthy variability.\n");
  return 0;
}
