// Transform explorer: how each data transformation "sees" a degradation.
//
// Follows one failing vehicle and prints, per transformation (including the
// histogram and spectral extensions the paper mentions but does not
// evaluate), how far the transformed samples drift from the healthy
// reference as the fault develops: mean per-feature z-shift in four phases
// of the timeline (healthy, early fault, late fault, after repair).
//
// Flags: --days N (default 240), --seed S.
#include <cmath>
#include <cstdio>
#include <vector>

#include "telemetry/filters.h"
#include "telemetry/fleet.h"
#include "transform/standardizer.h"
#include "transform/transformer.h"
#include "util/args.h"
#include "util/statistics.h"
#include "util/table.h"

namespace {

using namespace navarchos;

struct PhaseShift {
  double healthy = 0.0;
  double early = 0.0;
  double late = 0.0;
  double after = 0.0;
};

/// Mean absolute z-shift (vs the healthy baseline distribution) of the
/// transformed samples within each phase.
PhaseShift MeasureShift(transform::TransformKind kind,
                        const telemetry::VehicleHistory& vehicle) {
  const auto transformer = transform::MakeTransformer(kind);
  const auto usable = telemetry::FilterRecords(vehicle.records);
  const auto samples = transform::TransformAll(*transformer, usable);
  if (samples.size() < 20 || vehicle.faults.empty()) return {};

  const auto& fault = vehicle.faults[0];
  const telemetry::Minute midpoint = fault.onset + (fault.repair_time - fault.onset) / 2;

  std::vector<std::vector<double>> healthy;
  for (const auto& sample : samples)
    if (sample.timestamp < fault.onset) healthy.push_back(sample.features);
  if (healthy.size() < 10) return {};
  transform::Standardizer standardizer;
  standardizer.Fit(healthy);

  auto mean_abs_z = [&](telemetry::Minute from, telemetry::Minute to) {
    double total = 0.0;
    int count = 0;
    for (const auto& sample : samples) {
      if (sample.timestamp < from || sample.timestamp >= to) continue;
      const auto z = standardizer.Apply(sample.features);
      double sum = 0.0;
      for (double value : z) sum += std::fabs(value);
      total += sum / static_cast<double>(z.size());
      ++count;
    }
    return count > 0 ? total / count : 0.0;
  };

  PhaseShift shift;
  shift.healthy = mean_abs_z(0, fault.onset);
  shift.early = mean_abs_z(fault.onset, midpoint);
  shift.late = mean_abs_z(midpoint, fault.repair_time);
  shift.after = mean_abs_z(fault.repair_time,
                           fault.repair_time + 60 * telemetry::kMinutesPerDay);
  return shift;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = static_cast<int>(args.GetInt("days", 240));
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
  config.num_vehicles = 10;
  config.num_reporting = 8;
  config.num_recorded_failures = 3;
  config.fault_lead_days = 30;
  config.service_interval_days = 70;
  const auto fleet = telemetry::GenerateFleet(config);

  const telemetry::VehicleHistory* vehicle = nullptr;
  for (const auto& candidate : fleet.vehicles)
    if (!candidate.faults.empty()) vehicle = &candidate;
  if (vehicle == nullptr) {
    std::printf("no failing vehicle; try another seed\n");
    return 1;
  }
  std::printf("vehicle %s, fault: %s (days %lld-%lld)\n\n",
              vehicle->spec.DisplayName().c_str(),
              telemetry::FaultTypeName(vehicle->faults[0].type),
              static_cast<long long>(telemetry::DayOf(vehicle->faults[0].onset)),
              static_cast<long long>(telemetry::DayOf(vehicle->faults[0].repair_time)));

  util::Table table({"transformation", "healthy", "early fault", "late fault",
                     "after repair"});
  for (auto kind : {transform::TransformKind::kRaw, transform::TransformKind::kDelta,
                    transform::TransformKind::kMeanAggregation,
                    transform::TransformKind::kCorrelation,
                    transform::TransformKind::kHistogram,
                    transform::TransformKind::kSpectral,
                    transform::TransformKind::kSax}) {
    const PhaseShift shift = MeasureShift(kind, *vehicle);
    table.AddRow({transform::TransformKindName(kind),
                  util::Table::Num(shift.healthy, 2), util::Table::Num(shift.early, 2),
                  util::Table::Num(shift.late, 2), util::Table::Num(shift.after, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n(values: mean |z| of transformed samples vs the pre-fault "
              "baseline; a good transformation stays ~constant while healthy, "
              "rises through the fault, and returns to baseline after the "
              "repair)\n");
  return 0;
}
