// Streaming service demo: live fleet monitoring over one multiplexed feed,
// with durable checkpoint/restore and an optional TCP front end.
//
// 1. Simulate a small fleet and flatten it into the interleaved SensorFrame
//    stream a live telemetry gateway would deliver (all vehicles mixed,
//    ordered by time).
// 2. Feed the stream into service::FleetService: frames are routed to
//    per-vehicle bounded ingest queues and monitored concurrently on a
//    worker pool, while an alarm callback consumes alarms live, in the
//    deterministic total order. With --snapshot-every N the service also
//    writes a durable checkpoint every N submitted frames.
// 3. Drain (graceful shutdown), then show that the collected result is the
//    one a replay at any other thread count would produce.
//
// Restore mode (--restore <path>) rebuilds the service from a checkpoint
// written by a previous - possibly SIGKILLed - run, resumes the stream from
// the checkpointed cursor, and produces the same total alarm order as an
// uninterrupted run (restore-equals-uninterrupted).
//
// Network mode splits the demo into two processes talking the src/net wire
// protocol over TCP. Loopback quickstart:
//
//   ./build/examples/streaming_service --listen 7600 &
//   ./build/examples/streaming_service --connect 7600
//
// The server feeds every received frame into its FleetService and (with
// --verify) checks the drained result against an in-process replay of the
// same deterministic stream - the loopback run is bit-identical. A client
// cut mid-stream (--abort-after N, or a real SIGKILL) leaves the server's
// session cursor intact; rerunning the client with --resume continues from
// the last acknowledged frame and the final output is still identical.
//
// History mode (--history-dir, any role): every scored sample is appended
// to an on-disk anomaly history log in the ordered-release order, and the
// log answers RANK / TIMELINE / COMOVE queries - locally (--query with
// --history-dir) or over the wire from a running server (--query with
// --connect). The query output is printed deterministically (%.17g
// doubles) so two runs over identical logs diff clean.
//
// Observability (any role): every service keeps a unified metrics
// registry (monotonic counters, high-water gauges, latency histograms).
// --stats-every N prints one diffable counters line per N frames,
// --stats-out writes the final snapshot's text rendering to a file, and
// --query stats scrapes a running server over the wire (--fleet merges
// every shard of a sharded server). Scraping is invisible to the metrics
// themselves, so the wire-scraped rendering of a drained server is
// byte-identical to its in-process --stats-out file.
//
// Sharded mode (--shards N, in-process or server role) splits the fleet
// across N shards - each with its own per-vehicle lanes (and, in the server
// role, its own TCP listener) - behind a consistent-hash router, with a
// fleet aggregator merging the shards back into ONE totally ordered alarm /
// history stream. The output is bit-identical to the unsharded run at any
// shard x thread combination. With --snapshot-every the sharded run writes
// a fleet checkpoint DIRECTORY (one snapshot per shard plus a CRC'd
// manifest; the manifest rename is the commit point) and --restore rebuilds
// the whole group from that directory. A sharded server advertises its
// shard map in every WELCOME; a --sharded client bootstraps the map from
// the --connect port and routes each vehicle to its home shard.
//
// Build & run:  ./build/examples/streaming_service
// Flags (in-process mode):
//   --threads N          worker threads (default 4)
//   --shards N           shard the fleet across N in-process shards
//   --snapshot-every N   checkpoint every N submitted frames (default off)
//   --snapshot-path P    checkpoint file (default streaming_service.snapshot;
//                        a DIRECTORY when --shards > 1)
//   --restore P          restore from checkpoint P, then resume the stream
//                        (a fleet checkpoint directory when --shards > 1)
//   --alarm-log P        write the final alarm list (total order) to P
//   --history-dir D      append the anomaly history log under directory D
//   --ensemble-k K       monitor with a rolling consensus ensemble of K
//                        members instead of the single *Ref* model (server
//                        and sharded roles honour these three flags too)
//   --ensemble-m M       members that must agree before an alarm passes
//                        (default: config default, currently 3)
//   --retrain-every N    samples between background member retrains
//                        (default: derived from the profile window)
//   --stats-every N      print one diffable metrics line every N frames
//   --stats-out P        write the drained metrics snapshot rendering to P
// Flags (server role):
//   --listen N           serve ingest on port N (0 = ephemeral)
//   --shards N           one listener + service per shard (bootstrap =
//                        shard 0 on the --listen port, rest ephemeral)
//   --port-file P        write the bound (bootstrap) port to P
//   --sessions N         finished client runs to wait for (default 1; a
//                        sharded client finishes one session per shard)
//   --verify             after draining, compare against an in-process replay
//   --history-dir D      write the history log AND serve QUERY messages
//   --stats-out P        drain BEFORE stopping the listener, write the
//                        quiesced metrics rendering to P, keep answering
//                        STATS scrapes until shutdown
//   --await-scrapes N    with --stats-out: stop only after N STATS
//                        scrapes have been answered
// Flags (client role):
//   --connect N          stream the demo fleet to port N
//   --sharded            learn the shard map from WELCOME and route frames
//                        to their home shards (one session per shard)
//   --host H             server address (default 127.0.0.1)
//   --session S          session id (default "demo"; resume key)
//   --resume             resume the session from the server's cursor
//   --abort-after N      simulate a crash: exit without FIN after N frames
// Flags (query role; --query picks the role):
//   --query K            rank | timeline | comove | stats
//   --connect N          query a running server on port N over the wire, or
//   --history-dir D      query a local log directory directly (stats is
//                        wire-only; local runs use --stats-out instead)
//   --fleet              stats: scrape every shard advertised in the STATS
//                        tail once and print the merged fleet snapshot
//   --vehicle V          timeline: vehicle id (required)
//   --window-minutes N   rank: severity window in minutes (0 = whole log)
//   --end-ts T           rank/timeline: range end (0 = log end)
//   --limit N            rank: vehicles to print (0 = all)
//   --start-ts T         timeline: range start (0 = log start)
//   --max-records N      timeline: newest records kept (0 = all)
//   --alarm-seq S        comove: global seq of the anchoring alarm
//   --window N           comove: records per side (default 16)
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "history/history_service.h"
#include "history/query.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "obs/metrics.h"
#include "service/fleet_service.h"
#include "shard/shard_group.h"
#include "shard/shard_server.h"
#include "shard/sharded_client.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"
#include "util/args.h"

namespace {

using namespace navarchos;

bool WriteAlarmLog(const std::string& path,
                   const std::vector<navarchos::core::Alarm>& alarms) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  for (const auto& alarm : alarms) {
    std::fprintf(file, "%d %lld %zu %s %.17g %.17g\n", alarm.vehicle_id,
                 static_cast<long long>(alarm.timestamp), alarm.channel,
                 alarm.channel_name.c_str(), alarm.score, alarm.threshold);
  }
  std::fclose(file);
  return true;
}

/// One diffable line of the live service counters (--stats-every). Reading
/// the snapshot mid-stream races benignly with the workers: monotonic
/// counters, never torn values.
void PrintStatsLine(const obs::StatsSnapshot& snapshot) {
  const obs::HistogramSample* latency =
      snapshot.FindHistogram("service.admission_to_release_us");
  std::printf("[stats] submitted=%llu processed=%llu alarms=%llu "
              "release_p50_us=%llu release_p99_us=%llu\n",
              static_cast<unsigned long long>(
                  snapshot.CounterValue("service.frames_submitted")),
              static_cast<unsigned long long>(
                  snapshot.CounterValue("service.frames_processed")),
              static_cast<unsigned long long>(
                  snapshot.CounterValue("service.alarms_emitted")),
              static_cast<unsigned long long>(
                  latency ? latency->ValueAtQuantile(0.5) : 0),
              static_cast<unsigned long long>(
                  latency ? latency->ValueAtQuantile(0.99) : 0));
}

/// Writes the diffable text rendering of `snapshot` to `path`
/// (--stats-out). A post-drain wire scrape renders to the same bytes, so
///   diff <(streaming_service --query stats --fleet --connect P) FILE
/// is the end-to-end observability check.
bool WriteStatsFile(const std::string& path,
                    const obs::StatsSnapshot& snapshot) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = obs::FormatSnapshot(snapshot);
  std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  return true;
}

// The demo fleet: deterministic, so server, client and the in-process
// verification replay all reconstruct the identical stream independently.
telemetry::FleetDataset MakeFleet() {
  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::TestScale();
  fleet_config.days = 200;
  fleet_config.service_interval_days = 60;
  fleet_config.fault_lead_days = 30;
  return telemetry::GenerateFleet(fleet_config);
}

service::ServiceConfig MakeServiceConfig(const util::Args& args, int threads) {
  service::ServiceConfig config;
  config.monitor.transform = transform::TransformKind::kCorrelation;
  config.monitor.detector = detect::DetectorKind::kClosestPair;
  config.monitor.threshold.factor = 10.0;
  // --ensemble-k K switches every monitor to the rolling consensus ensemble
  // (K staggered members, --ensemble-m of them must agree, a member retrained
  // in the background every --retrain-every samples). The verify replays
  // below reuse this config, so replay-equals-live holds with it on.
  const std::int64_t ensemble_k = args.GetInt("ensemble-k", 0);
  if (ensemble_k > 0) {
    config.monitor.ensemble.enabled = true;
    config.monitor.ensemble.k = static_cast<int>(ensemble_k);
    if (args.Has("ensemble-m"))
      config.monitor.ensemble.m =
          static_cast<int>(args.GetInt("ensemble-m", 0));
    if (args.Has("retrain-every"))
      config.monitor.ensemble.retrain_every =
          static_cast<int>(args.GetInt("retrain-every", 0));
  }
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 128;  // frames buffered per vehicle before blocking
  return config;
}

/// Opens (or recovers) the history log under `dir` and hooks it into the
/// service's ordered release path. Null `dir` leaves history off.
std::unique_ptr<history::HistoryService> AttachHistory(
    service::FleetService* svc, const std::string& dir) {
  if (dir.empty()) return nullptr;
  auto service = std::make_unique<history::HistoryService>(dir);
  const util::Status status = service->Open();
  if (!status.ok()) {
    std::fprintf(stderr, "history open failed: %s\n", status.message().c_str());
    return nullptr;
  }
  history::HistoryService* raw = service.get();
  raw->AttachMetrics(svc->metrics());
  svc->set_history_callback(
      [raw](const history::HistoryRecord& record) { raw->Append(record); });
  // Flush the log inside every checkpoint's quiesced window, so a crash
  // never leaves a checkpoint claiming records the log does not hold.
  svc->set_checkpoint_barrier([raw] { return raw->Flush(); });
  return service;
}

/// ShardGroup flavour of AttachHistory: the group's history callback sees
/// fleet-sequenced records in the fleet-wide total order, so one log
/// serves the whole sharded fleet.
std::unique_ptr<history::HistoryService> AttachHistoryGroup(
    shard::ShardGroup* group, const std::string& dir) {
  if (dir.empty()) return nullptr;
  auto service = std::make_unique<history::HistoryService>(dir);
  const util::Status status = service->Open();
  if (!status.ok()) {
    std::fprintf(stderr, "history open failed: %s\n", status.message().c_str());
    return nullptr;
  }
  history::HistoryService* raw = service.get();
  // One log serves the whole fleet, so - like the shared pool - its
  // metrics live in shard 0's registry by convention.
  raw->AttachMetrics(group->shard_service(0)->metrics());
  group->set_history_callback(
      [raw](const history::HistoryRecord& record) { raw->Append(record); });
  group->set_checkpoint_barrier([raw] { return raw->Flush(); });
  return service;
}

/// Flushes the log after a drain and reports what it holds; returns false
/// on a latched append/flush error.
bool FinishHistory(history::HistoryService* service) {
  if (service == nullptr) return true;
  util::Status status = service->Flush();
  if (status.ok()) status = service->first_error();
  if (!status.ok()) {
    std::fprintf(stderr, "history log failed: %s\n", status.message().c_str());
    return false;
  }
  const history::WriterStats stats = service->writer_stats();
  std::printf("history log: %llu records appended (%llu replayed duplicates "
              "skipped) in %s\n",
              static_cast<unsigned long long>(stats.records_appended),
              static_cast<unsigned long long>(stats.records_skipped),
              service->dir().c_str());
  return true;
}

void PrintRank(const history::RankResult& result) {
  std::printf("RANK (%zu vehicles)\n", result.entries.size());
  for (const auto& entry : result.entries)
    std::printf("vehicle %d: records %llu alarms %llu mean %.17g max %.17g "
                "last_ts %lld\n",
                entry.vehicle_id,
                static_cast<unsigned long long>(entry.records),
                static_cast<unsigned long long>(entry.alarms),
                entry.mean_ratio, entry.max_ratio,
                static_cast<long long>(entry.last_ts));
}

void PrintTimeline(std::int32_t vehicle_id,
                   const history::TimelineResult& result) {
  std::printf("TIMELINE vehicle %d (%zu records)\n", vehicle_id,
              result.records.size());
  for (const auto& record : result.records) {
    std::printf("seq %llu ts %lld score %.17g thr %.17g alarm %d top [",
                static_cast<unsigned long long>(record.global_seq),
                static_cast<long long>(record.timestamp), record.score,
                record.threshold, record.alarm ? 1 : 0);
    for (std::size_t i = 0; i < record.top_channels.size(); ++i)
      std::printf(i == 0 ? "%u" : " %u", record.top_channels[i]);
    std::printf("]\n");
  }
}

void PrintComove(const history::ComoveResult& result) {
  std::printf("COMOVE vehicle %d alarm_ts %lld (%zu channels)\n",
              result.vehicle_id, static_cast<long long>(result.alarm_ts),
              result.entries.size());
  for (const auto& entry : result.entries)
    std::printf("channel %u hits %llu weight %llu\n", entry.channel,
                static_cast<unsigned long long>(entry.hits),
                static_cast<unsigned long long>(entry.weight));
}

/// --query stats: scrape a running server's metrics over the wire. The
/// snapshot rendering goes to stdout alone (shard identity to stderr), so
/// the output diffs clean against a --stats-out file. With --fleet on a
/// sharded server, every shard advertised in the STATS tail is scraped
/// once and the per-shard snapshots merge into the fleet aggregate.
int RunStatsQuery(const util::Args& args) {
  const auto port = static_cast<std::uint16_t>(args.GetInt("connect", 0));
  if (port == 0) {
    std::fprintf(stderr,
                 "--query stats needs --connect PORT (local runs render the "
                 "same snapshot via --stats-every / --stats-out)\n");
    return 2;
  }
  net::ClientConfig config;
  config.host = args.GetString("host", "127.0.0.1");
  config.port = port;
  net::IngestClient client(config);
  net::StatsMessage message;
  util::Status status = client.QueryStats(&message);
  if (!status.ok()) {
    std::fprintf(stderr, "stats scrape failed: %s\n",
                 status.message().c_str());
    return 2;
  }
  if (!args.Has("fleet") || message.shard_map.unsharded()) {
    if (!message.shard_map.unsharded())
      std::fprintf(stderr, "shard %u of %u\n", message.shard_id,
                   message.shard_map.shard_count);
    std::fputs(obs::FormatSnapshot(message.snapshot).c_str(), stdout);
    return 0;
  }
  // Fleet scrape: one snapshot per shard, merged. The bootstrap response
  // already carries its shard's snapshot; dialing that shard again would
  // observe the first scrape's own stats_served increment, so every shard
  // contributes the snapshot of its FIRST scrape only.
  obs::StatsSnapshot fleet = message.snapshot;
  for (std::size_t shard = 0; shard < message.shard_map.ports.size();
       ++shard) {
    if (shard == message.shard_id) continue;
    net::ClientConfig shard_config = config;
    shard_config.port = message.shard_map.ports[shard];
    net::IngestClient shard_client(shard_config);
    net::StatsMessage shard_message;
    status = shard_client.QueryStats(&shard_message);
    if (!status.ok()) {
      std::fprintf(stderr, "stats scrape of shard %zu failed: %s\n", shard,
                   status.message().c_str());
      return 2;
    }
    if (shard_message.shard_id != shard) {
      std::fprintf(stderr, "shard %zu answered as shard %u\n", shard,
                   shard_message.shard_id);
      return 2;
    }
    obs::MergeSnapshot(&fleet, shard_message.snapshot);
  }
  std::fprintf(stderr, "fleet of %u shards\n",
               message.shard_map.shard_count);
  std::fputs(obs::FormatSnapshot(fleet).c_str(), stdout);
  return 0;
}

/// Query role: answer one RANK / TIMELINE / COMOVE - over the wire against
/// a running server (--connect) or directly off a log directory
/// (--history-dir) - and pretty-print the result deterministically.
int RunQueryRole(const util::Args& args) {
  const std::string kind = args.GetString("query", "");
  if (kind == "stats") return RunStatsQuery(args);
  const std::string history_dir = args.GetString("history-dir", "");
  const auto port = static_cast<std::uint16_t>(args.GetInt("connect", 0));
  if (history_dir.empty() && port == 0) {
    std::fprintf(stderr,
                 "--query needs --connect PORT (wire) or --history-dir D "
                 "(local)\n");
    return 2;
  }

  history::RankQuery rank;
  rank.window_minutes = args.GetInt("window-minutes", 0);
  rank.end_ts = args.GetInt("end-ts", 0);
  rank.limit = static_cast<std::uint32_t>(args.GetInt("limit", 0));
  history::TimelineQuery timeline;
  timeline.vehicle_id = static_cast<std::int32_t>(args.GetInt("vehicle", 0));
  timeline.start_ts = args.GetInt("start-ts", 0);
  timeline.end_ts = args.GetInt("end-ts", 0);
  timeline.max_records =
      static_cast<std::uint32_t>(args.GetInt("max-records", 0));
  history::ComoveQuery comove;
  comove.alarm_seq = static_cast<std::uint64_t>(args.GetInt("alarm-seq", 0));
  comove.window = static_cast<std::uint32_t>(args.GetInt("window", 16));

  history::RankResult rank_result;
  history::TimelineResult timeline_result;
  history::ComoveResult comove_result;
  util::Status status;
  if (port != 0) {
    net::ClientConfig config;
    config.host = args.GetString("host", "127.0.0.1");
    config.port = port;
    net::IngestClient client(config);
    if (kind == "rank")
      status = client.QueryRank(rank, &rank_result);
    else if (kind == "timeline")
      status = client.QueryTimeline(timeline, &timeline_result);
    else if (kind == "comove")
      status = client.QueryComove(comove, &comove_result);
    else
      status = util::Status::Error("unknown query kind '" + kind + "'");
  } else {
    const history::QueryEngine engine(history_dir);
    if (kind == "rank")
      status = engine.Rank(rank, &rank_result);
    else if (kind == "timeline")
      status = engine.Timeline(timeline, &timeline_result);
    else if (kind == "comove")
      status = engine.Comove(comove, &comove_result);
    else
      status = util::Status::Error("unknown query kind '" + kind + "'");
  }
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.message().c_str());
    return 2;
  }
  if (kind == "rank")
    PrintRank(rank_result);
  else if (kind == "timeline")
    PrintTimeline(timeline.vehicle_id, timeline_result);
  else
    PrintComove(comove_result);
  return 0;
}

bool AlarmsIdentical(const std::vector<core::Alarm>& a,
                     const std::vector<core::Alarm>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].vehicle_id != b[i].vehicle_id ||
        a[i].timestamp != b[i].timestamp || a[i].score != b[i].score)
      return false;
  return true;
}

/// Sharded server role: one TCP listener per shard over one ShardGroup.
/// Every WELCOME advertises the shard map; the drained fleet-wide result
/// is bit-identical to the unsharded run.
int RunShardedServer(const util::Args& args, int shards) {
  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const auto listen_port =
      static_cast<std::uint16_t>(args.GetInt("listen", 0));
  const std::string port_file = args.GetString("port-file", "");
  const auto sessions = static_cast<std::uint64_t>(args.GetInt("sessions", 1));
  const std::string alarm_log = args.GetString("alarm-log", "");

  shard::ShardGroupConfig group_config;
  group_config.service = MakeServiceConfig(args, threads);
  group_config.shard_count = static_cast<std::uint32_t>(shards);
  shard::ShardGroup group(group_config);
  const std::unique_ptr<history::HistoryService> history =
      AttachHistoryGroup(&group, args.GetString("history-dir", ""));
  if (!args.GetString("history-dir", "").empty() && history == nullptr)
    return 2;

  net::ServerConfig server_template;
  server_template.port = listen_port;
  server_template.history = history.get();
  shard::ShardServer server(&group, server_template);
  const util::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", status.message().c_str());
    return 2;
  }
  std::printf("listening on port %u (%d shards", server.port(0), shards);
  for (int shard = 1; shard < shards; ++shard)
    std::printf(", %u", server.port(shard));
  std::printf(")\n");
  std::fflush(stdout);  // scripts background this role and tail the log
  if (!port_file.empty()) {
    std::FILE* file = std::fopen(port_file.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 2;
    }
    std::fprintf(file, "%u\n", server.port(0));
    std::fclose(file);
  }

  // A sharded client FINishes one session per shard.
  server.WaitForFinishedSessions(sessions *
                                 static_cast<std::uint64_t>(shards));
  const std::string stats_out = args.GetString("stats-out", "");
  const std::int64_t await_scrapes = args.GetInt("await-scrapes", 0);
  if (stats_out.empty() && await_scrapes <= 0) {
    server.Stop();
    group.Drain();
  } else {
    // Observability epilogue: drain FIRST - STATS is stateless, so the
    // listeners keep answering scrapes over the quiesced registries -
    // publish the in-process fleet aggregate, then hold the listeners
    // open until the expected number of wire scrapes has been served.
    group.Drain();
    if (!stats_out.empty()) {
      if (!WriteStatsFile(stats_out, group.FleetSnapshot())) {
        std::fprintf(stderr, "cannot write stats file %s\n",
                     stats_out.c_str());
        return 2;
      }
      std::printf("final stats written to %s\n", stats_out.c_str());
      std::fflush(stdout);
    }
    const auto scrapes_served = [&server, shards] {
      std::uint64_t total = 0;
      for (int shard = 0; shard < shards; ++shard)
        total += server.server(shard)->stats().stats_served;
      return total;
    };
    while (scrapes_served() < static_cast<std::uint64_t>(await_scrapes))
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.Stop();
  }
  if (!FinishHistory(history.get())) return 2;

  net::ServerStats net_stats;
  for (int shard = 0; shard < shards; ++shard) {
    const net::ServerStats shard_stats = server.server(shard)->stats();
    net_stats.frames_received += shard_stats.frames_received;
    net_stats.frames_admitted += shard_stats.frames_admitted;
    net_stats.frames_shed += shard_stats.frames_shed;
    net_stats.duplicates_skipped += shard_stats.duplicates_skipped;
    net_stats.connections_accepted += shard_stats.connections_accepted;
    net_stats.resumes += shard_stats.resumes;
  }
  const auto stats = group.stats();
  const auto live = group.TakeResult();
  std::printf(
      "served %llu frames (%llu admitted, %llu shed, %llu duplicates "
      "skipped) over %llu connections, %llu resume(s)\n",
      static_cast<unsigned long long>(net_stats.frames_received),
      static_cast<unsigned long long>(net_stats.frames_admitted),
      static_cast<unsigned long long>(net_stats.frames_shed),
      static_cast<unsigned long long>(net_stats.duplicates_skipped),
      static_cast<unsigned long long>(net_stats.connections_accepted),
      static_cast<unsigned long long>(net_stats.resumes));
  std::printf("processed %zu frames, %zu alarms\n", stats.frames_processed,
              live.alarms.size());

  if (!alarm_log.empty() && !WriteAlarmLog(alarm_log, live.alarms)) {
    std::fprintf(stderr, "cannot write alarm log %s\n", alarm_log.c_str());
    return 2;
  }

  if (args.Has("verify")) {
    const telemetry::FleetDataset fleet = MakeFleet();
    const auto stream = telemetry::InterleaveFleetStream(fleet);
    const auto replay = service::RunStream(
        stream, service::VehicleIdsOf(fleet), MakeServiceConfig(args, 1));
    const bool identical = AlarmsIdentical(replay.alarms, live.alarms);
    std::printf("in-process replay of the same stream: %s\n",
                identical ? "identical alarms (sharded == unsharded)"
                          : "MISMATCH");
    return identical ? 0 : 1;
  }
  return 0;
}

/// Server role: serve TCP ingest until the expected sessions finished, then
/// drain and report - optionally verifying against the in-process replay.
int RunServer(const util::Args& args) {
  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const auto listen_port =
      static_cast<std::uint16_t>(args.GetInt("listen", 0));
  const std::string port_file = args.GetString("port-file", "");
  const auto sessions = static_cast<std::uint64_t>(args.GetInt("sessions", 1));
  const std::string alarm_log = args.GetString("alarm-log", "");

  service::FleetService svc(MakeServiceConfig(args, threads));
  const std::unique_ptr<history::HistoryService> history =
      AttachHistory(&svc, args.GetString("history-dir", ""));
  if (!args.GetString("history-dir", "").empty() && history == nullptr)
    return 2;
  net::ServerConfig server_config;
  server_config.port = listen_port;
  server_config.history = history.get();
  net::IngestServer server(&svc, server_config);
  const util::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", status.message().c_str());
    return 2;
  }
  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);  // scripts background this role and tail the log
  if (!port_file.empty()) {
    std::FILE* file = std::fopen(port_file.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 2;
    }
    std::fprintf(file, "%u\n", server.port());
    std::fclose(file);
  }

  server.WaitForFinishedSessions(sessions);
  const std::string stats_out = args.GetString("stats-out", "");
  const std::int64_t await_scrapes = args.GetInt("await-scrapes", 0);
  if (stats_out.empty() && await_scrapes <= 0) {
    server.Stop();
    svc.Drain();
  } else {
    // Observability epilogue, as in the sharded role: drain first so the
    // registry is quiescent, publish the in-process aggregate, keep the
    // listener answering STATS until the expected scrapes arrived.
    svc.Drain();
    if (!stats_out.empty()) {
      if (!WriteStatsFile(stats_out, svc.SnapshotStats())) {
        std::fprintf(stderr, "cannot write stats file %s\n",
                     stats_out.c_str());
        return 2;
      }
      std::printf("final stats written to %s\n", stats_out.c_str());
      std::fflush(stdout);
    }
    while (server.stats().stats_served <
           static_cast<std::uint64_t>(await_scrapes))
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.Stop();
  }
  if (!FinishHistory(history.get())) return 2;

  const net::ServerStats net_stats = server.stats();
  const auto stats = svc.stats();
  const auto live = svc.TakeResult();
  std::printf(
      "served %llu frames (%llu admitted, %llu shed, %llu duplicates "
      "skipped) over %llu connections, %llu resume(s)\n",
      static_cast<unsigned long long>(net_stats.frames_received),
      static_cast<unsigned long long>(net_stats.frames_admitted),
      static_cast<unsigned long long>(net_stats.frames_shed),
      static_cast<unsigned long long>(net_stats.duplicates_skipped),
      static_cast<unsigned long long>(net_stats.connections_accepted),
      static_cast<unsigned long long>(net_stats.resumes));
  std::printf("processed %zu frames, %zu alarms\n", stats.frames_processed,
              live.alarms.size());

  if (!alarm_log.empty() && !WriteAlarmLog(alarm_log, live.alarms)) {
    std::fprintf(stderr, "cannot write alarm log %s\n", alarm_log.c_str());
    return 2;
  }

  if (args.Has("verify")) {
    const telemetry::FleetDataset fleet = MakeFleet();
    const auto stream = telemetry::InterleaveFleetStream(fleet);
    const auto replay = service::RunStream(
        stream, service::VehicleIdsOf(fleet), MakeServiceConfig(args, 1));
    const bool identical = AlarmsIdentical(replay.alarms, live.alarms);
    std::printf("in-process replay of the same stream: %s\n",
                identical ? "identical alarms (loopback == in-process)"
                          : "MISMATCH");
    return identical ? 0 : 1;
  }
  return 0;
}

/// Sharded client role: bootstrap the shard map from the --connect port,
/// then stream every frame to its vehicle's home shard (one resumable
/// session per shard). Resume replays the whole stream; frames the shards
/// already decided are skipped locally.
int RunShardedClient(const util::Args& args) {
  shard::ShardedClientConfig config;
  config.client.host = args.GetString("host", "127.0.0.1");
  config.client.port = static_cast<std::uint16_t>(args.GetInt("connect", 0));
  config.client.session_id = args.GetString("session", "demo");
  const std::int64_t abort_after = args.GetInt("abort-after", 0);
  const bool resume = args.Has("resume");

  const telemetry::FleetDataset fleet = MakeFleet();
  const auto stream = telemetry::InterleaveFleetStream(fleet);

  shard::ShardedClient client(config);
  util::Status status = client.Connect(service::VehicleIdsOf(fleet), resume);
  if (!status.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", status.message().c_str());
    return 2;
  }
  std::printf("%s session '%s' across %u shard(s), %zu frames\n",
              resume ? "resumed" : "started", config.client.session_id.c_str(),
              client.shard_map_info().shard_count, stream.size());

  std::uint64_t submitted = 0;
  for (const auto& frame : stream) {
    status = client.Send(frame);
    if (!status.ok()) {
      std::fprintf(stderr, "send failed at frame %llu: %s\n",
                   static_cast<unsigned long long>(submitted),
                   status.message().c_str());
      return 2;
    }
    if (abort_after > 0 &&
        ++submitted >= static_cast<std::uint64_t>(abort_after)) {
      // Simulated crash across every shard session at once; a later
      // --resume run replays the stream and each shard skips its decided
      // prefix.
      client.Abort();
      std::printf("aborted after %llu frames\n",
                  static_cast<unsigned long long>(submitted));
      return 0;
    }
  }
  status = client.Finish();
  if (!status.ok()) {
    std::fprintf(stderr, "finish failed: %s\n", status.message().c_str());
    return 2;
  }
  std::printf("streamed %llu frames over %u shard session(s)\n",
              static_cast<unsigned long long>(client.frames_sent()),
              client.shard_map_info().shard_count);
  return 0;
}

/// Client role: stream the demo fleet to a server, resuming from the
/// server's cursor; --abort-after simulates a mid-stream crash (no FIN).
int RunClient(const util::Args& args) {
  net::ClientConfig config;
  config.host = args.GetString("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.GetInt("connect", 0));
  config.session_id = args.GetString("session", "demo");
  const std::int64_t abort_after = args.GetInt("abort-after", 0);
  const bool resume = args.Has("resume");

  const telemetry::FleetDataset fleet = MakeFleet();
  const auto stream = telemetry::InterleaveFleetStream(fleet);

  net::IngestClient client(config);
  util::Status status = client.Connect(service::VehicleIdsOf(fleet), resume);
  if (!status.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", status.message().c_str());
    return 2;
  }
  const std::uint64_t start = client.next_seq();
  std::printf("%s session '%s' at frame %llu of %zu\n",
              resume ? "resumed" : "started", config.session_id.c_str(),
              static_cast<unsigned long long>(start), stream.size());

  std::uint64_t sent = 0;
  for (std::uint64_t i = start; i < stream.size(); ++i) {
    status = client.Send(stream[i]);
    if (!status.ok()) {
      std::fprintf(stderr, "send failed at frame %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   status.message().c_str());
      return 2;
    }
    if (abort_after > 0 &&
        ++sent >= static_cast<std::uint64_t>(abort_after)) {
      // Simulated crash: drop the connection with no flush and no FIN -
      // from the server's viewpoint this is a client SIGKILL. Un-ACKed
      // frames are re-sent by the next client that resumes the session.
      client.Abort();
      std::printf("aborted after %llu frames (next unsent seq %llu)\n",
                  static_cast<unsigned long long>(sent),
                  static_cast<unsigned long long>(client.next_seq()));
      return 0;
    }
  }
  status = client.Finish();
  if (!status.ok()) {
    std::fprintf(stderr, "finish failed: %s\n", status.message().c_str());
    return 2;
  }
  std::printf("streamed %llu frames, %zu shed (NACKed)\n",
              static_cast<unsigned long long>(client.stats().frames_sent),
              client.nacks().size());
  return 0;
}

/// Sharded in-process role: the default demo, but the fleet is split
/// across N shards behind the consistent-hash router. The fleet-wide
/// alarm/history output is bit-identical to the unsharded run, and the
/// checkpoint is a fleet checkpoint DIRECTORY (per-shard snapshots + a
/// CRC'd manifest) that --restore rebuilds the whole group from.
int RunShardedInProcess(const util::Args& args, int shards) {
  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const std::int64_t snapshot_every = args.GetInt("snapshot-every", 0);
  const std::string snapshot_path =
      args.GetString("snapshot-path", "streaming_service.fleet");
  const std::string restore_path = args.GetString("restore", "");
  const std::string alarm_log = args.GetString("alarm-log", "");
  const std::int64_t stats_every = args.GetInt("stats-every", 0);
  const std::string stats_out = args.GetString("stats-out", "");

  const telemetry::FleetDataset fleet = MakeFleet();
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  std::printf("interleaved feed: %zu frames from %zu vehicles, %d shards\n",
              stream.size(), fleet.vehicles.size(), shards);

  shard::ShardGroupConfig group_config;
  group_config.service = MakeServiceConfig(args, threads);
  group_config.shard_count = static_cast<std::uint32_t>(shards);
  shard::ShardGroup group(group_config);
  std::size_t resume_cursor = 0;
  if (!restore_path.empty()) {
    // Verify every per-shard snapshot against the manifest's CRCs, rebuild
    // all shards and the aggregator, then resume from the fleet cursor.
    const util::Status status = group.RestoreFromDir(restore_path);
    if (!status.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", status.message().c_str());
      return 2;
    }
    resume_cursor = group.stats().frames_accepted;
    std::printf("restored %zu vehicles from %s, resuming at frame %zu\n",
                group.vehicle_count(), restore_path.c_str(), resume_cursor);
  } else {
    for (const auto& vehicle : fleet.vehicles)
      group.RegisterVehicle(vehicle.spec.id);
  }

  const std::unique_ptr<history::HistoryService> history =
      AttachHistoryGroup(&group, args.GetString("history-dir", ""));
  if (!args.GetString("history-dir", "").empty() && history == nullptr)
    return 2;

  std::size_t live_alarms = 0;
  group.set_alarm_callback([&live_alarms](const core::Alarm& alarm) {
    if (++live_alarms <= 5)
      std::printf("  live alarm: vehicle %d, minute %lld, channel %s\n",
                  alarm.vehicle_id, static_cast<long long>(alarm.timestamp),
                  alarm.channel_name.c_str());
  });

  std::size_t since_snapshot = 0;
  for (std::size_t i = resume_cursor; i < stream.size(); ++i) {
    group.Submit(stream[i]);
    if (stats_every > 0 &&
        (i + 1) % static_cast<std::size_t>(stats_every) == 0)
      PrintStatsLine(group.FleetSnapshot());
    if (snapshot_every > 0 &&
        ++since_snapshot >= static_cast<std::size_t>(snapshot_every)) {
      since_snapshot = 0;
      const util::Status status = group.Checkpoint(snapshot_path);
      if (!status.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n",
                     status.message().c_str());
        return 2;
      }
    }
  }
  group.Drain();
  if (!FinishHistory(history.get())) return 2;
  if (!stats_out.empty() && !WriteStatsFile(stats_out, group.FleetSnapshot())) {
    std::fprintf(stderr, "cannot write stats file %s\n", stats_out.c_str());
    return 2;
  }

  const auto stats = group.stats();
  const auto live = group.TakeResult();
  std::printf("\nprocessed %zu/%zu frames, %zu alarms (%zu seen live)\n",
              stats.frames_processed, stats.frames_submitted,
              live.alarms.size(), live_alarms);

  if (!alarm_log.empty() && !WriteAlarmLog(alarm_log, live.alarms)) {
    std::fprintf(stderr, "cannot write alarm log %s\n", alarm_log.c_str());
    return 2;
  }

  // The house invariant, extended: the sharded fleet's total order equals
  // the unsharded single-threaded replay bit for bit.
  const auto replay = service::RunStream(stream, service::VehicleIdsOf(fleet),
                                         MakeServiceConfig(args, 1));
  const bool identical = AlarmsIdentical(replay.alarms, live.alarms);
  std::printf("unsharded serial replay of the recorded stream: %s\n",
              identical ? "identical alarms (sharded == unsharded)"
                        : "MISMATCH");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int shards = static_cast<int>(args.GetInt("shards", 1));
  if (args.Has("query")) return RunQueryRole(args);
  if (args.Has("listen"))
    return shards > 1 ? RunShardedServer(args, shards) : RunServer(args);
  if (args.Has("connect"))
    return args.Has("sharded") ? RunShardedClient(args) : RunClient(args);
  if (shards > 1) return RunShardedInProcess(args, shards);

  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const std::int64_t snapshot_every = args.GetInt("snapshot-every", 0);
  const std::string snapshot_path =
      args.GetString("snapshot-path", "streaming_service.snapshot");
  const std::string restore_path = args.GetString("restore", "");
  const std::string alarm_log = args.GetString("alarm-log", "");
  const std::int64_t stats_every = args.GetInt("stats-every", 0);
  const std::string stats_out = args.GetString("stats-out", "");

  // --- 1. A recorded interleaved feed (stand-in for the live gateway). ----
  const telemetry::FleetDataset fleet = MakeFleet();
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  std::printf("interleaved feed: %zu frames from %zu vehicles\n",
              stream.size(), fleet.vehicles.size());

  // --- 2. The streaming service, with blocking backpressure. --------------
  const service::ServiceConfig config = MakeServiceConfig(args, threads);

  service::FleetService svc(config);
  std::size_t resume_cursor = 0;
  if (!restore_path.empty()) {
    // Rebuild the whole service - lanes, monitors, sequence counters, the
    // released alarms - from the checkpoint, then resume the stream from the
    // checkpointed ingest cursor (every frame before it was fully processed
    // and released before the checkpoint was written).
    const util::Status status = svc.RestoreFromFile(restore_path);
    if (!status.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", status.message().c_str());
      return 2;
    }
    resume_cursor = svc.stats().frames_accepted;
    std::printf("restored %zu vehicles from %s, resuming at frame %zu\n",
                svc.vehicle_count(), restore_path.c_str(), resume_cursor);
  } else {
    for (const auto& vehicle : fleet.vehicles) svc.RegisterVehicle(vehicle.spec.id);
  }

  const std::unique_ptr<history::HistoryService> history =
      AttachHistory(&svc, args.GetString("history-dir", ""));
  if (!args.GetString("history-dir", "").empty() && history == nullptr)
    return 2;

  std::size_t live_alarms = 0;
  svc.set_alarm_callback([&live_alarms](const core::Alarm& alarm) {
    if (++live_alarms <= 5)  // print the first few, count the rest
      std::printf("  live alarm: vehicle %d, minute %lld, channel %s\n",
                  alarm.vehicle_id, static_cast<long long>(alarm.timestamp),
                  alarm.channel_name.c_str());
  });

  std::size_t since_snapshot = 0;
  for (std::size_t i = resume_cursor; i < stream.size(); ++i) {  // live ingest
    svc.Submit(stream[i]);
    if (stats_every > 0 &&
        (i + 1) % static_cast<std::size_t>(stats_every) == 0)
      PrintStatsLine(svc.SnapshotStats());
    if (snapshot_every > 0 &&
        ++since_snapshot >= static_cast<std::size_t>(snapshot_every)) {
      since_snapshot = 0;
      const util::Status status = svc.Checkpoint(snapshot_path);
      if (!status.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n", status.message().c_str());
        return 2;
      }
    }
  }
  svc.Drain();  // graceful shutdown
  if (!FinishHistory(history.get())) return 2;
  if (!stats_out.empty() && !WriteStatsFile(stats_out, svc.SnapshotStats())) {
    std::fprintf(stderr, "cannot write stats file %s\n", stats_out.c_str());
    return 2;
  }

  // --- 3. The drained result is deterministic: a serial replay agrees. ----
  const auto stats = svc.stats();
  const auto live = svc.TakeResult();
  std::printf("\nprocessed %zu/%zu frames, %zu alarms (%zu seen live)\n",
              stats.frames_processed, stats.frames_submitted,
              live.alarms.size(), live_alarms);

  if (!alarm_log.empty() && !WriteAlarmLog(alarm_log, live.alarms)) {
    std::fprintf(stderr, "cannot write alarm log %s\n", alarm_log.c_str());
    return 2;
  }

  service::ServiceConfig replay_config = config;
  replay_config.runtime = runtime::RuntimeConfig{1};
  const auto replay = service::RunStream(stream, service::VehicleIdsOf(fleet),
                                         replay_config);
  const bool identical = AlarmsIdentical(replay.alarms, live.alarms);
  std::printf("serial replay of the recorded stream: %s\n",
              identical ? "identical alarms (replay == live)" : "MISMATCH");
  return identical ? 0 : 1;
}
