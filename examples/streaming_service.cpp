// Streaming service demo: live fleet monitoring over one multiplexed feed.
//
// 1. Simulate a small fleet and flatten it into the interleaved SensorFrame
//    stream a live telemetry gateway would deliver (all vehicles mixed,
//    ordered by time).
// 2. Feed the stream into service::FleetService: frames are routed to
//    per-vehicle bounded ingest queues and monitored concurrently on a
//    worker pool, while an alarm callback consumes alarms live, in the
//    deterministic total order.
// 3. Drain (graceful shutdown), then show that the collected result is the
//    one a replay at any other thread count would produce.
//
// Build & run:  ./build/examples/streaming_service
#include <cstdio>

#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

int main() {
  using namespace navarchos;

  // --- 1. A recorded interleaved feed (stand-in for the live gateway). ----
  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::TestScale();
  fleet_config.days = 200;
  fleet_config.service_interval_days = 60;
  fleet_config.fault_lead_days = 30;
  const telemetry::FleetDataset fleet = telemetry::GenerateFleet(fleet_config);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  std::printf("interleaved feed: %zu frames from %zu vehicles\n",
              stream.size(), fleet.vehicles.size());

  // --- 2. The streaming service: 4 workers, blocking backpressure. --------
  service::ServiceConfig config;
  config.monitor.transform = transform::TransformKind::kCorrelation;
  config.monitor.detector = detect::DetectorKind::kClosestPair;
  config.monitor.threshold.factor = 10.0;
  config.runtime = runtime::RuntimeConfig{4};
  config.queue_capacity = 128;  // frames buffered per vehicle before blocking

  service::FleetService svc(config);
  std::size_t live_alarms = 0;
  svc.set_alarm_callback([&live_alarms](const core::Alarm& alarm) {
    if (++live_alarms <= 5)  // print the first few, count the rest
      std::printf("  live alarm: vehicle %d, minute %lld, channel %s\n",
                  alarm.vehicle_id, static_cast<long long>(alarm.timestamp),
                  alarm.channel_name.c_str());
  });

  for (const auto& vehicle : fleet.vehicles) svc.RegisterVehicle(vehicle.spec.id);
  for (const auto& frame : stream) svc.Submit(frame);  // live ingest
  svc.Drain();                                         // graceful shutdown

  // --- 3. The drained result is deterministic: a serial replay agrees. ----
  const auto stats = svc.stats();
  const auto live = svc.TakeResult();
  std::printf("\nprocessed %zu/%zu frames, %zu alarms (%zu seen live)\n",
              stats.frames_processed, stats.frames_submitted,
              live.alarms.size(), live_alarms);

  service::ServiceConfig replay_config = config;
  replay_config.runtime = runtime::RuntimeConfig{1};
  const auto replay = service::RunStream(stream, service::VehicleIdsOf(fleet),
                                         replay_config);
  const bool identical =
      replay.alarms.size() == live.alarms.size() &&
      [&]() {
        for (std::size_t i = 0; i < replay.alarms.size(); ++i)
          if (replay.alarms[i].vehicle_id != live.alarms[i].vehicle_id ||
              replay.alarms[i].timestamp != live.alarms[i].timestamp ||
              replay.alarms[i].score != live.alarms[i].score)
            return false;
        return true;
      }();
  std::printf("serial replay of the recorded stream: %s\n",
              identical ? "identical alarms (replay == live)" : "MISMATCH");
  return identical ? 0 : 1;
}
