// Streaming service demo: live fleet monitoring over one multiplexed feed,
// with durable checkpoint/restore and an optional TCP front end.
//
// 1. Simulate a small fleet and flatten it into the interleaved SensorFrame
//    stream a live telemetry gateway would deliver (all vehicles mixed,
//    ordered by time).
// 2. Feed the stream into service::FleetService: frames are routed to
//    per-vehicle bounded ingest queues and monitored concurrently on a
//    worker pool, while an alarm callback consumes alarms live, in the
//    deterministic total order. With --snapshot-every N the service also
//    writes a durable checkpoint every N submitted frames.
// 3. Drain (graceful shutdown), then show that the collected result is the
//    one a replay at any other thread count would produce.
//
// Restore mode (--restore <path>) rebuilds the service from a checkpoint
// written by a previous - possibly SIGKILLed - run, resumes the stream from
// the checkpointed cursor, and produces the same total alarm order as an
// uninterrupted run (restore-equals-uninterrupted).
//
// Network mode splits the demo into two processes talking the src/net wire
// protocol over TCP. Loopback quickstart:
//
//   ./build/examples/streaming_service --listen 7600 &
//   ./build/examples/streaming_service --connect 7600
//
// The server feeds every received frame into its FleetService and (with
// --verify) checks the drained result against an in-process replay of the
// same deterministic stream - the loopback run is bit-identical. A client
// cut mid-stream (--abort-after N, or a real SIGKILL) leaves the server's
// session cursor intact; rerunning the client with --resume continues from
// the last acknowledged frame and the final output is still identical.
//
// Build & run:  ./build/examples/streaming_service
// Flags (in-process mode):
//   --threads N          worker threads (default 4)
//   --snapshot-every N   checkpoint every N submitted frames (default off)
//   --snapshot-path P    checkpoint file (default streaming_service.snapshot)
//   --restore P          restore from checkpoint P, then resume the stream
//   --alarm-log P        write the final alarm list (total order) to P
// Flags (server role):
//   --listen N           serve ingest on port N (0 = ephemeral)
//   --port-file P        write the bound port to P (for scripts using 0)
//   --sessions N         finished sessions to wait for (default 1)
//   --verify             after draining, compare against an in-process replay
// Flags (client role):
//   --connect N          stream the demo fleet to port N
//   --host H             server address (default 127.0.0.1)
//   --session S          session id (default "demo"; resume key)
//   --resume             resume the session from the server's cursor
//   --abort-after N      simulate a crash: exit without FIN after N frames
#include <cstdio>
#include <string>

#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"
#include "util/args.h"

namespace {

using namespace navarchos;

bool WriteAlarmLog(const std::string& path,
                   const std::vector<navarchos::core::Alarm>& alarms) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  for (const auto& alarm : alarms) {
    std::fprintf(file, "%d %lld %zu %s %.17g %.17g\n", alarm.vehicle_id,
                 static_cast<long long>(alarm.timestamp), alarm.channel,
                 alarm.channel_name.c_str(), alarm.score, alarm.threshold);
  }
  std::fclose(file);
  return true;
}

// The demo fleet: deterministic, so server, client and the in-process
// verification replay all reconstruct the identical stream independently.
telemetry::FleetDataset MakeFleet() {
  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::TestScale();
  fleet_config.days = 200;
  fleet_config.service_interval_days = 60;
  fleet_config.fault_lead_days = 30;
  return telemetry::GenerateFleet(fleet_config);
}

service::ServiceConfig MakeServiceConfig(int threads) {
  service::ServiceConfig config;
  config.monitor.transform = transform::TransformKind::kCorrelation;
  config.monitor.detector = detect::DetectorKind::kClosestPair;
  config.monitor.threshold.factor = 10.0;
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 128;  // frames buffered per vehicle before blocking
  return config;
}

bool AlarmsIdentical(const std::vector<core::Alarm>& a,
                     const std::vector<core::Alarm>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].vehicle_id != b[i].vehicle_id ||
        a[i].timestamp != b[i].timestamp || a[i].score != b[i].score)
      return false;
  return true;
}

/// Server role: serve TCP ingest until the expected sessions finished, then
/// drain and report - optionally verifying against the in-process replay.
int RunServer(const util::Args& args) {
  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const auto listen_port =
      static_cast<std::uint16_t>(args.GetInt("listen", 0));
  const std::string port_file = args.GetString("port-file", "");
  const auto sessions = static_cast<std::uint64_t>(args.GetInt("sessions", 1));
  const std::string alarm_log = args.GetString("alarm-log", "");

  service::FleetService svc(MakeServiceConfig(threads));
  net::ServerConfig server_config;
  server_config.port = listen_port;
  net::IngestServer server(&svc, server_config);
  const util::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", status.message().c_str());
    return 2;
  }
  std::printf("listening on port %u\n", server.port());
  std::fflush(stdout);  // scripts background this role and tail the log
  if (!port_file.empty()) {
    std::FILE* file = std::fopen(port_file.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
      return 2;
    }
    std::fprintf(file, "%u\n", server.port());
    std::fclose(file);
  }

  server.WaitForFinishedSessions(sessions);
  server.Stop();
  svc.Drain();

  const net::ServerStats net_stats = server.stats();
  const auto stats = svc.stats();
  const auto live = svc.TakeResult();
  std::printf(
      "served %llu frames (%llu admitted, %llu shed, %llu duplicates "
      "skipped) over %llu connections, %llu resume(s)\n",
      static_cast<unsigned long long>(net_stats.frames_received),
      static_cast<unsigned long long>(net_stats.frames_admitted),
      static_cast<unsigned long long>(net_stats.frames_shed),
      static_cast<unsigned long long>(net_stats.duplicates_skipped),
      static_cast<unsigned long long>(net_stats.connections_accepted),
      static_cast<unsigned long long>(net_stats.resumes));
  std::printf("processed %zu frames, %zu alarms\n", stats.frames_processed,
              live.alarms.size());

  if (!alarm_log.empty() && !WriteAlarmLog(alarm_log, live.alarms)) {
    std::fprintf(stderr, "cannot write alarm log %s\n", alarm_log.c_str());
    return 2;
  }

  if (args.Has("verify")) {
    const telemetry::FleetDataset fleet = MakeFleet();
    const auto stream = telemetry::InterleaveFleetStream(fleet);
    const auto replay = service::RunStream(
        stream, service::VehicleIdsOf(fleet), MakeServiceConfig(1));
    const bool identical = AlarmsIdentical(replay.alarms, live.alarms);
    std::printf("in-process replay of the same stream: %s\n",
                identical ? "identical alarms (loopback == in-process)"
                          : "MISMATCH");
    return identical ? 0 : 1;
  }
  return 0;
}

/// Client role: stream the demo fleet to a server, resuming from the
/// server's cursor; --abort-after simulates a mid-stream crash (no FIN).
int RunClient(const util::Args& args) {
  net::ClientConfig config;
  config.host = args.GetString("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.GetInt("connect", 0));
  config.session_id = args.GetString("session", "demo");
  const std::int64_t abort_after = args.GetInt("abort-after", 0);
  const bool resume = args.Has("resume");

  const telemetry::FleetDataset fleet = MakeFleet();
  const auto stream = telemetry::InterleaveFleetStream(fleet);

  net::IngestClient client(config);
  util::Status status = client.Connect(service::VehicleIdsOf(fleet), resume);
  if (!status.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", status.message().c_str());
    return 2;
  }
  const std::uint64_t start = client.next_seq();
  std::printf("%s session '%s' at frame %llu of %zu\n",
              resume ? "resumed" : "started", config.session_id.c_str(),
              static_cast<unsigned long long>(start), stream.size());

  std::uint64_t sent = 0;
  for (std::uint64_t i = start; i < stream.size(); ++i) {
    status = client.Send(stream[i]);
    if (!status.ok()) {
      std::fprintf(stderr, "send failed at frame %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   status.message().c_str());
      return 2;
    }
    if (abort_after > 0 &&
        ++sent >= static_cast<std::uint64_t>(abort_after)) {
      // Simulated crash: drop the connection with no flush and no FIN -
      // from the server's viewpoint this is a client SIGKILL. Un-ACKed
      // frames are re-sent by the next client that resumes the session.
      client.Abort();
      std::printf("aborted after %llu frames (next unsent seq %llu)\n",
                  static_cast<unsigned long long>(sent),
                  static_cast<unsigned long long>(client.next_seq()));
      return 0;
    }
  }
  status = client.Finish();
  if (!status.ok()) {
    std::fprintf(stderr, "finish failed: %s\n", status.message().c_str());
    return 2;
  }
  std::printf("streamed %llu frames, %zu shed (NACKed)\n",
              static_cast<unsigned long long>(client.stats().frames_sent),
              client.nacks().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.Has("listen")) return RunServer(args);
  if (args.Has("connect")) return RunClient(args);

  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const std::int64_t snapshot_every = args.GetInt("snapshot-every", 0);
  const std::string snapshot_path =
      args.GetString("snapshot-path", "streaming_service.snapshot");
  const std::string restore_path = args.GetString("restore", "");
  const std::string alarm_log = args.GetString("alarm-log", "");

  // --- 1. A recorded interleaved feed (stand-in for the live gateway). ----
  const telemetry::FleetDataset fleet = MakeFleet();
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  std::printf("interleaved feed: %zu frames from %zu vehicles\n",
              stream.size(), fleet.vehicles.size());

  // --- 2. The streaming service, with blocking backpressure. --------------
  const service::ServiceConfig config = MakeServiceConfig(threads);

  service::FleetService svc(config);
  std::size_t resume_cursor = 0;
  if (!restore_path.empty()) {
    // Rebuild the whole service - lanes, monitors, sequence counters, the
    // released alarms - from the checkpoint, then resume the stream from the
    // checkpointed ingest cursor (every frame before it was fully processed
    // and released before the checkpoint was written).
    const util::Status status = svc.RestoreFromFile(restore_path);
    if (!status.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", status.message().c_str());
      return 2;
    }
    resume_cursor = svc.stats().frames_accepted;
    std::printf("restored %zu vehicles from %s, resuming at frame %zu\n",
                svc.vehicle_count(), restore_path.c_str(), resume_cursor);
  } else {
    for (const auto& vehicle : fleet.vehicles) svc.RegisterVehicle(vehicle.spec.id);
  }

  std::size_t live_alarms = 0;
  svc.set_alarm_callback([&live_alarms](const core::Alarm& alarm) {
    if (++live_alarms <= 5)  // print the first few, count the rest
      std::printf("  live alarm: vehicle %d, minute %lld, channel %s\n",
                  alarm.vehicle_id, static_cast<long long>(alarm.timestamp),
                  alarm.channel_name.c_str());
  });

  std::size_t since_snapshot = 0;
  for (std::size_t i = resume_cursor; i < stream.size(); ++i) {  // live ingest
    svc.Submit(stream[i]);
    if (snapshot_every > 0 &&
        ++since_snapshot >= static_cast<std::size_t>(snapshot_every)) {
      since_snapshot = 0;
      const util::Status status = svc.Checkpoint(snapshot_path);
      if (!status.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n", status.message().c_str());
        return 2;
      }
    }
  }
  svc.Drain();  // graceful shutdown

  // --- 3. The drained result is deterministic: a serial replay agrees. ----
  const auto stats = svc.stats();
  const auto live = svc.TakeResult();
  std::printf("\nprocessed %zu/%zu frames, %zu alarms (%zu seen live)\n",
              stats.frames_processed, stats.frames_submitted,
              live.alarms.size(), live_alarms);

  if (!alarm_log.empty() && !WriteAlarmLog(alarm_log, live.alarms)) {
    std::fprintf(stderr, "cannot write alarm log %s\n", alarm_log.c_str());
    return 2;
  }

  service::ServiceConfig replay_config = config;
  replay_config.runtime = runtime::RuntimeConfig{1};
  const auto replay = service::RunStream(stream, service::VehicleIdsOf(fleet),
                                         replay_config);
  const bool identical = AlarmsIdentical(replay.alarms, live.alarms);
  std::printf("serial replay of the recorded stream: %s\n",
              identical ? "identical alarms (replay == live)" : "MISMATCH");
  return identical ? 0 : 1;
}
