// Streaming service demo: live fleet monitoring over one multiplexed feed,
// with durable checkpoint/restore.
//
// 1. Simulate a small fleet and flatten it into the interleaved SensorFrame
//    stream a live telemetry gateway would deliver (all vehicles mixed,
//    ordered by time).
// 2. Feed the stream into service::FleetService: frames are routed to
//    per-vehicle bounded ingest queues and monitored concurrently on a
//    worker pool, while an alarm callback consumes alarms live, in the
//    deterministic total order. With --snapshot-every N the service also
//    writes a durable checkpoint every N submitted frames.
// 3. Drain (graceful shutdown), then show that the collected result is the
//    one a replay at any other thread count would produce.
//
// Restore mode (--restore <path>) rebuilds the service from a checkpoint
// written by a previous - possibly SIGKILLed - run, resumes the stream from
// the checkpointed cursor, and produces the same total alarm order as an
// uninterrupted run (restore-equals-uninterrupted).
//
// Build & run:  ./build/examples/streaming_service
// Flags:
//   --threads N          worker threads (default 4)
//   --snapshot-every N   checkpoint every N submitted frames (default off)
//   --snapshot-path P    checkpoint file (default streaming_service.snapshot)
//   --restore P          restore from checkpoint P, then resume the stream
//   --alarm-log P        write the final alarm list (total order) to P
#include <cstdio>
#include <string>

#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"
#include "util/args.h"

namespace {

bool WriteAlarmLog(const std::string& path,
                   const std::vector<navarchos::core::Alarm>& alarms) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  for (const auto& alarm : alarms) {
    std::fprintf(file, "%d %lld %zu %s %.17g %.17g\n", alarm.vehicle_id,
                 static_cast<long long>(alarm.timestamp), alarm.channel,
                 alarm.channel_name.c_str(), alarm.score, alarm.threshold);
  }
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace navarchos;
  const util::Args args(argc, argv);
  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const std::int64_t snapshot_every = args.GetInt("snapshot-every", 0);
  const std::string snapshot_path =
      args.GetString("snapshot-path", "streaming_service.snapshot");
  const std::string restore_path = args.GetString("restore", "");
  const std::string alarm_log = args.GetString("alarm-log", "");

  // --- 1. A recorded interleaved feed (stand-in for the live gateway). ----
  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::TestScale();
  fleet_config.days = 200;
  fleet_config.service_interval_days = 60;
  fleet_config.fault_lead_days = 30;
  const telemetry::FleetDataset fleet = telemetry::GenerateFleet(fleet_config);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  std::printf("interleaved feed: %zu frames from %zu vehicles\n",
              stream.size(), fleet.vehicles.size());

  // --- 2. The streaming service, with blocking backpressure. --------------
  service::ServiceConfig config;
  config.monitor.transform = transform::TransformKind::kCorrelation;
  config.monitor.detector = detect::DetectorKind::kClosestPair;
  config.monitor.threshold.factor = 10.0;
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 128;  // frames buffered per vehicle before blocking

  service::FleetService svc(config);
  std::size_t resume_cursor = 0;
  if (!restore_path.empty()) {
    // Rebuild the whole service - lanes, monitors, sequence counters, the
    // released alarms - from the checkpoint, then resume the stream from the
    // checkpointed ingest cursor (every frame before it was fully processed
    // and released before the checkpoint was written).
    const util::Status status = svc.RestoreFromFile(restore_path);
    if (!status.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", status.message().c_str());
      return 2;
    }
    resume_cursor = svc.stats().frames_accepted;
    std::printf("restored %zu vehicles from %s, resuming at frame %zu\n",
                svc.vehicle_count(), restore_path.c_str(), resume_cursor);
  } else {
    for (const auto& vehicle : fleet.vehicles) svc.RegisterVehicle(vehicle.spec.id);
  }

  std::size_t live_alarms = 0;
  svc.set_alarm_callback([&live_alarms](const core::Alarm& alarm) {
    if (++live_alarms <= 5)  // print the first few, count the rest
      std::printf("  live alarm: vehicle %d, minute %lld, channel %s\n",
                  alarm.vehicle_id, static_cast<long long>(alarm.timestamp),
                  alarm.channel_name.c_str());
  });

  std::size_t since_snapshot = 0;
  for (std::size_t i = resume_cursor; i < stream.size(); ++i) {  // live ingest
    svc.Submit(stream[i]);
    if (snapshot_every > 0 &&
        ++since_snapshot >= static_cast<std::size_t>(snapshot_every)) {
      since_snapshot = 0;
      const util::Status status = svc.Checkpoint(snapshot_path);
      if (!status.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n", status.message().c_str());
        return 2;
      }
    }
  }
  svc.Drain();  // graceful shutdown

  // --- 3. The drained result is deterministic: a serial replay agrees. ----
  const auto stats = svc.stats();
  const auto live = svc.TakeResult();
  std::printf("\nprocessed %zu/%zu frames, %zu alarms (%zu seen live)\n",
              stats.frames_processed, stats.frames_submitted,
              live.alarms.size(), live_alarms);

  if (!alarm_log.empty() && !WriteAlarmLog(alarm_log, live.alarms)) {
    std::fprintf(stderr, "cannot write alarm log %s\n", alarm_log.c_str());
    return 2;
  }

  service::ServiceConfig replay_config = config;
  replay_config.runtime = runtime::RuntimeConfig{1};
  const auto replay = service::RunStream(stream, service::VehicleIdsOf(fleet),
                                         replay_config);
  const bool identical =
      replay.alarms.size() == live.alarms.size() &&
      [&]() {
        for (std::size_t i = 0; i < replay.alarms.size(); ++i)
          if (replay.alarms[i].vehicle_id != live.alarms[i].vehicle_id ||
              replay.alarms[i].timestamp != live.alarms[i].timestamp ||
              replay.alarms[i].score != live.alarms[i].score)
            return false;
        return true;
      }();
  std::printf("serial replay of the recorded stream: %s\n",
              identical ? "identical alarms (replay == live)" : "MISMATCH");
  return identical ? 0 : 1;
}
