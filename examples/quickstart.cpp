// Quickstart: the complete PdM solution in ~60 lines.
//
// 1. Simulate a small fleet (stand-in for an OBD-II feed).
// 2. Stream one vehicle's records and events through a VehicleMonitor
//    configured as the paper's adopted solution: correlation transform +
//    closest-pair detection + self-tuning thresholds, with the reference
//    profile rebuilt after every recorded maintenance event.
// 3. Print the alarms with their feature attribution.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/monitor.h"
#include "telemetry/fleet.h"

int main() {
  using namespace navarchos;

  // --- 1. A small simulated fleet (deterministic; see telemetry/fleet.h). --
  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::TestScale();
  fleet_config.days = 200;
  fleet_config.service_interval_days = 60;
  fleet_config.fault_lead_days = 30;
  const telemetry::FleetDataset fleet = telemetry::GenerateFleet(fleet_config);

  // --- 2 + 3. Stream every failing vehicle through the paper's complete
  // solution (Algorithm 1) and print the alarms with their attribution. ---
  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detect::DetectorKind::kClosestPair;
  config.threshold.factor = 10.0;  // self-tuning multiplier, shared fleet-wide

  std::size_t total_alarm_days = 0;
  for (const auto& vehicle : fleet.vehicles) {
    // Demo view: follow every vehicle that truly degrades (in production the
    // ground truth is unknown and every vehicle is monitored).
    if (vehicle.faults.empty()) continue;
    std::printf("\nmonitoring %s: %zu records, %zu recorded events\n",
                vehicle.spec.DisplayName().c_str(), vehicle.records.size(),
                vehicle.RecordedEvents().size());

    core::VehicleMonitor monitor(vehicle.spec.id, config);
    std::size_t record_index = 0, event_index = 0;
    std::int64_t last_alarm_day = -1;
    const auto& records = vehicle.records;
    const auto& events = vehicle.events;
    while (record_index < records.size() || event_index < events.size()) {
      const bool take_event =
          event_index < events.size() &&
          (record_index >= records.size() ||
           events[event_index].timestamp <= records[record_index].timestamp);
      if (take_event) {
        monitor.OnEvent(events[event_index++]);
        continue;
      }
      if (auto alarm = monitor.OnRecord(records[record_index++])) {
        const std::int64_t day = telemetry::DayOf(alarm->timestamp);
        if (day != last_alarm_day) {  // one line per alarm day
          std::printf("  day %3lld: ALARM on %-28s score %.3f > threshold %.3f\n",
                      static_cast<long long>(day), alarm->channel_name.c_str(),
                      alarm->score, alarm->threshold);
          last_alarm_day = day;
          ++total_alarm_days;
        }
      }
    }
    // The ingest guard buffers a few records for out-of-order recovery:
    // drain it at end of stream.
    for (const auto& alarm : monitor.Flush()) {
      const std::int64_t day = telemetry::DayOf(alarm.timestamp);
      if (day != last_alarm_day) {
        std::printf("  day %3lld: ALARM on %-28s score %.3f > threshold %.3f\n",
                    static_cast<long long>(day), alarm.channel_name.c_str(),
                    alarm.score, alarm.threshold);
        last_alarm_day = day;
        ++total_alarm_days;
      }
    }
    // Ground truth for comparison (would be unknown in production).
    for (const auto& fault : vehicle.faults) {
      std::printf("  ground truth: %s degraded from day %lld until the repair "
                  "on day %lld\n",
                  telemetry::FaultTypeName(fault.type),
                  static_cast<long long>(telemetry::DayOf(fault.onset)),
                  static_cast<long long>(telemetry::DayOf(fault.repair_time)));
    }
  }
  std::printf("\n%zu alarm day(s) raised across the failing vehicles.\n",
              total_alarm_days);
  return 0;
}
