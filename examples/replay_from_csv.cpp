// Replay from CSV: run the complete solution on externally provided data.
//
// Demonstrates the deployment path for real fleets: export (or produce) a
// pair of CSV files in the library's exchange format - one record per
// operating minute, one row per maintenance/DTC event - and stream them
// through the monitor. Here the files are first produced from the simulator
// so the example is self-contained; point --prefix at your own files to run
// on real data.
//
// Flags: --prefix PATH (CSV pair prefix; generated if absent),
//        --factor F, --days N, --seed S.
#include <cstdio>
#include <filesystem>

#include "core/fleet_runner.h"
#include "eval/metrics.h"
#include "telemetry/io.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace navarchos;
  const util::Args args(argc, argv);
  std::string prefix = args.GetString("prefix", "");

  if (prefix.empty()) {
    // Self-contained mode: export a simulated fleet first.
    telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
    config.days = static_cast<int>(args.GetInt("days", 200));
    config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
    config.service_interval_days = 60;
    config.fault_lead_days = 30;
    const auto fleet = telemetry::GenerateFleet(config);
    prefix = "replay_demo";
    const util::Status status = telemetry::WriteFleetCsv(prefix, fleet);
    if (!status.ok()) {
      std::fprintf(stderr, "export failed: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("exported simulated fleet to %s_records.csv / %s_events.csv\n",
                prefix.c_str(), prefix.c_str());
  }

  telemetry::FleetDataset fleet;
  telemetry::FleetCsvStats csv_stats;
  const util::Status status = telemetry::ReadFleetCsv(prefix, &fleet, &csv_stats);
  if (!status.ok()) {
    std::fprintf(stderr, "import failed: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("loaded %zu vehicles, %zu records, %zu recorded events\n",
              fleet.vehicles.size(), fleet.TotalRecords(),
              fleet.TotalRecordedEvents());
  if (csv_stats.skipped_record_rows > 0 || csv_stats.skipped_event_rows > 0) {
    std::printf("skipped %zu record row(s) and %zu event row(s) with "
                "out-of-range values\n",
                csv_stats.skipped_record_rows, csv_stats.skipped_event_rows);
  }

  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detect::DetectorKind::kClosestPair;
  config.threshold.factor = args.GetDouble("factor", 10.0);
  const auto run = core::RunFleet(fleet, config);

  std::size_t alarm_days = 0;
  for (const auto& alarm : run.alarms) {
    static std::int64_t last_key = -1;
    const std::int64_t key =
        alarm.vehicle_id * 1000000LL + telemetry::DayOf(alarm.timestamp);
    if (key == last_key) continue;
    last_key = key;
    std::printf("  vehicle %d day %lld: %s (score %.3f > %.3f)\n", alarm.vehicle_id,
                static_cast<long long>(telemetry::DayOf(alarm.timestamp)),
                alarm.channel_name.c_str(), alarm.score, alarm.threshold);
    ++alarm_days;
  }
  std::printf("%zu alarm day(s).\n", alarm_days);

  const core::DataQualityReport quality = run.TotalQuality();
  std::printf("ingest: %zu records seen, %zu dropped (%zu stationary, %zu "
              "sensor-faulty, %zu duplicate, %zu late, %zu non-finite)\n",
              quality.records_seen, quality.RecordsDropped(),
              quality.stationary_dropped, quality.sensor_faulty_dropped,
              quality.duplicates_dropped, quality.late_dropped,
              quality.non_finite_dropped);

  const auto metrics = eval::EvaluateAlarms(run.alarms, fleet, 30);
  if (metrics.total_failures > 0) {
    std::printf("vs recorded repairs (PH=30): P %.2f R %.2f F0.5 %.2f\n",
                metrics.precision, metrics.recall, metrics.f05);
  }
  return 0;
}
