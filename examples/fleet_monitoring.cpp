// Fleet monitoring: the operational scenario the paper's FMS provider faces.
//
// Runs the complete solution over an entire fleet, then prints an operations
// report: which vehicles raised alarms, on which features, and how the
// alarms line up with the (partially recorded) maintenance events. This is
// the view a fleet manager would act on - book an inspection for flagged
// vehicles.
//
// Flags: --days N (default 365), --seed S, --factor F (threshold factor).
#include <cstdio>
#include <map>
#include <set>

#include "core/fleet_runner.h"
#include "eval/metrics.h"
#include "util/args.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace navarchos;
  const util::Args args(argc, argv);

  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::PaperScale();
  fleet_config.days = static_cast<int>(args.GetInt("days", 365));
  fleet_config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 42));
  const double factor = args.GetDouble("factor", 14.0);

  std::printf("generating fleet (%d vehicles, %d days)...\n",
              fleet_config.num_vehicles, fleet_config.days);
  const auto fleet = telemetry::GenerateFleet(fleet_config).ReportingSubset();

  core::MonitorConfig config;
  config.transform = transform::TransformKind::kCorrelation;
  config.detector = detect::DetectorKind::kClosestPair;
  config.threshold.factor = factor;
  std::printf("running closest-pair on correlation data, factor %.1f...\n\n",
              factor);
  const auto run = core::RunFleet(fleet, config);

  // Operations report: per flagged vehicle, alarm days + attribution.
  util::Table table({"vehicle", "alarm days", "first", "last",
                     "top feature", "repair within 30d?"});
  std::map<int, const telemetry::VehicleHistory*> by_id;
  for (const auto& vehicle : fleet.vehicles) by_id[vehicle.spec.id] = &vehicle;

  std::map<int, std::vector<const core::Alarm*>> alarms_by_vehicle;
  const auto alarms = run.AlarmsAt(factor);
  for (const auto& alarm : alarms) alarms_by_vehicle[alarm.vehicle_id].push_back(&alarm);

  int flagged = 0;
  for (const auto& [vehicle_id, vehicle_alarms] : alarms_by_vehicle) {
    std::set<std::int64_t> days;
    std::map<std::string, int> features;
    for (const auto* alarm : vehicle_alarms) {
      days.insert(telemetry::DayOf(alarm->timestamp));
      ++features[alarm->channel_name];
    }
    std::string top_feature;
    int top_count = 0;
    for (const auto& [feature, count] : features) {
      if (count > top_count) {
        top_feature = feature;
        top_count = count;
      }
    }
    // Does a recorded repair follow within 30 days of the last alarm?
    bool repair_followed = false;
    for (telemetry::Minute repair : by_id[vehicle_id]->RecordedRepairTimes()) {
      const std::int64_t repair_day = telemetry::DayOf(repair);
      if (repair_day >= *days.rbegin() && repair_day <= *days.rbegin() + 30)
        repair_followed = true;
    }
    table.AddRow({by_id[vehicle_id]->spec.DisplayName(),
                  std::to_string(days.size()), std::to_string(*days.begin()),
                  std::to_string(*days.rbegin()), top_feature,
                  repair_followed ? "yes" : "no"});
    ++flagged;
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n%d of %zu vehicles flagged.\n", flagged, fleet.vehicles.size());

  const auto metrics = eval::EvaluateAlarms(alarms, fleet, 30);
  std::printf("against recorded repairs (PH=30): precision %.2f, recall %.2f, "
              "F0.5 %.2f (%d/%d failures anticipated, %d false episodes)\n",
              metrics.precision, metrics.recall, metrics.f05,
              metrics.detected_failures, metrics.total_failures,
              metrics.false_positive_episodes);
  return 0;
}
