// The query engine's semantics over hand-crafted logs, where every answer
// can be computed on paper: RANK's severity-ratio aggregation, window
// filtering, ordering and tie-breaks; TIMELINE's range filter and
// newest-tail truncation; COMOVE's rank-weighted channel accumulation,
// window clamping and anchor resolution errors.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "history/history_log.h"
#include "history/query.h"

namespace navarchos::history {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

HistoryRecord MakeRecord(std::int32_t vehicle, std::uint64_t seq,
                         std::int64_t ts, double score, double threshold,
                         bool alarm,
                         std::vector<std::uint32_t> channels = {}) {
  HistoryRecord record;
  record.vehicle_id = vehicle;
  record.global_seq = seq;
  record.timestamp = ts;
  record.score = score;
  record.threshold = threshold;
  record.alarm = alarm;
  record.top_channels = std::move(channels);
  return record;
}

void WriteLog(const std::string& dir,
              const std::vector<HistoryRecord>& records) {
  HistoryWriter writer;
  ASSERT_TRUE(writer.Open(dir).ok());
  for (const HistoryRecord& record : records)
    ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Close().ok());
}

TEST(QueryEngineTest, SeverityRatioFallsBackToRawScore) {
  EXPECT_EQ(SeverityRatio(MakeRecord(0, 0, 0, 3.0, 2.0, false)), 1.5);
  EXPECT_EQ(SeverityRatio(MakeRecord(0, 0, 0, 3.0, 0.0, false)), 3.0);
  EXPECT_EQ(SeverityRatio(MakeRecord(0, 0, 0, 3.0, -1.0, false)), 3.0);
}

TEST(QueryEngineTest, RankAggregatesPerVehicleWorstFirst) {
  const std::string dir = FreshDir("navq_rank");
  // Vehicle 1: ratios 2.0 and 1.0 (mean 1.5, max 2.0), one alarm.
  // Vehicle 2: ratios 0.5 and 0.5 (mean 0.5), no alarms.
  // Vehicle 3: one ratio 4.0 (mean 4.0) - worst overall.
  WriteLog(dir, {
    MakeRecord(1, 10, 100, 2.0, 1.0, true),
    MakeRecord(1, 11, 110, 1.0, 1.0, false),
    MakeRecord(2, 12, 105, 1.0, 2.0, false),
    MakeRecord(2, 13, 115, 0.25, 0.5, false),
    MakeRecord(3, 14, 90, 4.0, 1.0, true),
  });
  const QueryEngine engine(dir);
  RankResult result;
  ASSERT_TRUE(engine.Rank(RankQuery{}, &result).ok());
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_EQ(result.entries[0].vehicle_id, 3);
  EXPECT_EQ(result.entries[0].mean_ratio, 4.0);
  EXPECT_EQ(result.entries[0].records, 1u);
  EXPECT_EQ(result.entries[0].alarms, 1u);
  EXPECT_EQ(result.entries[0].last_ts, 90);
  EXPECT_EQ(result.entries[1].vehicle_id, 1);
  EXPECT_EQ(result.entries[1].mean_ratio, 1.5);
  EXPECT_EQ(result.entries[1].max_ratio, 2.0);
  EXPECT_EQ(result.entries[1].alarms, 1u);
  EXPECT_EQ(result.entries[2].vehicle_id, 2);
  EXPECT_EQ(result.entries[2].mean_ratio, 0.5);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, RankTieBreaksOnMaxRatioThenVehicleId) {
  const std::string dir = FreshDir("navq_rank_ties");
  // All three vehicles share mean 1.0; vehicle 5 has max 1.5, vehicles 4
  // and 6 are fully identical - id ascending breaks the final tie.
  WriteLog(dir, {
    MakeRecord(4, 10, 100, 1.0, 1.0, false),
    MakeRecord(5, 11, 100, 1.5, 1.0, false),
    MakeRecord(5, 12, 110, 0.5, 1.0, false),
    MakeRecord(6, 13, 100, 1.0, 1.0, false),
  });
  const QueryEngine engine(dir);
  RankResult result;
  ASSERT_TRUE(engine.Rank(RankQuery{}, &result).ok());
  ASSERT_EQ(result.entries.size(), 3u);
  EXPECT_EQ(result.entries[0].vehicle_id, 5);
  EXPECT_EQ(result.entries[1].vehicle_id, 4);
  EXPECT_EQ(result.entries[2].vehicle_id, 6);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, RankWindowFiltersAndOmitsEmptyVehicles) {
  const std::string dir = FreshDir("navq_rank_window");
  WriteLog(dir, {
    MakeRecord(1, 10, 100, 8.0, 1.0, true),   // before the window
    MakeRecord(1, 11, 160, 1.0, 1.0, false),  // inside
    MakeRecord(2, 12, 90, 2.0, 1.0, false),   // before the window
    MakeRecord(1, 13, 210, 9.0, 1.0, true),   // after end_ts
  });
  RankQuery query;
  query.end_ts = 200;
  query.window_minutes = 100;  // window is (100, 200]
  const QueryEngine engine(dir);
  RankResult result;
  ASSERT_TRUE(engine.Rank(query, &result).ok());
  ASSERT_EQ(result.entries.size(), 1u);  // vehicle 2 has nothing in window
  EXPECT_EQ(result.entries[0].vehicle_id, 1);
  EXPECT_EQ(result.entries[0].records, 1u);
  EXPECT_EQ(result.entries[0].mean_ratio, 1.0);
  EXPECT_EQ(result.entries[0].alarms, 0u);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, RankLimitKeepsTheWorst) {
  const std::string dir = FreshDir("navq_rank_limit");
  WriteLog(dir, {
    MakeRecord(1, 10, 100, 1.0, 1.0, false),
    MakeRecord(2, 11, 100, 3.0, 1.0, false),
    MakeRecord(3, 12, 100, 2.0, 1.0, false),
  });
  RankQuery query;
  query.limit = 2;
  const QueryEngine engine(dir);
  RankResult result;
  ASSERT_TRUE(engine.Rank(query, &result).ok());
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].vehicle_id, 2);
  EXPECT_EQ(result.entries[1].vehicle_id, 3);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, TimelineFiltersRangeAndKeepsNewestTail) {
  const std::string dir = FreshDir("navq_timeline");
  WriteLog(dir, {
    MakeRecord(7, 10, 100, 0.1, 1.0, false, {1}),
    MakeRecord(7, 11, 200, 0.2, 1.0, false, {2}),
    MakeRecord(7, 12, 300, 0.3, 1.0, true, {3}),
    MakeRecord(7, 13, 400, 0.4, 1.0, false, {4}),
    MakeRecord(8, 14, 250, 9.0, 1.0, true, {5}),  // other vehicle
  });
  const QueryEngine engine(dir);

  TimelineQuery query;
  query.vehicle_id = 7;
  query.start_ts = 150;
  query.end_ts = 350;
  TimelineResult result;
  ASSERT_TRUE(engine.Timeline(query, &result).ok());
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].timestamp, 200);
  EXPECT_EQ(result.records[1].timestamp, 300);
  EXPECT_TRUE(result.records[1].alarm);
  EXPECT_EQ(result.records[1].top_channels, std::vector<std::uint32_t>{3});

  // max_records keeps the NEWEST of the range, not the oldest.
  TimelineQuery tail;
  tail.vehicle_id = 7;
  tail.max_records = 2;
  ASSERT_TRUE(engine.Timeline(tail, &result).ok());
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].timestamp, 300);
  EXPECT_EQ(result.records[1].timestamp, 400);

  // A vehicle with no records answers empty, not an error.
  TimelineQuery absent;
  absent.vehicle_id = 99;
  ASSERT_TRUE(engine.Timeline(absent, &result).ok());
  EXPECT_TRUE(result.records.empty());
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, ComoveAccumulatesRankWeightedChannels) {
  const std::string dir = FreshDir("navq_comove");
  // Window 1 around the alarm at seq 21 covers records 20..22. Channel 3
  // appears in all three (weights 2 + 3 + 1 = 6, hits 3); channel 1 in two
  // (weights 1 + 2 = 3); channel 9 once at top of k=3 (weight 3, hits 1) -
  // equal weight to channel 1, so hits break the tie in 1's favour.
  WriteLog(dir, {
    MakeRecord(2, 19, 90, 0.1, 1.0, false, {5}),      // outside the window
    MakeRecord(2, 20, 100, 0.5, 1.0, false, {3, 1}),
    MakeRecord(2, 21, 110, 2.0, 1.0, true, {3, 1, 6}),
    MakeRecord(2, 22, 120, 0.7, 1.0, false, {9, 4, 3}),
    MakeRecord(2, 23, 130, 0.1, 1.0, false, {8}),     // outside the window
  });
  ComoveQuery query;
  query.alarm_seq = 21;
  query.window = 1;
  const QueryEngine engine(dir);
  ComoveResult result;
  ASSERT_TRUE(engine.Comove(query, &result).ok());
  EXPECT_EQ(result.vehicle_id, 2);
  EXPECT_EQ(result.alarm_ts, 110);
  ASSERT_EQ(result.entries.size(), 5u);
  EXPECT_EQ(result.entries[0].channel, 3u);
  EXPECT_EQ(result.entries[0].weight, 6u);
  EXPECT_EQ(result.entries[0].hits, 3u);
  EXPECT_EQ(result.entries[1].channel, 1u);
  EXPECT_EQ(result.entries[1].weight, 3u);
  EXPECT_EQ(result.entries[1].hits, 2u);
  EXPECT_EQ(result.entries[2].channel, 9u);
  EXPECT_EQ(result.entries[2].weight, 3u);
  EXPECT_EQ(result.entries[2].hits, 1u);
  EXPECT_EQ(result.entries[3].channel, 4u);
  EXPECT_EQ(result.entries[3].weight, 2u);
  EXPECT_EQ(result.entries[4].channel, 6u);
  EXPECT_EQ(result.entries[4].weight, 1u);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, ComoveWindowClampsAtTheLogEdges) {
  const std::string dir = FreshDir("navq_comove_clamp");
  WriteLog(dir, {
    MakeRecord(1, 30, 100, 2.0, 1.0, true, {2}),
    MakeRecord(1, 31, 110, 0.5, 1.0, false, {7}),
  });
  ComoveQuery query;
  query.alarm_seq = 30;
  query.window = 50;  // far larger than the log
  const QueryEngine engine(dir);
  ComoveResult result;
  ASSERT_TRUE(engine.Comove(query, &result).ok());
  ASSERT_EQ(result.entries.size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, ComoveRequiresAnAlarmedAnchor) {
  const std::string dir = FreshDir("navq_comove_anchor");
  WriteLog(dir, {
    MakeRecord(1, 40, 100, 0.5, 1.0, false, {2}),  // seq exists, no alarm
    MakeRecord(1, 41, 110, 2.0, 1.0, true, {3}),
  });
  const QueryEngine engine(dir);
  ComoveResult result;
  ComoveQuery query;
  query.alarm_seq = 40;
  util::Status status = engine.Comove(query, &result);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("40"), std::string::npos);
  query.alarm_seq = 999;
  EXPECT_FALSE(engine.Comove(query, &result).ok());
  std::filesystem::remove_all(dir);
}

TEST(QueryEngineTest, MissingDirectoryAnswersEmptyRank) {
  const QueryEngine engine(FreshDir("navq_missing"));
  RankResult result;
  ASSERT_TRUE(engine.Rank(RankQuery{}, &result).ok());
  EXPECT_TRUE(result.entries.empty());
}

}  // namespace
}  // namespace navarchos::history
