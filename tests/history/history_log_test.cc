// The anomaly history log's durability contract: records round-trip
// exactly through the segment format, tails survive close/reopen, segments
// roll and seal atomically, torn tail blocks are detected by CRC and
// truncated (never served), sealed-segment corruption is a hard error, a
// crash between seal-rename and part-unlink resolves to the sealed twin,
// and re-appending already-logged records is skipped (the idempotence that
// makes checkpoint replay safe).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "history/history_log.h"

namespace navarchos::history {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

HistoryRecord MakeRecord(std::int32_t vehicle, std::uint64_t seq,
                         std::int64_t ts, double score, double threshold,
                         bool alarm,
                         std::vector<std::uint32_t> channels = {1, 0}) {
  HistoryRecord record;
  record.vehicle_id = vehicle;
  record.global_seq = seq;
  record.timestamp = ts;
  record.score = score;
  record.threshold = threshold;
  record.alarm = alarm;
  record.top_channels = std::move(channels);
  return record;
}

/// A deterministic multi-vehicle record stream: `count` records round-robin
/// over `vehicles`, seq/ts strictly increasing, varied channel lists.
std::vector<HistoryRecord> MakeStream(std::size_t count, int vehicles) {
  std::vector<HistoryRecord> records;
  for (std::size_t i = 0; i < count; ++i) {
    const auto vehicle = static_cast<std::int32_t>(i % vehicles);
    std::vector<std::uint32_t> channels;
    for (std::uint32_t c = 0; c < 1 + i % 4; ++c) channels.push_back((c * 7 + static_cast<std::uint32_t>(i)) % 16);
    records.push_back(MakeRecord(vehicle, 10 + i, 1000 + 3 * static_cast<std::int64_t>(i),
                                 0.25 * static_cast<double>(i % 9),
                                 1.5 + static_cast<double>(i % 3), i % 17 == 0,
                                 std::move(channels)));
  }
  return records;
}

void ExpectRecordEqual(const HistoryRecord& got, const HistoryRecord& want,
                       const std::string& where) {
  EXPECT_EQ(got.vehicle_id, want.vehicle_id) << where;
  EXPECT_EQ(got.global_seq, want.global_seq) << where;
  EXPECT_EQ(got.timestamp, want.timestamp) << where;
  EXPECT_EQ(got.score, want.score) << where;
  EXPECT_EQ(got.threshold, want.threshold) << where;
  EXPECT_EQ(got.alarm, want.alarm) << where;
  EXPECT_EQ(got.top_channels, want.top_channels) << where;
  EXPECT_EQ(got.votes, want.votes) << where;
  EXPECT_EQ(got.ensemble_live, want.ensemble_live) << where;
}

/// Reads the whole directory and checks it holds exactly `want`, in the
/// original per-vehicle order.
void ExpectLogHolds(const std::string& dir,
                    const std::vector<HistoryRecord>& want) {
  std::vector<VehicleLogData> logs;
  const util::Status status = HistoryReader::ReadDir(dir, &logs);
  ASSERT_TRUE(status.ok()) << status.message();
  std::map<std::int32_t, std::vector<HistoryRecord>> expected;
  for (const HistoryRecord& record : want)
    expected[record.vehicle_id].push_back(record);
  ASSERT_EQ(logs.size(), expected.size());
  for (const VehicleLogData& log : logs) {
    const auto it = expected.find(log.vehicle_id);
    ASSERT_NE(it, expected.end()) << "vehicle " << log.vehicle_id;
    ASSERT_EQ(log.records.size(), it->second.size())
        << "vehicle " << log.vehicle_id;
    for (std::size_t i = 0; i < log.records.size(); ++i)
      ExpectRecordEqual(log.records[i], it->second[i],
                        "vehicle " + std::to_string(log.vehicle_id) +
                            " record " + std::to_string(i));
  }
}

/// The path of `vehicle`'s single active .part under `dir`; "" if absent.
std::string PartPathOf(const std::string& dir, std::int32_t vehicle) {
  const std::string prefix = "v" + std::to_string(vehicle) + "_";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && entry.path().extension() == ".part")
      return entry.path().string();
  }
  return "";
}

std::size_t CountFiles(const std::string& dir, const std::string& ext) {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ext) ++count;
  return count;
}

TEST(HistoryLogTest, RoundtripAcrossVehiclesAndBlocks) {
  const std::string dir = FreshDir("navhist_roundtrip");
  const std::vector<HistoryRecord> records = MakeStream(500, 3);
  HistoryConfig config;
  config.block_records = 16;  // several blocks per vehicle
  HistoryWriter writer(config);
  ASSERT_TRUE(writer.Open(dir).ok());
  for (const HistoryRecord& record : records)
    ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(writer.stats().records_appended, records.size());
  EXPECT_EQ(writer.stats().records_skipped, 0u);
  ExpectLogHolds(dir, records);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, TailSurvivesCloseAndReopen) {
  const std::string dir = FreshDir("navhist_reopen");
  const std::vector<HistoryRecord> records = MakeStream(120, 2);
  {
    HistoryWriter writer;
    ASSERT_TRUE(writer.Open(dir).ok());
    for (std::size_t i = 0; i < 60; ++i)
      ASSERT_TRUE(writer.Append(records[i]).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    HistoryWriter writer;
    ASSERT_TRUE(writer.Open(dir).ok());
    for (std::size_t i = 60; i < records.size(); ++i)
      ASSERT_TRUE(writer.Append(records[i]).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  ExpectLogHolds(dir, records);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, SegmentsRollAndSealAtConfiguredSize) {
  const std::string dir = FreshDir("navhist_roll");
  HistoryConfig config;
  config.segment_bytes = 512;  // tiny: force several seals per vehicle
  config.block_records = 4;
  const std::vector<HistoryRecord> records = MakeStream(400, 2);
  HistoryWriter writer(config);
  ASSERT_TRUE(writer.Open(dir).ok());
  for (const HistoryRecord& record : records)
    ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_GE(writer.stats().segments_sealed, 4u);
  EXPECT_GE(CountFiles(dir, ".hseg"), 4u);
  // Sealing leaves no .tmp behind and at most one .part per vehicle.
  EXPECT_EQ(CountFiles(dir, ".tmp"), 0u);
  EXPECT_LE(CountFiles(dir, ".part"), 2u);
  ExpectLogHolds(dir, records);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, TornTailGarbageIsDetectedAndTruncated) {
  const std::string dir = FreshDir("navhist_torn");
  const std::vector<HistoryRecord> records = MakeStream(100, 1);
  {
    HistoryWriter writer;
    ASSERT_TRUE(writer.Open(dir).ok());
    for (const HistoryRecord& record : records)
      ASSERT_TRUE(writer.Append(record).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Simulate a kill -9 mid-write: a partial block frame at the tail.
  const std::string part = PartPathOf(dir, 0);
  ASSERT_FALSE(part.empty());
  const auto clean_size = std::filesystem::file_size(part);
  {
    std::ofstream out(part, std::ios::binary | std::ios::app);
    const char garbage[] = {0x40, 0x00, 0x00, 0x00, 0x13, 0x37, 0x00};
    out.write(garbage, sizeof garbage);
  }

  // The read-only reader serves the valid prefix and counts (but does not
  // remove) the torn bytes.
  std::vector<VehicleLogData> logs;
  ReadStats read_stats;
  ASSERT_TRUE(HistoryReader::ReadDir(dir, &logs, &read_stats).ok());
  EXPECT_EQ(read_stats.torn_tail_bytes, sizeof(char[7]));
  ASSERT_EQ(logs.size(), 1u);
  EXPECT_EQ(logs[0].records.size(), records.size());
  EXPECT_EQ(std::filesystem::file_size(part), clean_size + 7);

  // Reopening the writer truncates the torn bytes and appends cleanly.
  HistoryWriter writer;
  ASSERT_TRUE(writer.Open(dir).ok());
  EXPECT_EQ(writer.stats().torn_bytes_truncated, 7u);
  EXPECT_EQ(std::filesystem::file_size(part), clean_size);
  std::vector<HistoryRecord> extended = records;
  extended.push_back(MakeRecord(0, 5000, 99999, 4.5, 1.0, true));
  ASSERT_TRUE(writer.Append(extended.back()).ok());
  ASSERT_TRUE(writer.Flush().ok());
  ExpectLogHolds(dir, extended);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, CorruptedTailBlockFailsItsCrcAndIsDropped) {
  const std::string dir = FreshDir("navhist_crcflip");
  HistoryConfig config;
  config.block_records = 10;
  const std::vector<HistoryRecord> records = MakeStream(40, 1);
  {
    HistoryWriter writer(config);
    ASSERT_TRUE(writer.Open(dir).ok());
    for (const HistoryRecord& record : records)
      ASSERT_TRUE(writer.Append(record).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  const std::string part = PartPathOf(dir, 0);
  ASSERT_FALSE(part.empty());
  const auto size = std::filesystem::file_size(part);
  {
    // Flip one byte inside the final block's payload.
    std::fstream file(part, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(size) - 20);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(static_cast<std::streamoff>(size) - 20);
    byte = static_cast<char>(byte ^ 0x20);
    file.write(&byte, 1);
  }
  std::vector<VehicleLogData> logs;
  ReadStats read_stats;
  ASSERT_TRUE(HistoryReader::ReadDir(dir, &logs, &read_stats).ok());
  ASSERT_EQ(logs.size(), 1u);
  // The final (corrupt) block is dropped, every block before it survives.
  EXPECT_EQ(logs[0].records.size(), 30u);
  EXPECT_GT(read_stats.torn_tail_bytes, 0u);
  for (std::size_t i = 0; i < logs[0].records.size(); ++i)
    ExpectRecordEqual(logs[0].records[i], records[i],
                      "record " + std::to_string(i));
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, CorruptedSealedSegmentIsAHardError) {
  const std::string dir = FreshDir("navhist_sealed_corrupt");
  HistoryConfig config;
  config.segment_bytes = 512;
  config.block_records = 4;
  const std::vector<HistoryRecord> records = MakeStream(200, 1);
  {
    HistoryWriter writer(config);
    ASSERT_TRUE(writer.Open(dir).ok());
    for (const HistoryRecord& record : records)
      ASSERT_TRUE(writer.Append(record).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string sealed;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".hseg") sealed = entry.path().string();
  ASSERT_FALSE(sealed.empty());
  {
    std::fstream file(sealed, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(sealed) / 2));
    const char byte = 0x7f;
    file.write(&byte, 1);
  }
  std::vector<VehicleLogData> logs;
  const util::Status status = HistoryReader::ReadDir(dir, &logs);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(status.message().empty());
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, CrashBetweenSealRenameAndUnlinkPrefersSealedTwin) {
  const std::string dir = FreshDir("navhist_twin");
  HistoryConfig config;
  config.segment_bytes = 512;
  config.block_records = 4;
  const std::vector<HistoryRecord> records = MakeStream(200, 1);
  {
    HistoryWriter writer(config);
    ASSERT_TRUE(writer.Open(dir).ok());
    for (const HistoryRecord& record : records)
      ASSERT_TRUE(writer.Append(record).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Recreate a stale .part next to a sealed .hseg - the state a crash
  // between rename and unlink leaves behind. Give it truncated content so
  // preferring it would visibly lose records.
  std::string sealed;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".hseg") {
      sealed = entry.path().string();
      break;
    }
  ASSERT_FALSE(sealed.empty());
  std::string stale = sealed;
  stale.replace(stale.size() - 5, 5, ".part");
  {
    std::ifstream in(sealed, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(stale, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  // Both reader and writer resolve the twin to the sealed segment...
  ExpectLogHolds(dir, records);
  HistoryWriter writer(config);
  ASSERT_TRUE(writer.Open(dir).ok());
  // ... and Open removes the stale twin for good.
  EXPECT_FALSE(std::filesystem::exists(stale));
  ExpectLogHolds(dir, records);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, ReappendingLoggedRecordsIsSkipped) {
  const std::string dir = FreshDir("navhist_idem");
  const std::vector<HistoryRecord> records = MakeStream(150, 2);
  {
    HistoryWriter writer;
    ASSERT_TRUE(writer.Open(dir).ok());
    for (const HistoryRecord& record : records)
      ASSERT_TRUE(writer.Append(record).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // A checkpoint replay re-offers the whole stream plus new tail records:
  // the logged prefix must be skipped, the tail appended.
  std::vector<HistoryRecord> extended = records;
  extended.push_back(MakeRecord(0, 9000, 77777, 2.5, 1.25, true, {3}));
  extended.push_back(MakeRecord(1, 9001, 77778, 0.5, 1.25, false, {2, 4}));
  HistoryWriter writer;
  ASSERT_TRUE(writer.Open(dir).ok());
  for (const HistoryRecord& record : extended)
    ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(writer.stats().records_skipped, records.size());
  EXPECT_EQ(writer.stats().records_appended, 2u);
  ExpectLogHolds(dir, extended);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, RecordsSharingAGlobalSeqReplayIdempotently) {
  const std::string dir = FreshDir("navhist_subseq");
  // A frame releasing several reorder-buffered samples logs them all under
  // one global seq; the (seq, sub) cursor must disambiguate them.
  std::vector<HistoryRecord> records;
  records.push_back(MakeRecord(4, 100, 10, 0.1, 1.0, false));
  records.push_back(MakeRecord(4, 105, 20, 0.2, 1.0, false));
  records.push_back(MakeRecord(4, 105, 30, 0.3, 1.0, true));
  records.push_back(MakeRecord(4, 105, 40, 0.4, 1.0, false));
  {
    HistoryWriter writer;
    ASSERT_TRUE(writer.Open(dir).ok());
    for (const HistoryRecord& record : records)
      ASSERT_TRUE(writer.Append(record).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Replay the identical stream; one more sample of seq 105 follows.
  std::vector<HistoryRecord> extended = records;
  extended.push_back(MakeRecord(4, 105, 50, 0.5, 1.0, false));
  HistoryWriter writer;
  ASSERT_TRUE(writer.Open(dir).ok());
  for (const HistoryRecord& record : extended)
    ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(writer.stats().records_skipped, records.size());
  EXPECT_EQ(writer.stats().records_appended, 1u);
  ExpectLogHolds(dir, extended);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, MissingDirectoryReadsAsEmpty) {
  std::vector<VehicleLogData> logs;
  ReadStats read_stats;
  const util::Status status = HistoryReader::ReadDir(
      FreshDir("navhist_missing"), &logs, &read_stats);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_TRUE(logs.empty());
  EXPECT_EQ(read_stats.segments, 0u);
}

TEST(HistoryLogTest, HeaderTornPartIsRemovedOnOpen) {
  const std::string dir = FreshDir("navhist_header_torn");
  std::filesystem::create_directories(dir);
  // A .part cut inside its header: nothing recoverable, Open removes it.
  {
    std::ofstream out(dir + "/v3_000000.part", std::ios::binary);
    const char bytes[] = {0x4e, 0x48, 0x53};
    out.write(bytes, sizeof bytes);
  }
  HistoryWriter writer;
  ASSERT_TRUE(writer.Open(dir).ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/v3_000000.part"));
  EXPECT_GT(writer.stats().torn_bytes_truncated, 0u);
  std::filesystem::remove_all(dir);
}

/// The segment version a file's header claims (0 on failure).
std::uint32_t HeaderVersionOf(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char bytes[8] = {0};
  in.read(bytes, sizeof bytes);
  if (!in) return 0;
  return static_cast<std::uint8_t>(bytes[4]) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[5])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[6])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[7])) << 24);
}

TEST(HistoryLogTest, ConsensusVotesRoundTripThroughVersion2Segments) {
  const std::string dir = FreshDir("navhist_votes");
  std::vector<HistoryRecord> records = MakeStream(200, 2);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].votes = static_cast<std::int32_t>(i % 4);
    records[i].ensemble_live = 3;
  }
  HistoryConfig config;
  config.block_records = 16;
  HistoryWriter writer(config);
  ASSERT_TRUE(writer.Open(dir).ok());
  for (const HistoryRecord& record : records)
    ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(HeaderVersionOf(PartPathOf(dir, 0)), kSegmentVersionVotes);
  ExpectLogHolds(dir, records);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, VoteLessStreamsKeepWritingVersion1Segments) {
  // An ensemble-disabled run (votes == -1 throughout) must produce segments
  // older builds can read: the version-1 layout, byte for byte.
  const std::string dir = FreshDir("navhist_v1_compat");
  const std::vector<HistoryRecord> records = MakeStream(100, 1);
  HistoryWriter writer;
  ASSERT_TRUE(writer.Open(dir).ok());
  for (const HistoryRecord& record : records)
    ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(HeaderVersionOf(PartPathOf(dir, 0)), kSegmentVersion);
  // Version-1 records decode with the no-ensemble defaults.
  std::vector<VehicleLogData> logs;
  ASSERT_TRUE(HistoryReader::ReadDir(dir, &logs).ok());
  ASSERT_EQ(logs.size(), 1u);
  for (const HistoryRecord& record : logs[0].records) {
    EXPECT_EQ(record.votes, -1);
    EXPECT_EQ(record.ensemble_live, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, ResumedVersion1TailKeepsItsLayoutUntilSealed) {
  // A v1 tail from a pre-ensemble run, reopened by a writer whose stream
  // now carries votes: the tail keeps encoding v1 records (votes dropped
  // for that segment only) so its existing delta chain stays decodable.
  const std::string dir = FreshDir("navhist_v1_resume");
  std::vector<HistoryRecord> old_records = MakeStream(40, 1);
  {
    HistoryWriter writer;
    ASSERT_TRUE(writer.Open(dir).ok());
    for (const HistoryRecord& record : old_records)
      ASSERT_TRUE(writer.Append(record).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  HistoryRecord voted = MakeRecord(0, 5000, 99999, 4.5, 1.0, true);
  voted.votes = 2;
  voted.ensemble_live = 3;
  {
    HistoryWriter writer;
    ASSERT_TRUE(writer.Open(dir).ok());
    ASSERT_TRUE(writer.Append(voted).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_EQ(HeaderVersionOf(PartPathOf(dir, 0)), kSegmentVersion);
  std::vector<VehicleLogData> logs;
  ASSERT_TRUE(HistoryReader::ReadDir(dir, &logs).ok());
  ASSERT_EQ(logs.size(), 1u);
  ASSERT_EQ(logs[0].records.size(), old_records.size() + 1);
  const HistoryRecord& last = logs[0].records.back();
  EXPECT_EQ(last.global_seq, voted.global_seq);
  EXPECT_EQ(last.votes, -1);  // dropped with the v1 layout, not invented
  EXPECT_EQ(last.ensemble_live, 0u);
  std::filesystem::remove_all(dir);
}

TEST(HistoryLogTest, VoteFieldsSaturateInsteadOfWrapping) {
  const std::string dir = FreshDir("navhist_votes_saturate");
  HistoryRecord record = MakeRecord(0, 10, 1000, 1.0, 2.0, false);
  record.votes = 1000;          // beyond the u8 tail
  record.ensemble_live = 1000;  // likewise
  HistoryWriter writer;
  ASSERT_TRUE(writer.Open(dir).ok());
  ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Flush().ok());
  std::vector<VehicleLogData> logs;
  ASSERT_TRUE(HistoryReader::ReadDir(dir, &logs).ok());
  ASSERT_EQ(logs.size(), 1u);
  ASSERT_EQ(logs[0].records.size(), 1u);
  EXPECT_EQ(logs[0].records[0].votes, 254);  // 255 on the wire, minus 1
  EXPECT_EQ(logs[0].records[0].ensemble_live, 255u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace navarchos::history
