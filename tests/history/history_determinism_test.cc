// The history subsystem's headline guarantee: the on-disk anomaly log -
// and therefore every RANK / TIMELINE / COMOVE answer - is bit-identical
// whether it was written live at any worker thread count, replayed through
// a fresh writer with different segmentation, or recovered after a kill -9
// that tore the active tail mid-block and lost the buffered remainder,
// with the service restored from its last checkpoint and the stream
// replayed.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "history/history_log.h"
#include "history/history_service.h"
#include "history/query.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

service::ServiceConfig ServiceConfigWith(int threads) {
  service::ServiceConfig config;
  config.monitor = FastMonitorConfig();
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 32;
  return config;
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectLogsIdentical(const std::string& dir_a, const std::string& dir_b) {
  std::vector<history::VehicleLogData> a, b;
  ASSERT_TRUE(history::HistoryReader::ReadDir(dir_a, &a).ok());
  ASSERT_TRUE(history::HistoryReader::ReadDir(dir_b, &b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v) {
    ASSERT_EQ(a[v].vehicle_id, b[v].vehicle_id);
    ASSERT_EQ(a[v].records.size(), b[v].records.size())
        << "vehicle " << a[v].vehicle_id;
    for (std::size_t i = 0; i < a[v].records.size(); ++i) {
      const history::HistoryRecord& ra = a[v].records[i];
      const history::HistoryRecord& rb = b[v].records[i];
      const std::string where = "vehicle " + std::to_string(a[v].vehicle_id) +
                                " record " + std::to_string(i);
      ASSERT_EQ(ra.global_seq, rb.global_seq) << where;
      ASSERT_EQ(ra.timestamp, rb.timestamp) << where;
      ASSERT_EQ(ra.score, rb.score) << where;
      ASSERT_EQ(ra.threshold, rb.threshold) << where;
      ASSERT_EQ(ra.alarm, rb.alarm) << where;
      ASSERT_EQ(ra.top_channels, rb.top_channels) << where;
    }
  }
}

/// Compares every query family's answer over the two directories. The
/// comparisons are exact (==) on every field, doubles included: the win
/// condition is bit-identity, not closeness.
void ExpectQueriesIdentical(const std::string& dir_a,
                            const std::string& dir_b) {
  const history::QueryEngine engine_a(dir_a);
  const history::QueryEngine engine_b(dir_b);

  history::RankResult rank_a, rank_b;
  ASSERT_TRUE(engine_a.Rank(history::RankQuery{}, &rank_a).ok());
  ASSERT_TRUE(engine_b.Rank(history::RankQuery{}, &rank_b).ok());
  ASSERT_EQ(rank_a.entries.size(), rank_b.entries.size());
  for (std::size_t i = 0; i < rank_a.entries.size(); ++i) {
    ASSERT_EQ(rank_a.entries[i].vehicle_id, rank_b.entries[i].vehicle_id);
    ASSERT_EQ(rank_a.entries[i].records, rank_b.entries[i].records);
    ASSERT_EQ(rank_a.entries[i].alarms, rank_b.entries[i].alarms);
    ASSERT_EQ(rank_a.entries[i].mean_ratio, rank_b.entries[i].mean_ratio);
    ASSERT_EQ(rank_a.entries[i].max_ratio, rank_b.entries[i].max_ratio);
    ASSERT_EQ(rank_a.entries[i].last_ts, rank_b.entries[i].last_ts);
  }

  for (const history::RankEntry& entry : rank_a.entries) {
    history::TimelineQuery query;
    query.vehicle_id = entry.vehicle_id;
    history::TimelineResult timeline_a, timeline_b;
    ASSERT_TRUE(engine_a.Timeline(query, &timeline_a).ok());
    ASSERT_TRUE(engine_b.Timeline(query, &timeline_b).ok());
    ASSERT_EQ(timeline_a.records.size(), timeline_b.records.size());
    for (std::size_t i = 0; i < timeline_a.records.size(); ++i) {
      ASSERT_EQ(timeline_a.records[i].global_seq,
                timeline_b.records[i].global_seq);
      ASSERT_EQ(timeline_a.records[i].score, timeline_b.records[i].score);
      ASSERT_EQ(timeline_a.records[i].threshold,
                timeline_b.records[i].threshold);
    }
  }

  // COMOVE around the first alarmed record, when the log has one.
  std::vector<history::VehicleLogData> logs;
  ASSERT_TRUE(history::HistoryReader::ReadDir(dir_a, &logs).ok());
  for (const history::VehicleLogData& log : logs) {
    for (const history::HistoryRecord& record : log.records) {
      if (!record.alarm) continue;
      history::ComoveQuery query;
      query.alarm_seq = record.global_seq;
      history::ComoveResult comove_a, comove_b;
      ASSERT_TRUE(engine_a.Comove(query, &comove_a).ok());
      ASSERT_TRUE(engine_b.Comove(query, &comove_b).ok());
      ASSERT_EQ(comove_a.vehicle_id, comove_b.vehicle_id);
      ASSERT_EQ(comove_a.alarm_ts, comove_b.alarm_ts);
      ASSERT_EQ(comove_a.entries.size(), comove_b.entries.size());
      for (std::size_t i = 0; i < comove_a.entries.size(); ++i) {
        ASSERT_EQ(comove_a.entries[i].channel, comove_b.entries[i].channel);
        ASSERT_EQ(comove_a.entries[i].hits, comove_b.entries[i].hits);
        ASSERT_EQ(comove_a.entries[i].weight, comove_b.entries[i].weight);
      }
      return;  // one anchor is enough
    }
  }
}

/// Streams the whole fleet through a service with a history log attached.
void RunWithHistory(const std::vector<telemetry::SensorFrame>& stream,
                    const std::vector<std::int32_t>& ids, int threads,
                    const std::string& dir) {
  history::HistoryService history(dir);
  ASSERT_TRUE(history.Open().ok());
  service::FleetService svc(ServiceConfigWith(threads));
  svc.set_history_callback([&history](const history::HistoryRecord& record) {
    history.Append(record);
  });
  for (const std::int32_t id : ids) svc.RegisterVehicle(id);
  for (const telemetry::SensorFrame& frame : stream) svc.Submit(frame);
  svc.Drain();
  ASSERT_TRUE(history.Flush().ok());
  ASSERT_TRUE(history.first_error().ok()) << history.first_error().message();
}

TEST(HistoryDeterminismTest, LiveLogIsIdenticalAcrossThreadCounts) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string dir_serial = FreshDir("navhist_det_t1");
  const std::string dir_parallel = FreshDir("navhist_det_t4");
  RunWithHistory(stream, ids, 1, dir_serial);
  RunWithHistory(stream, ids, 4, dir_parallel);
  ExpectLogsIdentical(dir_serial, dir_parallel);
  ExpectQueriesIdentical(dir_serial, dir_parallel);
  std::filesystem::remove_all(dir_serial);
  std::filesystem::remove_all(dir_parallel);
}

TEST(HistoryDeterminismTest, ReplayThroughDifferentSegmentationIsIdentical) {
  // Queries depend only on the records, not on how segments happened to
  // roll: replaying a live log through a writer with tiny segments and
  // blocks answers identically.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string dir_live = FreshDir("navhist_det_live");
  const std::string dir_replay = FreshDir("navhist_det_replay");
  RunWithHistory(stream, ids, 4, dir_live);

  std::vector<history::VehicleLogData> logs;
  ASSERT_TRUE(history::HistoryReader::ReadDir(dir_live, &logs).ok());
  history::HistoryConfig tiny;
  tiny.segment_bytes = 1024;
  tiny.block_records = 3;
  history::HistoryWriter writer(tiny);
  ASSERT_TRUE(writer.Open(dir_replay).ok());
  // Replay in the global release order (merge by global_seq across the
  // per-vehicle logs) to mimic the live callback order.
  std::vector<history::HistoryRecord> all;
  for (history::VehicleLogData& log : logs)
    all.insert(all.end(), log.records.begin(), log.records.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const history::HistoryRecord& a,
                      const history::HistoryRecord& b) {
                     return a.global_seq < b.global_seq;
                   });
  for (const history::HistoryRecord& record : all)
    ASSERT_TRUE(writer.Append(record).ok());
  ASSERT_TRUE(writer.Close().ok());

  ExpectLogsIdentical(dir_live, dir_replay);
  ExpectQueriesIdentical(dir_live, dir_replay);
  std::filesystem::remove_all(dir_live);
  std::filesystem::remove_all(dir_replay);
}

TEST(HistoryDeterminismTest, KillMidSegmentRestoreReplayIsIdentical) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  const std::string dir_reference = FreshDir("navhist_det_ref");
  RunWithHistory(stream, ids, 4, dir_reference);

  const std::string dir_crash = FreshDir("navhist_det_crash");
  const std::string snapshot =
      (std::filesystem::temp_directory_path() / "navhist_det_ckpt.bin")
          .string();
  const std::size_t cut = stream.size() / 2;
  const std::size_t killed = stream.size() * 3 / 4;
  {
    // The doomed run: checkpoint at `cut` (the barrier flushes the log
    // inside the quiesced window), keep streaming, then "die" at `killed` -
    // the callback goes dead, buffered pending records are lost with the
    // process (the writer's destructor does not flush), and the checkpoint
    // on disk stays the one from `cut`.
    history::HistoryService history(dir_crash);
    ASSERT_TRUE(history.Open().ok());
    bool crashed = false;
    service::FleetService svc(ServiceConfigWith(4));
    svc.set_history_callback(
        [&history, &crashed](const history::HistoryRecord& record) {
          if (!crashed) history.Append(record);
        });
    svc.set_checkpoint_barrier([&history] { return history.Flush(); });
    for (const std::int32_t id : ids) svc.RegisterVehicle(id);
    for (std::size_t i = 0; i < cut; ++i) svc.Submit(stream[i]);
    ASSERT_TRUE(svc.Checkpoint(snapshot).ok());
    for (std::size_t i = cut; i < killed; ++i) svc.Submit(stream[i]);
    crashed = true;
    // The service object drains on destruction, but with the callback dead
    // nothing more reaches the log - exactly a SIGKILL's view of disk.
  }
  {
    // Tear the tail as a kill mid-write() would: trailing garbage that
    // fails the block framing on the next Open.
    std::string part;
    for (const auto& entry : std::filesystem::directory_iterator(dir_crash))
      if (entry.path().extension() == ".part") {
        part = entry.path().string();
        break;
      }
    ASSERT_FALSE(part.empty());
    std::ofstream out(part, std::ios::binary | std::ios::app);
    const char garbage[] = {0x19, 0x00, 0x00, 0x00, 0x5a};
    out.write(garbage, sizeof garbage);
  }

  // Recovery: restore the service from the checkpoint, reopen the log
  // (truncating the torn tail), replay the remaining stream. Records below
  // the recovered cursor are skipped, the lost tail is regenerated.
  history::HistoryService history(dir_crash);
  ASSERT_TRUE(history.Open().ok());
  service::FleetService svc(ServiceConfigWith(4));
  svc.set_history_callback([&history](const history::HistoryRecord& record) {
    history.Append(record);
  });
  ASSERT_TRUE(svc.RestoreFromFile(snapshot).ok());
  EXPECT_EQ(svc.stats().frames_accepted, cut);
  for (std::size_t i = cut; i < stream.size(); ++i) svc.Submit(stream[i]);
  svc.Drain();
  ASSERT_TRUE(history.Flush().ok());
  ASSERT_TRUE(history.first_error().ok()) << history.first_error().message();
  EXPECT_GT(history.writer_stats().records_skipped, 0u);

  ExpectLogsIdentical(dir_reference, dir_crash);
  ExpectQueriesIdentical(dir_reference, dir_crash);
  std::filesystem::remove_all(dir_reference);
  std::filesystem::remove_all(dir_crash);
  std::filesystem::remove(snapshot);
}

}  // namespace
}  // namespace navarchos
