#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace navarchos::eval {
namespace {

using telemetry::kMinutesPerDay;

/// Builds a minimal fleet with one reporting vehicle repairing at `day`.
telemetry::FleetDataset FleetWithRepair(int repair_day) {
  telemetry::FleetDataset fleet;
  telemetry::VehicleHistory vehicle;
  vehicle.spec.id = 0;
  vehicle.reporting = true;
  telemetry::FleetEvent repair;
  repair.vehicle_id = 0;
  repair.timestamp = repair_day * kMinutesPerDay + 600;
  repair.type = telemetry::EventType::kRepair;
  repair.recorded = true;
  vehicle.events.push_back(repair);
  fleet.vehicles.push_back(std::move(vehicle));
  return fleet;
}

core::Alarm AlarmAt(int vehicle, int day) {
  core::Alarm alarm;
  alarm.vehicle_id = vehicle;
  alarm.timestamp = day * kMinutesPerDay + 300;
  return alarm;
}

TEST(FBetaTest, KnownValues) {
  EXPECT_DOUBLE_EQ(FBeta(1.0, 1.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(FBeta(0.0, 0.0, 0.5), 0.0);
  // Paper Table 2: P = 0.78, R = 0.44 -> F0.5 = 0.68, F1 = 0.57.
  EXPECT_NEAR(FBeta(0.78, 0.44, 0.5), 0.68, 0.01);
  EXPECT_NEAR(FBeta(0.78, 0.44, 1.0), 0.56, 0.01);
}

TEST(FBetaTest, HalfBetaWeighsPrecision) {
  const double precision_heavy = FBeta(0.9, 0.3, 0.5);
  const double recall_heavy = FBeta(0.3, 0.9, 0.5);
  EXPECT_GT(precision_heavy, recall_heavy);
}

TEST(EvaluateAlarmsTest, AlarmInsideHorizonIsDetection) {
  const auto fleet = FleetWithRepair(100);
  const auto result = EvaluateAlarms({AlarmAt(0, 85)}, fleet, 30);
  EXPECT_EQ(result.detected_failures, 1);
  EXPECT_EQ(result.false_positive_episodes, 0);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
  EXPECT_DOUBLE_EQ(result.recall, 1.0);
  EXPECT_DOUBLE_EQ(result.f05, 1.0);
}

TEST(EvaluateAlarmsTest, AlarmOutsideHorizonIsFalsePositive) {
  const auto fleet = FleetWithRepair(100);
  const auto result = EvaluateAlarms({AlarmAt(0, 30)}, fleet, 30);
  EXPECT_EQ(result.detected_failures, 0);
  EXPECT_EQ(result.false_positive_episodes, 1);
  EXPECT_DOUBLE_EQ(result.recall, 0.0);
}

TEST(EvaluateAlarmsTest, HorizonBoundariesInclusive) {
  const auto fleet = FleetWithRepair(100);
  EXPECT_EQ(EvaluateAlarms({AlarmAt(0, 70)}, fleet, 30).detected_failures, 1);
  EXPECT_EQ(EvaluateAlarms({AlarmAt(0, 100)}, fleet, 30).detected_failures, 1);
  EXPECT_EQ(EvaluateAlarms({AlarmAt(0, 69)}, fleet, 30).detected_failures, 0);
  EXPECT_EQ(EvaluateAlarms({AlarmAt(0, 101)}, fleet, 30).detected_failures, 0);
}

TEST(EvaluateAlarmsTest, ManyAlarmsInHorizonCountOnce) {
  const auto fleet = FleetWithRepair(100);
  std::vector<core::Alarm> alarms;
  for (int day = 80; day < 100; ++day) alarms.push_back(AlarmAt(0, day));
  const auto result = EvaluateAlarms(alarms, fleet, 30);
  EXPECT_EQ(result.detected_failures, 1);
  EXPECT_DOUBLE_EQ(result.precision, 1.0);
}

TEST(EvaluateAlarmsTest, ConsecutiveFalseDaysAreOneEpisode) {
  const auto fleet = FleetWithRepair(300);
  std::vector<core::Alarm> alarms;
  for (int day = 10; day < 17; ++day) alarms.push_back(AlarmAt(0, day));
  const auto result = EvaluateAlarms(alarms, fleet, 30, /*episode_gap_days=*/3);
  EXPECT_EQ(result.false_positive_episodes, 1);
}

TEST(EvaluateAlarmsTest, SeparatedFalseDaysAreSeparateEpisodes) {
  const auto fleet = FleetWithRepair(300);
  const auto result =
      EvaluateAlarms({AlarmAt(0, 10), AlarmAt(0, 50)}, fleet, 30, 3);
  EXPECT_EQ(result.false_positive_episodes, 2);
}

TEST(EvaluateAlarmsTest, EpisodeSpanningIntoHorizonIsNotFalse) {
  const auto fleet = FleetWithRepair(100);
  // Days 68-72: enters the PH window (70-100) -> the episode detected the
  // failure, no false positive.
  std::vector<core::Alarm> alarms;
  for (int day = 68; day <= 72; ++day) alarms.push_back(AlarmAt(0, day));
  const auto result = EvaluateAlarms(alarms, fleet, 30, 3);
  EXPECT_EQ(result.detected_failures, 1);
  EXPECT_EQ(result.false_positive_episodes, 0);
}

TEST(EvaluateAlarmsTest, AlarmsOnOtherVehiclesAreFalse) {
  auto fleet = FleetWithRepair(100);
  telemetry::VehicleHistory other;
  other.spec.id = 1;
  other.reporting = true;
  fleet.vehicles.push_back(other);
  const auto result = EvaluateAlarms({AlarmAt(1, 85)}, fleet, 30);
  EXPECT_EQ(result.detected_failures, 0);
  EXPECT_EQ(result.false_positive_episodes, 1);
}

TEST(EvaluateAlarmsTest, UnrecordedRepairDoesNotCount) {
  auto fleet = FleetWithRepair(100);
  fleet.vehicles[0].events[0].recorded = false;
  const auto result = EvaluateAlarms({AlarmAt(0, 85)}, fleet, 30);
  EXPECT_EQ(result.total_failures, 0);
  EXPECT_EQ(result.false_positive_episodes, 1);
}

TEST(EvaluateAlarmsTest, MultipleVehiclesIndependentEpisodes) {
  auto fleet = FleetWithRepair(100);
  telemetry::VehicleHistory other;
  other.spec.id = 1;
  fleet.vehicles.push_back(other);
  // Same days on different vehicles: two separate episodes.
  const auto result =
      EvaluateAlarms({AlarmAt(0, 10), AlarmAt(1, 10)}, fleet, 30, 3);
  EXPECT_EQ(result.false_positive_episodes, 2);
}

TEST(EvaluateAlarmsTest, PrecisionRecallArithmetic) {
  auto fleet = FleetWithRepair(100);
  telemetry::VehicleHistory second = fleet.vehicles[0];
  second.spec.id = 1;
  second.events[0].vehicle_id = 1;
  fleet.vehicles.push_back(second);
  // Detect vehicle 0's repair, miss vehicle 1's, one far-away FP episode.
  const auto result =
      EvaluateAlarms({AlarmAt(0, 90), AlarmAt(0, 10)}, fleet, 30);
  EXPECT_EQ(result.total_failures, 2);
  EXPECT_EQ(result.detected_failures, 1);
  EXPECT_EQ(result.false_positive_episodes, 1);
  EXPECT_DOUBLE_EQ(result.precision, 0.5);
  EXPECT_DOUBLE_EQ(result.recall, 0.5);
}

}  // namespace
}  // namespace navarchos::eval
