#include "telemetry/weather.h"

#include <cmath>

#include <gtest/gtest.h>

namespace navarchos::telemetry {
namespace {

TEST(WeatherTest, SeasonalCycleColdestNearConfiguredDay) {
  WeatherConfig config;
  config.weather_noise_c = 0.0;  // isolate the deterministic component
  util::Rng rng(1);
  WeatherModel weather(config, 365, rng);
  const double winter = weather.DailyMean(config.coldest_day_of_year);
  const double summer = weather.DailyMean(config.coldest_day_of_year + 182);
  EXPECT_LT(winter, summer);
  EXPECT_NEAR(summer - winter, 2.0 * config.seasonal_amplitude_c, 0.5);
}

TEST(WeatherTest, DiurnalCycleWarmestLateAfternoon) {
  WeatherConfig config;
  config.weather_noise_c = 0.0;
  util::Rng rng(1);
  WeatherModel weather(config, 10, rng);
  const Minute day_start = 5 * kMinutesPerDay;
  const double at_5am = weather.AmbientAt(day_start + 5 * 60);
  const double at_5pm = weather.AmbientAt(day_start + 17 * 60);
  EXPECT_LT(at_5am, at_5pm);
  EXPECT_NEAR(at_5pm - at_5am, 2.0 * config.diurnal_amplitude_c, 0.3);
}

TEST(WeatherTest, NoiseIsDeterministicPerSeed) {
  WeatherConfig config;
  util::Rng rng1(7), rng2(7);
  WeatherModel a(config, 100, rng1);
  WeatherModel b(config, 100, rng2);
  for (int day = 0; day < 100; ++day)
    EXPECT_DOUBLE_EQ(a.DailyMean(day), b.DailyMean(day));
}

TEST(WeatherTest, NoiseVarianceRoughlyAsConfigured) {
  WeatherConfig config;
  config.seasonal_amplitude_c = 0.0;
  config.weather_noise_c = 3.0;
  util::Rng rng(11);
  WeatherModel weather(config, 2000, rng);
  double sum = 0.0, sum_sq = 0.0;
  for (int day = 0; day < 2000; ++day) {
    const double anomaly = weather.DailyMean(day) - config.annual_mean_c;
    sum += anomaly;
    sum_sq += anomaly * anomaly;
  }
  const double variance = sum_sq / 2000.0 - (sum / 2000.0) * (sum / 2000.0);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.6);
}

TEST(WeatherTest, OutOfRangeDayClampsAnomalyNotCycle) {
  WeatherConfig config;
  util::Rng rng(3);
  WeatherModel weather(config, 30, rng);
  // Should not crash and should stay within plausible bounds.
  const double t = weather.DailyMean(400);
  EXPECT_GT(t, config.annual_mean_c - 30.0);
  EXPECT_LT(t, config.annual_mean_c + 30.0);
}

}  // namespace
}  // namespace navarchos::telemetry
