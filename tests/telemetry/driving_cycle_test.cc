#include "telemetry/driving_cycle.h"

#include <gtest/gtest.h>

namespace navarchos::telemetry {
namespace {

VehicleSpec TestSpec() {
  util::Rng rng(1);
  return SampleFleetSpecs(1, rng).front();
}

TEST(DrivingCycleTest, RidesFitInsideOperatingWindow) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(2);
  for (int day = 0; day < 30; ++day) {
    for (const Ride& ride : cycle.PlanDay(day, rng)) {
      EXPECT_GE(ride.start, day * kMinutesPerDay + 6 * 60);
      EXPECT_LE(ride.start + ride.duration_min, day * kMinutesPerDay + 22 * 60);
      EXPECT_GE(ride.duration_min, 5);
    }
  }
}

TEST(DrivingCycleTest, RidesDoNotOverlap) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(3);
  for (int day = 0; day < 50; ++day) {
    Minute last_end = 0;
    for (const Ride& ride : cycle.PlanDay(day, rng)) {
      EXPECT_GE(ride.start, last_end);
      last_end = ride.start + ride.duration_min;
    }
  }
}

TEST(DrivingCycleTest, WeekendsQuieter) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(4);
  double weekday_minutes = 0.0, weekend_minutes = 0.0;
  int weekdays = 0, weekends = 0;
  for (int day = 0; day < 700; ++day) {
    double total = 0.0;
    for (const Ride& ride : cycle.PlanDay(day, rng)) total += ride.duration_min;
    if (day % 7 == 5 || day % 7 == 6) {
      weekend_minutes += total;
      ++weekends;
    } else {
      weekday_minutes += total;
      ++weekdays;
    }
  }
  EXPECT_LT(weekend_minutes / weekends, 0.7 * weekday_minutes / weekdays);
}

TEST(DrivingCycleTest, RealiseProducesRequestedLength) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(5);
  const Ride ride{0, 40, RideType::kRegional};
  EXPECT_EQ(cycle.Realise(ride, rng).size(), 40u);
}

TEST(DrivingCycleTest, SpeedsWithinTypeCeiling) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(6);
  const Ride ride{0, 120, RideType::kHighway};
  for (const DrivingMinute& minute : cycle.Realise(ride, rng)) {
    EXPECT_GE(minute.speed_kmh, 0.0);
    EXPECT_LE(minute.speed_kmh, 130.0);
  }
}

TEST(DrivingCycleTest, RideTypesHaveDistinctSpeeds) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(7);
  auto mean_speed = [&](RideType type) {
    double total = 0.0;
    int count = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const Ride ride{0, 40, type};
      for (const DrivingMinute& minute : cycle.Realise(ride, rng)) {
        total += minute.speed_kmh;
        ++count;
      }
    }
    return total / count;
  };
  const double urban = mean_speed(RideType::kUrban);
  const double regional = mean_speed(RideType::kRegional);
  const double highway = mean_speed(RideType::kHighway);
  EXPECT_LT(urban, regional);
  EXPECT_LT(regional, highway);
}

TEST(DrivingCycleTest, AccelMatchesSpeedDifference) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(8);
  const Ride ride{0, 30, RideType::kUrban};
  const auto trace = cycle.Realise(ride, rng);
  for (std::size_t m = 1; m < trace.size(); ++m) {
    EXPECT_NEAR(trace[m].accel_kmh_min, trace[m].speed_kmh - trace[m - 1].speed_kmh,
                1e-9);
  }
}

TEST(DrivingCycleTest, GearStyleBounded) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(9);
  const Ride ride{0, 60, RideType::kUrban};
  for (const DrivingMinute& minute : cycle.Realise(ride, rng)) {
    EXPECT_GT(minute.gear_style, 0.7);
    EXPECT_LT(minute.gear_style, 1.5);
  }
}

TEST(UsageRegimeTest, SequenceHasDwellStretches) {
  util::Rng rng(10);
  const auto regimes = SampleRegimeSequence(365, rng);
  ASSERT_EQ(regimes.size(), 365u);
  // Count transitions: with stay probability 0.9, expect ~36, certainly < 90.
  int transitions = 0;
  for (std::size_t day = 1; day < regimes.size(); ++day)
    if (regimes[day] != regimes[day - 1]) ++transitions;
  EXPECT_LT(transitions, 90);
}

TEST(UsageRegimeTest, MixOverridesApplied) {
  const std::array<double, kNumRideTypes> base{0.5, 0.3, 0.2};
  const RegimeEffect normal = ApplyRegime(base, UsageRegime::kNormal);
  EXPECT_EQ(normal.mix, base);
  EXPECT_DOUBLE_EQ(normal.activity_multiplier, 1.0);
  const RegimeEffect long_haul = ApplyRegime(base, UsageRegime::kLongHaul);
  EXPECT_GT(long_haul.mix[2], base[2]);
  EXPECT_GT(long_haul.activity_multiplier, 1.0);
  const RegimeEffect quiet = ApplyRegime(base, UsageRegime::kQuiet);
  EXPECT_LT(quiet.activity_multiplier, 1.0);
}

TEST(UsageRegimeTest, QuietRegimeReducesActivity) {
  const VehicleSpec spec = TestSpec();
  DrivingCycle cycle(spec);
  util::Rng rng(11);
  double normal_minutes = 0.0, quiet_minutes = 0.0;
  for (int day = 0; day < 300; ++day) {
    if (day % 7 >= 5) continue;  // compare weekdays only
    for (const Ride& ride : cycle.PlanDay(day, rng)) normal_minutes += ride.duration_min;
    for (const Ride& ride : cycle.PlanDay(day, rng, nullptr, 0.35))
      quiet_minutes += ride.duration_min;
  }
  EXPECT_LT(quiet_minutes, 0.7 * normal_minutes);
}

}  // namespace
}  // namespace navarchos::telemetry
