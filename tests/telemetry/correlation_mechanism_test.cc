// Tests of the reproduction's central causal claim: usage and weather move
// the marginal signal distributions while faults move the couplings, so the
// correlation transform separates failure from usage change. These tests
// drive the full simulator (driving cycle -> engine model) rather than
// synthetic vectors.
#include <cmath>

#include <gtest/gtest.h>

#include "telemetry/driving_cycle.h"
#include "telemetry/engine_model.h"
#include "telemetry/filters.h"
#include "util/statistics.h"

namespace navarchos::telemetry {
namespace {

/// Generates `minutes` of usable operation with the given ride mix and
/// fault effects, returning per-channel series.
std::vector<std::vector<double>> Operate(const VehicleSpec& spec,
                                         const std::array<double, 3>& mix,
                                         const FaultEffects& faults, int minutes,
                                         std::uint64_t seed) {
  DrivingCycle cycle(spec);
  EngineModel engine(spec);
  util::Rng rng(seed);
  std::vector<std::vector<double>> channels(kNumPids);
  Minute t = 0;
  int day = 0;
  while (static_cast<int>(channels[0].size()) < minutes) {
    const auto rides = cycle.PlanDay(day++, rng, &mix);
    for (const Ride& ride : rides) {
      engine.StartRide(ride.start, 15.0);
      for (const DrivingMinute& minute : cycle.Realise(ride, rng)) {
        Record record;
        record.timestamp = t++;
        record.pids = engine.Step(record.timestamp, minute, 15.0, faults, rng);
        if (!IsUsable(record)) continue;
        for (int c = 0; c < kNumPids; ++c)
          channels[static_cast<std::size_t>(c)].push_back(
              record.pids[static_cast<std::size_t>(c)]);
      }
    }
  }
  for (auto& channel : channels) channel.resize(static_cast<std::size_t>(minutes));
  return channels;
}

VehicleSpec Spec() {
  util::Rng rng(5);
  return SampleFleetSpecs(1, rng).front();
}

constexpr std::array<double, 3> kUrban{0.8, 0.15, 0.05};
constexpr std::array<double, 3> kHighway{0.1, 0.3, 0.6};

double Corr(const std::vector<std::vector<double>>& channels, Pid a, Pid b) {
  return util::PearsonCorrelation(channels[static_cast<std::size_t>(a)],
                                  channels[static_cast<std::size_t>(b)]);
}

TEST(CorrelationMechanismTest, UsageChangeMovesMeansNotRpmMafCoupling) {
  const VehicleSpec spec = Spec();
  const FaultEffects healthy;
  const auto urban = Operate(spec, kUrban, healthy, 1500, 1);
  const auto highway = Operate(spec, kHighway, healthy, 1500, 2);

  // Marginals move a lot with usage...
  const double urban_speed = util::Mean(urban[static_cast<std::size_t>(Pid::kSpeed)]);
  const double highway_speed =
      util::Mean(highway[static_cast<std::size_t>(Pid::kSpeed)]);
  EXPECT_GT(highway_speed, urban_speed + 20.0);

  // ... while the strong mechanical coupling stays put.
  const double urban_coupling = Corr(urban, Pid::kRpm, Pid::kMafAirFlowRate);
  const double highway_coupling = Corr(highway, Pid::kRpm, Pid::kMafAirFlowRate);
  EXPECT_GT(urban_coupling, 0.8);
  EXPECT_GT(highway_coupling, 0.65);
  EXPECT_LT(std::fabs(urban_coupling - highway_coupling), 0.25);
}

TEST(CorrelationMechanismTest, PureGainDriftInvisibleToCorrelation) {
  // A pure MAF gain error rescales the channel; Pearson correlation is
  // scale-invariant, so only the erratic component of the fault shows. This
  // is exactly why the simulated MAF fault carries a noise term.
  const VehicleSpec spec = Spec();
  const FaultEffects healthy;
  FaultEffects pure_gain;
  pure_gain.maf_gain_delta = -0.4;  // no noise component
  const auto clean = Operate(spec, kUrban, healthy, 1500, 3);
  const auto drifted = Operate(spec, kUrban, pure_gain, 1500, 3);
  const double clean_corr = Corr(clean, Pid::kRpm, Pid::kMafAirFlowRate);
  const double drifted_corr = Corr(drifted, Pid::kRpm, Pid::kMafAirFlowRate);
  EXPECT_NEAR(clean_corr, drifted_corr, 0.05);
  // The level, however, shifts visibly (what mean aggregation would see).
  EXPECT_LT(util::Mean(drifted[static_cast<std::size_t>(Pid::kMafAirFlowRate)]),
            0.75 * util::Mean(clean[static_cast<std::size_t>(Pid::kMafAirFlowRate)]));
}

TEST(CorrelationMechanismTest, MafNoiseBreaksRpmMafCoupling) {
  const VehicleSpec spec = Spec();
  const FaultEffects healthy;
  const FaultEffects fault = EffectsOf(FaultType::kMafSensorDrift, 1.0);
  const auto clean = Operate(spec, kUrban, healthy, 1500, 4);
  const auto faulty = Operate(spec, kUrban, fault, 1500, 4);
  EXPECT_GT(Corr(clean, Pid::kRpm, Pid::kMafAirFlowRate),
            Corr(faulty, Pid::kRpm, Pid::kMafAirFlowRate) + 0.1);
}

TEST(CorrelationMechanismTest, ThermostatFaultCouplesCoolantToSpeed) {
  const VehicleSpec spec = Spec();
  const FaultEffects healthy;
  const FaultEffects fault = EffectsOf(FaultType::kThermostatStuckOpen, 1.0);
  const auto clean = Operate(spec, kHighway, healthy, 1500, 6);
  const auto faulty = Operate(spec, kHighway, fault, 1500, 6);
  // Healthy: regulated coolant barely co-moves with speed. Stuck open: the
  // equilibrium depends on airflow, so the coupling strengthens (negative:
  // faster -> cooler).
  const double clean_coupling = Corr(clean, Pid::kSpeed, Pid::kCoolantTemp);
  const double faulty_coupling = Corr(faulty, Pid::kSpeed, Pid::kCoolantTemp);
  EXPECT_LT(faulty_coupling, clean_coupling - 0.15);
}

TEST(CorrelationMechanismTest, CoolantRestrictionCouplesCoolantToLoad) {
  const VehicleSpec spec = Spec();
  const FaultEffects healthy;
  const FaultEffects fault = EffectsOf(FaultType::kCoolantRestriction, 1.0);
  const auto clean = Operate(spec, kUrban, healthy, 1500, 7);
  const auto faulty = Operate(spec, kUrban, fault, 1500, 7);
  EXPECT_GT(Corr(faulty, Pid::kCoolantTemp, Pid::kMapIntake),
            Corr(clean, Pid::kCoolantTemp, Pid::kMapIntake) + 0.1);
}

}  // namespace
}  // namespace navarchos::telemetry
