#include "telemetry/engine_model.h"

#include <gtest/gtest.h>

#include "util/statistics.h"

namespace navarchos::telemetry {
namespace {

VehicleSpec TestSpec() {
  util::Rng rng(1);
  return SampleFleetSpecs(1, rng).front();
}

DrivingMinute Cruise(double speed) {
  DrivingMinute minute;
  minute.speed_kmh = speed;
  return minute;
}

/// Runs the engine at a steady state for `minutes` and returns the last PID
/// vector (thermal equilibrium reached).
PidVector SteadyState(EngineModel& engine, double speed, double ambient,
                      const FaultEffects& faults, util::Rng& rng, int minutes = 90) {
  PidVector pids{};
  for (int m = 0; m < minutes; ++m)
    pids = engine.Step(m, Cruise(speed), ambient, faults, rng);
  return pids;
}

TEST(EngineModelTest, RpmIncreasesWithSpeed) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  engine.StartRide(0, 15.0);
  util::Rng rng(2);
  const FaultEffects healthy;
  double previous_rpm = 0.0;
  for (double speed : {20.0, 40.0, 70.0, 100.0, 125.0}) {
    double total = 0.0;
    for (int i = 0; i < 50; ++i)
      total += engine.Step(i, Cruise(speed), 15.0, healthy, rng)[static_cast<int>(Pid::kRpm)];
    const double rpm = total / 50.0;
    EXPECT_GT(rpm, previous_rpm);
    previous_rpm = rpm;
  }
}

TEST(EngineModelTest, IdleRpmAtStandstill) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  engine.StartRide(0, 15.0);
  util::Rng rng(3);
  const FaultEffects healthy;
  const PidVector pids = engine.Step(0, Cruise(0.0), 15.0, healthy, rng);
  EXPECT_NEAR(pids[static_cast<int>(Pid::kRpm)], spec.idle_rpm, spec.idle_rpm * 0.1);
}

TEST(EngineModelTest, ColdStartWarmsTowardThermostat) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  engine.StartRide(0, 10.0);
  EXPECT_NEAR(engine.coolant_c(), 10.0, 1e-9);
  util::Rng rng(4);
  const FaultEffects healthy;
  SteadyState(engine, 60.0, 10.0, healthy, rng);
  EXPECT_NEAR(engine.coolant_c(), spec.thermostat_c, 6.0);
}

TEST(EngineModelTest, ParkingGapCoolsEngine) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  engine.StartRide(0, 10.0);
  util::Rng rng(5);
  const FaultEffects healthy;
  SteadyState(engine, 60.0, 10.0, healthy, rng);
  const double warm = engine.coolant_c();
  engine.StartRide(90 + 600, 10.0);  // 10 hours parked
  EXPECT_LT(engine.coolant_c(), warm - 20.0);
  EXPECT_GT(engine.coolant_c(), 9.0);
}

TEST(EngineModelTest, ShortGapKeepsHeat) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  engine.StartRide(0, 10.0);
  util::Rng rng(6);
  const FaultEffects healthy;
  SteadyState(engine, 60.0, 10.0, healthy, rng);
  const double warm = engine.coolant_c();
  engine.StartRide(90 + 40, 10.0);  // 40 minutes parked
  EXPECT_GT(engine.coolant_c(), warm - 20.0);
}

TEST(EngineModelTest, MafConsistentWithSpeedDensity) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  engine.StartRide(0, 20.0);
  util::Rng rng(7);
  const FaultEffects healthy;
  const PidVector pids = SteadyState(engine, 80.0, 20.0, healthy, rng);
  const double rpm = pids[static_cast<int>(Pid::kRpm)];
  const double map = pids[static_cast<int>(Pid::kMapIntake)];
  const double intake_k = pids[static_cast<int>(Pid::kIntakeTemp)] + 273.15;
  const double expected = spec.volumetric_eff * (spec.displacement_l / 2.0) *
                          (rpm / 60.0) * (map / 101.0) * 1.19 * (293.15 / intake_k);
  EXPECT_NEAR(pids[static_cast<int>(Pid::kMafAirFlowRate)], expected, expected * 0.15);
}

TEST(EngineModelTest, MapRisesWithLoad) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  engine.StartRide(0, 15.0);
  util::Rng rng(8);
  const FaultEffects healthy;
  const double map_slow = SteadyState(engine, 30.0, 15.0, healthy, rng)[static_cast<int>(Pid::kMapIntake)];
  const double map_fast = SteadyState(engine, 110.0, 15.0, healthy, rng)[static_cast<int>(Pid::kMapIntake)];
  EXPECT_GT(map_fast, map_slow);
}

TEST(EngineModelTest, ThermostatStuckOpenLowersCoolant) {
  const VehicleSpec spec = TestSpec();
  util::Rng rng(9);
  EngineModel healthy_engine(spec);
  healthy_engine.StartRide(0, 12.0);
  const FaultEffects healthy;
  const double healthy_coolant =
      SteadyState(healthy_engine, 80.0, 12.0, healthy, rng)[static_cast<int>(Pid::kCoolantTemp)];

  EngineModel faulty_engine(spec);
  faulty_engine.StartRide(0, 12.0);
  const FaultEffects stuck = EffectsOf(FaultType::kThermostatStuckOpen, 1.0);
  const double faulty_coolant =
      SteadyState(faulty_engine, 80.0, 12.0, stuck, rng)[static_cast<int>(Pid::kCoolantTemp)];
  EXPECT_LT(faulty_coolant, healthy_coolant - 10.0);
}

TEST(EngineModelTest, CoolantRestrictionOverheatsUnderLoad) {
  const VehicleSpec spec = TestSpec();
  util::Rng rng(10);
  EngineModel engine(spec);
  engine.StartRide(0, 20.0);
  const FaultEffects restriction = EffectsOf(FaultType::kCoolantRestriction, 1.0);
  const double coolant =
      SteadyState(engine, 110.0, 20.0, restriction, rng)[static_cast<int>(Pid::kCoolantTemp)];
  EXPECT_GT(coolant, spec.thermostat_c + 8.0);
}

TEST(EngineModelTest, MafDriftLowersReportedFlow) {
  const VehicleSpec spec = TestSpec();
  util::Rng rng(11);
  EngineModel a(spec), b(spec);
  a.StartRide(0, 15.0);
  b.StartRide(0, 15.0);
  const FaultEffects healthy;
  const FaultEffects drift = EffectsOf(FaultType::kMafSensorDrift, 1.0);
  double healthy_maf = 0.0, faulty_maf = 0.0;
  for (int i = 0; i < 60; ++i) {
    healthy_maf += a.Step(i, Cruise(70.0), 15.0, healthy, rng)[static_cast<int>(Pid::kMafAirFlowRate)];
    faulty_maf += b.Step(i, Cruise(70.0), 15.0, drift, rng)[static_cast<int>(Pid::kMafAirFlowRate)];
  }
  EXPECT_LT(faulty_maf, healthy_maf * 0.9);
}

TEST(EngineModelTest, IntakeLeakRaisesMapAtIdleLoad) {
  const VehicleSpec spec = TestSpec();
  util::Rng rng(12);
  EngineModel a(spec), b(spec);
  a.StartRide(0, 15.0);
  b.StartRide(0, 15.0);
  const FaultEffects healthy;
  const FaultEffects leak = EffectsOf(FaultType::kIntakeLeak, 1.0);
  double healthy_map = 0.0, leak_map = 0.0;
  for (int i = 0; i < 60; ++i) {
    healthy_map += a.Step(i, Cruise(25.0), 15.0, healthy, rng)[static_cast<int>(Pid::kMapIntake)];
    leak_map += b.Step(i, Cruise(25.0), 15.0, leak, rng)[static_cast<int>(Pid::kMapIntake)];
  }
  EXPECT_GT(leak_map, healthy_map + 60 * 5.0);
}

TEST(EngineModelTest, InjectorFaultRaisesRpmVariance) {
  const VehicleSpec spec = TestSpec();
  util::Rng rng(13);
  EngineModel a(spec), b(spec);
  a.StartRide(0, 15.0);
  b.StartRide(0, 15.0);
  const FaultEffects healthy;
  const FaultEffects injector = EffectsOf(FaultType::kInjectorDegradation, 1.0);
  std::vector<double> healthy_rpm, faulty_rpm;
  for (int i = 0; i < 300; ++i) {
    healthy_rpm.push_back(a.Step(i, Cruise(70.0), 15.0, healthy, rng)[static_cast<int>(Pid::kRpm)]);
    faulty_rpm.push_back(b.Step(i, Cruise(70.0), 15.0, injector, rng)[static_cast<int>(Pid::kRpm)]);
  }
  EXPECT_GT(util::StdDev(faulty_rpm), 2.0 * util::StdDev(healthy_rpm));
}

TEST(EngineModelTest, LoadBoundedAndMonotoneInSpeed) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  const FaultEffects healthy;
  double previous = 0.0;
  for (double speed : {0.0, 30.0, 60.0, 90.0, 120.0}) {
    const double load = engine.LoadOf(Cruise(speed), healthy);
    EXPECT_GE(load, 0.08);
    EXPECT_LE(load, 1.0);
    EXPECT_GE(load, previous);
    previous = load;
  }
}

TEST(EngineModelTest, CombustionLossRaisesLoad) {
  const VehicleSpec spec = TestSpec();
  EngineModel engine(spec);
  const FaultEffects healthy;
  const FaultEffects injector = EffectsOf(FaultType::kInjectorDegradation, 1.0);
  EXPECT_GT(engine.LoadOf(Cruise(60.0), injector), engine.LoadOf(Cruise(60.0), healthy));
}

}  // namespace
}  // namespace navarchos::telemetry
