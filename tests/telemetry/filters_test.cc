#include "telemetry/filters.h"

#include <gtest/gtest.h>

#include <limits>

namespace navarchos::telemetry {
namespace {

Record HealthyRecord() {
  Record record;
  record.pids[static_cast<int>(Pid::kRpm)] = 2000.0;
  record.pids[static_cast<int>(Pid::kSpeed)] = 60.0;
  record.pids[static_cast<int>(Pid::kCoolantTemp)] = 90.0;
  record.pids[static_cast<int>(Pid::kIntakeTemp)] = 25.0;
  record.pids[static_cast<int>(Pid::kMapIntake)] = 45.0;
  record.pids[static_cast<int>(Pid::kMafAirFlowRate)] = 15.0;
  return record;
}

TEST(FiltersTest, HealthyRecordIsUsable) {
  EXPECT_TRUE(IsUsable(HealthyRecord()));
}

TEST(FiltersTest, StationaryWhenSlow) {
  Record record = HealthyRecord();
  record.pids[static_cast<int>(Pid::kSpeed)] = 0.0;
  EXPECT_TRUE(IsStationary(record));
  EXPECT_FALSE(IsUsable(record));
  record.pids[static_cast<int>(Pid::kSpeed)] = 2.9;
  EXPECT_TRUE(IsStationary(record));
  record.pids[static_cast<int>(Pid::kSpeed)] = 3.1;
  EXPECT_FALSE(IsStationary(record));
}

TEST(FiltersTest, SensorDropoutValuesRejected) {
  Record record = HealthyRecord();
  record.pids[static_cast<int>(Pid::kIntakeTemp)] = -40.0;
  EXPECT_TRUE(IsSensorFaulty(record));

  record = HealthyRecord();
  record.pids[static_cast<int>(Pid::kMafAirFlowRate)] = 655.35;
  EXPECT_TRUE(IsSensorFaulty(record));

  record = HealthyRecord();
  record.pids[static_cast<int>(Pid::kCoolantTemp)] = -40.0;
  EXPECT_TRUE(IsSensorFaulty(record));
}

TEST(FiltersTest, NonFiniteValuesRejectedOnEveryChannel) {
  // NaN compares false against both range bounds, so a plain lo/hi check
  // would silently accept it; every channel must reject NaN and +-Inf.
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (int pid = 0; pid < kNumPids; ++pid) {
    for (const double poison : {kNan, kInf, -kInf}) {
      Record record = HealthyRecord();
      record.pids[static_cast<std::size_t>(pid)] = poison;
      EXPECT_TRUE(HasNonFinite(record)) << "pid " << pid;
      EXPECT_TRUE(IsSensorFaulty(record)) << "pid " << pid;
      EXPECT_FALSE(IsUsable(record)) << "pid " << pid;
    }
  }
  EXPECT_FALSE(HasNonFinite(HealthyRecord()));
}

TEST(FiltersTest, RacingEngineAtZeroSpeedRejected) {
  Record record = HealthyRecord();
  record.pids[static_cast<int>(Pid::kRpm)] = 5000.0;
  record.pids[static_cast<int>(Pid::kSpeed)] = 0.5;
  EXPECT_TRUE(IsSensorFaulty(record));
}

TEST(FiltersTest, OverheatingIsUsableNotFiltered) {
  // Fault signatures (overheating, low coolant temp) must survive the
  // filter - only physically impossible readings are dropped.
  Record record = HealthyRecord();
  record.pids[static_cast<int>(Pid::kCoolantTemp)] = 118.0;
  EXPECT_FALSE(IsSensorFaulty(record));
  record.pids[static_cast<int>(Pid::kCoolantTemp)] = 40.0;  // stuck-open thermostat
  EXPECT_FALSE(IsSensorFaulty(record));
}

TEST(FiltersTest, FilterRecordsPreservesOrderAndDropsBad) {
  std::vector<Record> records;
  for (int i = 0; i < 5; ++i) {
    Record record = HealthyRecord();
    record.timestamp = i;
    records.push_back(record);
  }
  records[1].pids[static_cast<int>(Pid::kSpeed)] = 0.0;       // stationary
  records[3].pids[static_cast<int>(Pid::kCoolantTemp)] = -40; // faulty
  const auto usable = FilterRecords(records);
  ASSERT_EQ(usable.size(), 3u);
  EXPECT_EQ(usable[0].timestamp, 0);
  EXPECT_EQ(usable[1].timestamp, 2);
  EXPECT_EQ(usable[2].timestamp, 4);
}

}  // namespace
}  // namespace navarchos::telemetry
