#include "telemetry/corruption.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "telemetry/filters.h"

namespace navarchos::telemetry {
namespace {

/// Field-exact equality, including NaN bit patterns (== would reject NaN).
bool SameRecord(const Record& a, const Record& b) {
  return a.vehicle_id == b.vehicle_id && a.timestamp == b.timestamp &&
         std::memcmp(a.pids.data(), b.pids.data(), sizeof(double) * a.pids.size()) == 0;
}

bool SameStream(const std::vector<Record>& a, const std::vector<Record>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!SameRecord(a[i], b[i])) return false;
  return true;
}

bool SameManifest(const CorruptionManifest& a, const CorruptionManifest& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const auto& x = a.entries[i];
    const auto& y = b.entries[i];
    if (x.vehicle_id != y.vehicle_id || x.timestamp != y.timestamp ||
        x.kind != y.kind || x.channel != y.channel) {
      return false;
    }
  }
  return true;
}

/// A clean, contiguous-minute stream with smoothly varying (never exactly
/// repeating) healthy values.
std::vector<Record> CleanStream(int n, std::int32_t vehicle_id = 7) {
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Record record;
    record.vehicle_id = vehicle_id;
    record.timestamp = i;
    record.pids[static_cast<int>(Pid::kRpm)] = 1500.0 + 0.37 * i;
    record.pids[static_cast<int>(Pid::kSpeed)] = 40.0 + 0.013 * i;
    record.pids[static_cast<int>(Pid::kCoolantTemp)] = 88.0 + 0.0011 * i;
    record.pids[static_cast<int>(Pid::kIntakeTemp)] = 22.0 + 0.0007 * i;
    record.pids[static_cast<int>(Pid::kMapIntake)] = 45.0 + 0.0023 * i;
    record.pids[static_cast<int>(Pid::kMafAirFlowRate)] = 14.0 + 0.0017 * i;
    records.push_back(record);
  }
  return records;
}

TEST(CorruptionTest, InactiveConfigIsByteIdenticalPassthrough) {
  const auto records = CleanStream(500);
  const CorruptionModel model{CorruptionConfig{}};
  CorruptionManifest manifest;
  const auto out = model.CorruptStream(records, &manifest);
  EXPECT_TRUE(SameStream(out, records));
  EXPECT_EQ(manifest.Total(), 0u);
  EXPECT_TRUE(CorruptionConfig{}.Inactive());
  EXPECT_FALSE(CorruptionConfig::Moderate().Inactive());
}

TEST(CorruptionTest, SameSeedAndConfigIsFullyDeterministic) {
  const auto records = CleanStream(2000);
  const auto config = CorruptionConfig::Moderate();
  CorruptionManifest manifest_a, manifest_b;
  const auto out_a = CorruptionModel(config).CorruptStream(records, &manifest_a);
  const auto out_b = CorruptionModel(config).CorruptStream(records, &manifest_b);
  EXPECT_TRUE(SameStream(out_a, out_b));
  EXPECT_TRUE(SameManifest(manifest_a, manifest_b));
  EXPECT_GT(manifest_a.Total(), 0u);
}

TEST(CorruptionTest, DifferentSeedsProduceDifferentStreams) {
  const auto records = CleanStream(2000);
  auto config = CorruptionConfig::Moderate();
  const auto out_a = CorruptionModel(config).CorruptStream(records);
  config.seed += 1;
  const auto out_b = CorruptionModel(config).CorruptStream(records);
  EXPECT_FALSE(SameStream(out_a, out_b));
}

TEST(CorruptionTest, DropoutLossMatchesManifestAndPreservesOrder) {
  const auto records = CleanStream(3000);
  CorruptionConfig config;
  config.dropout_rate = 0.1;
  CorruptionManifest manifest;
  const auto out = CorruptionModel(config).CorruptStream(records, &manifest);
  EXPECT_EQ(out.size(), records.size() - manifest.CountOf(CorruptionKind::kDropout));
  EXPECT_GT(manifest.CountOf(CorruptionKind::kDropout), 0u);
  EXPECT_EQ(manifest.Total(), manifest.CountOf(CorruptionKind::kDropout));
  // Survivors are an unmodified, order-preserving subsequence.
  std::size_t cursor = 0;
  for (const Record& record : out) {
    while (cursor < records.size() && !SameRecord(records[cursor], record)) ++cursor;
    ASSERT_LT(cursor, records.size());
    ++cursor;
  }
}

TEST(CorruptionTest, NanChannelCountMatchesManifest) {
  const auto records = CleanStream(3000);
  CorruptionConfig config;
  config.nan_rate = 0.05;
  CorruptionManifest manifest;
  const auto out = CorruptionModel(config).CorruptStream(records, &manifest);
  ASSERT_EQ(out.size(), records.size());
  std::size_t with_nan = 0;
  for (const Record& record : out)
    if (HasNonFinite(record)) ++with_nan;
  EXPECT_EQ(with_nan, manifest.CountOf(CorruptionKind::kNanChannel));
  EXPECT_GT(with_nan, 0u);
  for (const auto& entry : manifest.entries) {
    EXPECT_GE(entry.channel, 0);
    EXPECT_LT(entry.channel, kNumPids);
  }
}

TEST(CorruptionTest, DuplicatesAreImmediateRedeliveries) {
  const auto records = CleanStream(3000);
  CorruptionConfig config;
  config.duplicate_rate = 0.05;
  CorruptionManifest manifest;
  const auto out = CorruptionModel(config).CorruptStream(records, &manifest);
  const std::size_t duplicates = manifest.CountOf(CorruptionKind::kDuplicate);
  EXPECT_EQ(out.size(), records.size() + duplicates);
  EXPECT_GT(duplicates, 0u);
  std::size_t adjacent_pairs = 0;
  for (std::size_t i = 1; i < out.size(); ++i)
    if (SameRecord(out[i], out[i - 1])) ++adjacent_pairs;
  EXPECT_EQ(adjacent_pairs, duplicates);
}

TEST(CorruptionTest, ClockSkewIsBoundedByMaxSkewMinutes) {
  const auto records = CleanStream(3000);
  CorruptionConfig config;
  config.skew_rate = 0.1;
  config.max_skew_minutes = 3;
  CorruptionManifest manifest;
  const auto out = CorruptionModel(config).CorruptStream(records, &manifest);
  ASSERT_EQ(out.size(), records.size());
  EXPECT_GT(manifest.CountOf(CorruptionKind::kClockSkew), 0u);
  // Some record must actually arrive out of order...
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < out.size(); ++i)
    if (out[i].timestamp < out[i - 1].timestamp) ++inversions;
  EXPECT_GT(inversions, 0u);
  // ...but never by more than the skew bound: with contiguous input minutes,
  // any later delivery is at most max_skew_minutes older.
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(out.size(), i + 16); ++j) {
      EXPECT_LE(out[i].timestamp, out[j].timestamp + config.max_skew_minutes);
    }
  }
}

TEST(CorruptionTest, StuckRunsFreezeOneChannel) {
  const auto records = CleanStream(3000);
  CorruptionConfig config;
  config.stuck_rate = 0.05;
  CorruptionManifest manifest;
  const auto out = CorruptionModel(config).CorruptStream(records, &manifest);
  ASSERT_EQ(out.size(), records.size());
  const std::size_t stuck = manifest.CountOf(CorruptionKind::kStuckAt);
  EXPECT_GT(stuck, 0u);
  // Every stuck record differs from the clean one in exactly the manifest
  // channel (the clean stream never exactly repeats a value), except the run
  // head, which freezes the channel at its own current value.
  std::size_t modified = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (!SameRecord(out[i], records[i])) ++modified;
  EXPECT_GT(modified, 0u);
  EXPECT_LE(modified, stuck);
}

TEST(CorruptionTest, ClippedChannelsLandAboveThePlausibleRange) {
  const auto records = CleanStream(3000);
  CorruptionConfig config;
  config.clip_rate = 0.02;
  CorruptionManifest manifest;
  const auto out = CorruptionModel(config).CorruptStream(records, &manifest);
  ASSERT_EQ(out.size(), records.size());
  EXPECT_GT(manifest.CountOf(CorruptionKind::kClip), 0u);
  for (const auto& entry : manifest.entries) {
    ASSERT_EQ(entry.kind, CorruptionKind::kClip);
    const auto& record = out[static_cast<std::size_t>(entry.timestamp)];
    // Saturation ceilings sit above the plausible envelope, so the ingest
    // range filter flags every clipped record.
    EXPECT_TRUE(IsSensorFaulty(record));
  }
}

TEST(CorruptionTest, ScaledMultipliesRatesAndClamps) {
  const auto moderate = CorruptionConfig::Moderate();
  const auto doubled = moderate.Scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.dropout_rate, 2.0 * moderate.dropout_rate);
  EXPECT_DOUBLE_EQ(doubled.nan_rate, 2.0 * moderate.nan_rate);
  EXPECT_EQ(doubled.max_skew_minutes, moderate.max_skew_minutes);
  EXPECT_TRUE(moderate.Scaled(0.0).Inactive());
  EXPECT_DOUBLE_EQ(moderate.Scaled(1e6).dropout_rate, 0.95);
}

TEST(CorruptionTest, CorruptFleetIsDeterministicAndLeavesEventsAlone) {
  FleetDataset fleet;
  for (std::int32_t v = 0; v < 3; ++v) {
    VehicleHistory vehicle;
    vehicle.spec.id = v;
    vehicle.records = CleanStream(800, v);
    FleetEvent event;
    event.vehicle_id = v;
    event.timestamp = 400;
    event.type = EventType::kService;
    vehicle.events.push_back(event);
    fleet.vehicles.push_back(std::move(vehicle));
  }
  const CorruptionModel model(CorruptionConfig::Moderate());
  CorruptionManifest manifest_a, manifest_b;
  const auto fleet_a = model.CorruptFleet(fleet, &manifest_a);
  const auto fleet_b = model.CorruptFleet(fleet, &manifest_b);
  ASSERT_EQ(fleet_a.vehicles.size(), fleet.vehicles.size());
  EXPECT_TRUE(SameManifest(manifest_a, manifest_b));
  for (std::size_t v = 0; v < fleet.vehicles.size(); ++v) {
    EXPECT_TRUE(SameStream(fleet_a.vehicles[v].records, fleet_b.vehicles[v].records));
    ASSERT_EQ(fleet_a.vehicles[v].events.size(), 1u);
    EXPECT_EQ(fleet_a.vehicles[v].events[0].timestamp, 400);
    EXPECT_FALSE(SameStream(fleet_a.vehicles[v].records, fleet.vehicles[v].records));
  }
}

}  // namespace
}  // namespace navarchos::telemetry
