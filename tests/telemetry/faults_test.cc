#include "telemetry/faults.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace navarchos::telemetry {
namespace {

TEST(FaultSeverityTest, ZeroBeforeOnsetAndAfterRepair) {
  FaultInstance fault;
  fault.onset = 1000;
  fault.repair_time = 2000;
  fault.peak_severity = 1.0;
  EXPECT_DOUBLE_EQ(fault.SeverityAt(999), 0.0);
  EXPECT_DOUBLE_EQ(fault.SeverityAt(2000), 0.0);
  EXPECT_DOUBLE_EQ(fault.SeverityAt(5000), 0.0);
}

TEST(FaultSeverityTest, MonotoneRampWithinWindow) {
  FaultInstance fault;
  fault.onset = 0;
  fault.repair_time = 10000;
  fault.peak_severity = 0.9;
  double previous = -1.0;
  for (Minute t = 0; t < 10000; t += 500) {
    const double s = fault.SeverityAt(t);
    EXPECT_GE(s, previous);
    EXPECT_LE(s, 0.9);
    previous = s;
  }
}

TEST(FaultSeverityTest, ApproachesPeakNearRepair) {
  FaultInstance fault;
  fault.onset = 0;
  fault.repair_time = 10000;
  fault.peak_severity = 1.0;
  EXPECT_GT(fault.SeverityAt(9999), 0.95);
}

TEST(FaultSeverityTest, RisesEarlyEnoughForLongHorizons) {
  // The exponent < 1 shape should reach ~half severity by the window middle.
  FaultInstance fault;
  fault.onset = 0;
  fault.repair_time = 10000;
  fault.peak_severity = 1.0;
  EXPECT_GT(fault.SeverityAt(5000), 0.5);
}

TEST(FaultEffectsTest, HealthyIsAllZero) {
  const FaultEffects effects = EffectsOf(FaultType::kThermostatStuckOpen, 0.0);
  EXPECT_DOUBLE_EQ(effects.thermostat_open, 0.0);
  EXPECT_DOUBLE_EQ(effects.maf_gain_delta, 0.0);
  EXPECT_DOUBLE_EQ(effects.coolant_load_gain, 0.0);
}

TEST(FaultEffectsTest, EachTypeTouchesItsSignature) {
  EXPECT_GT(EffectsOf(FaultType::kThermostatStuckOpen, 1.0).thermostat_open, 0.5);
  EXPECT_LT(EffectsOf(FaultType::kMafSensorDrift, 1.0).maf_gain_delta, -0.1);
  EXPECT_GT(EffectsOf(FaultType::kMafSensorDrift, 1.0).maf_noise_frac, 0.1);
  EXPECT_GT(EffectsOf(FaultType::kIntakeLeak, 1.0).map_leak_kpa, 10.0);
  EXPECT_GT(EffectsOf(FaultType::kCoolantRestriction, 1.0).coolant_load_gain, 20.0);
  EXPECT_GT(EffectsOf(FaultType::kInjectorDegradation, 1.0).rpm_noise_frac, 0.1);
  EXPECT_GT(EffectsOf(FaultType::kInjectorDegradation, 1.0).combustion_loss, 0.2);
}

TEST(FaultEffectsTest, EffectsScaleWithSeverity) {
  const FaultEffects half = EffectsOf(FaultType::kCoolantRestriction, 0.5);
  const FaultEffects full = EffectsOf(FaultType::kCoolantRestriction, 1.0);
  EXPECT_NEAR(half.coolant_load_gain * 2.0, full.coolant_load_gain, 1e-9);
}

TEST(FaultEffectsTest, AddClampsBoundedFields) {
  FaultEffects a = EffectsOf(FaultType::kThermostatStuckOpen, 1.0);
  a.Add(EffectsOf(FaultType::kThermostatStuckOpen, 1.0));
  EXPECT_LE(a.thermostat_open, 1.0);
  FaultEffects b = EffectsOf(FaultType::kInjectorDegradation, 1.0);
  b.Add(EffectsOf(FaultType::kInjectorDegradation, 1.0));
  b.Add(EffectsOf(FaultType::kInjectorDegradation, 1.0));
  EXPECT_LE(b.combustion_loss, 0.9);
}

TEST(FaultEffectsTest, CombinedEffectsSumOverFaults) {
  FaultInstance f1, f2;
  f1.type = FaultType::kMafSensorDrift;
  f1.onset = 0;
  f1.repair_time = 1000;
  f1.peak_severity = 1.0;
  f2.type = FaultType::kIntakeLeak;
  f2.onset = 0;
  f2.repair_time = 1000;
  f2.peak_severity = 1.0;
  const std::vector<FaultInstance> faults{f1, f2};
  const FaultEffects combined = CombinedEffectsAt(faults, 999);
  EXPECT_LT(combined.maf_gain_delta, -0.2);  // both contribute
  EXPECT_GT(combined.map_leak_kpa, 10.0);
}

TEST(SampleFaultTest, OnsetPrecedesRepairByLeadWindow) {
  util::Rng rng(3);
  const Minute repair = 100 * kMinutesPerDay;
  const FaultInstance fault = SampleFault(0, 5, repair, 30, rng);
  EXPECT_EQ(fault.repair_time, repair);
  EXPECT_EQ(fault.onset, repair - 30 * kMinutesPerDay);
  EXPECT_EQ(fault.vehicle_id, 5);
  EXPECT_GE(fault.peak_severity, 0.85);
  EXPECT_LE(fault.peak_severity, 1.0);
}

TEST(SampleFaultTest, OnsetClampedAtZero) {
  util::Rng rng(3);
  const FaultInstance fault = SampleFault(0, 1, 5 * kMinutesPerDay, 30, rng);
  EXPECT_EQ(fault.onset, 0);
}

TEST(FaultTypeNamesTest, AllDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < kNumFaultTypes; ++i)
    names.insert(FaultTypeName(static_cast<FaultType>(i)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumFaultTypes));
}

}  // namespace
}  // namespace navarchos::telemetry
