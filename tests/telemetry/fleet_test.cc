#include "telemetry/fleet.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "telemetry/filters.h"

namespace navarchos::telemetry {
namespace {

FleetDataset TestFleet(std::uint64_t seed = 42) {
  FleetConfig config = FleetConfig::TestScale();
  config.seed = seed;
  return GenerateFleet(config);
}

TEST(FleetTest, VehicleCountMatchesConfig) {
  const FleetDataset fleet = TestFleet();
  EXPECT_EQ(fleet.vehicles.size(), 8u);
}

TEST(FleetTest, ReportingCountMatchesConfig) {
  const FleetDataset fleet = TestFleet();
  int reporting = 0;
  for (const auto& vehicle : fleet.vehicles) reporting += vehicle.reporting ? 1 : 0;
  EXPECT_EQ(reporting, 6);
}

TEST(FleetTest, RecordedFailuresOnlyOnReportingVehicles) {
  const FleetDataset fleet = TestFleet();
  int recorded_failures = 0;
  for (const auto& vehicle : fleet.vehicles) {
    const auto repairs = vehicle.RecordedRepairTimes();
    if (!repairs.empty()) {
      EXPECT_TRUE(vehicle.reporting);
    }
    recorded_failures += static_cast<int>(repairs.size());
  }
  EXPECT_EQ(recorded_failures, 2);
}

TEST(FleetTest, HiddenFailuresExist) {
  const FleetDataset fleet = TestFleet();
  int hidden = 0;
  for (const auto& vehicle : fleet.vehicles) {
    hidden += static_cast<int>(vehicle.TrueRepairTimes().size() -
                               vehicle.RecordedRepairTimes().size());
  }
  EXPECT_EQ(hidden, 1);
}

TEST(FleetTest, EveryFailingVehicleHasFaultGroundTruth) {
  const FleetDataset fleet = TestFleet();
  for (const auto& vehicle : fleet.vehicles) {
    EXPECT_EQ(vehicle.TrueRepairTimes().size(), vehicle.faults.size());
    for (const auto& fault : vehicle.faults) {
      EXPECT_EQ(fault.vehicle_id, vehicle.spec.id);
      EXPECT_LT(fault.onset, fault.repair_time);
    }
  }
}

TEST(FleetTest, EventsAreTimeOrdered) {
  const FleetDataset fleet = TestFleet();
  for (const auto& vehicle : fleet.vehicles) {
    for (std::size_t i = 1; i < vehicle.events.size(); ++i)
      EXPECT_LE(vehicle.events[i - 1].timestamp, vehicle.events[i].timestamp);
  }
}

TEST(FleetTest, RecordsAreTimeOrderedAndStamped) {
  const FleetDataset fleet = TestFleet();
  for (const auto& vehicle : fleet.vehicles) {
    ASSERT_FALSE(vehicle.records.empty());
    for (std::size_t i = 1; i < vehicle.records.size(); ++i)
      EXPECT_LT(vehicle.records[i - 1].timestamp, vehicle.records[i].timestamp);
    for (const Record& record : vehicle.records)
      EXPECT_EQ(record.vehicle_id, vehicle.spec.id);
  }
}

TEST(FleetTest, DeterministicForSameSeed) {
  const FleetDataset a = TestFleet(7);
  const FleetDataset b = TestFleet(7);
  ASSERT_EQ(a.TotalRecords(), b.TotalRecords());
  for (std::size_t v = 0; v < a.vehicles.size(); ++v) {
    ASSERT_EQ(a.vehicles[v].records.size(), b.vehicles[v].records.size());
    for (std::size_t i = 0; i < a.vehicles[v].records.size(); i += 97) {
      EXPECT_EQ(a.vehicles[v].records[i].timestamp, b.vehicles[v].records[i].timestamp);
      EXPECT_EQ(a.vehicles[v].records[i].pids, b.vehicles[v].records[i].pids);
    }
  }
}

TEST(FleetTest, DifferentSeedsDiffer) {
  const FleetDataset a = TestFleet(7);
  const FleetDataset b = TestFleet(8);
  EXPECT_NE(a.TotalRecords(), b.TotalRecords());
}

TEST(FleetTest, ReportingSubsetDropsNonReporting) {
  const FleetDataset fleet = TestFleet();
  const FleetDataset subset = fleet.ReportingSubset();
  EXPECT_EQ(subset.vehicles.size(), 6u);
  for (const auto& vehicle : subset.vehicles) EXPECT_TRUE(vehicle.reporting);
}

TEST(FleetTest, NonReportingVehiclesHaveNoRecordedEvents) {
  const FleetDataset fleet = TestFleet();
  for (const auto& vehicle : fleet.vehicles) {
    if (vehicle.reporting) continue;
    for (const auto& event : vehicle.RecordedEvents()) {
      // DTCs arrive over OBD for all vehicles; maintenance events do not.
      EXPECT_TRUE(event.type == EventType::kDtcPending ||
                  event.type == EventType::kDtcStored);
    }
  }
}

TEST(FleetTest, FailureStateFractionInPlausibleRange) {
  const FleetDataset fleet = TestFleet();
  const double f30 = fleet.FailureStateFraction(30);
  const double f15 = fleet.FailureStateFraction(15);
  EXPECT_GT(f30, 0.0);
  EXPECT_LT(f30, 0.25);
  EXPECT_LE(f15, f30);
}

TEST(FleetTest, SensorFaultyRecordsPresentButRare) {
  const FleetDataset fleet = TestFleet();
  std::size_t total = 0, faulty = 0;
  for (const auto& vehicle : fleet.vehicles) {
    for (const Record& record : vehicle.records) {
      ++total;
      if (IsSensorFaulty(record)) ++faulty;
    }
  }
  EXPECT_GT(faulty, 0u);
  EXPECT_LT(static_cast<double>(faulty) / static_cast<double>(total), 0.01);
}

TEST(FleetTest, RepairClearsFaultEffects) {
  const FleetDataset fleet = TestFleet();
  for (const auto& vehicle : fleet.vehicles) {
    for (const auto& fault : vehicle.faults) {
      EXPECT_DOUBLE_EQ(fault.SeverityAt(fault.repair_time + 1), 0.0);
    }
  }
}

TEST(FleetPaperScaleTest, MatchesPaperHeadlineNumbers) {
  // Paper §1: 40 vehicles, 26 with events, 9 failures, ~1.5M records,
  // failure states 3.6% / 1.9% of the data for 30 / 15 day windows.
  const FleetConfig config = FleetConfig::PaperScale();
  EXPECT_EQ(config.num_vehicles, 40);
  EXPECT_EQ(config.num_reporting, 26);
  EXPECT_EQ(config.num_recorded_failures, 9);
  EXPECT_EQ(config.days, 365);
  const FleetDataset fleet = GenerateFleet(config);
  // Same order of magnitude as the paper's 1.5M records.
  EXPECT_GT(fleet.TotalRecords(), 800000u);
  EXPECT_LT(fleet.TotalRecords(), 2500000u);
  // Around a hundred-plus recorded events (paper: 121 + DTC stream).
  EXPECT_GT(fleet.TotalRecordedEvents(), 80u);
  // Failure-state fractions in the paper's ballpark.
  EXPECT_GT(fleet.FailureStateFraction(30), 0.005);
  EXPECT_LT(fleet.FailureStateFraction(30), 0.06);
}

TEST(VehicleSpecTest, FleetSpecsAreHeterogeneous) {
  util::Rng rng(1);
  const auto specs = SampleFleetSpecs(40, rng);
  std::set<int> models;
  for (const auto& spec : specs) models.insert(static_cast<int>(spec.model));
  EXPECT_GE(models.size(), 3u);
  // Ride mixes differ across vehicles.
  bool mixes_differ = false;
  for (std::size_t i = 1; i < specs.size(); ++i)
    if (specs[i].ride_mix != specs[0].ride_mix) mixes_differ = true;
  EXPECT_TRUE(mixes_differ);
}

TEST(VehicleSpecTest, RideMixesNormalised) {
  util::Rng rng(2);
  for (const auto& spec : SampleFleetSpecs(20, rng)) {
    double total = 0.0;
    for (double w : spec.ride_mix) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(VehicleSpecTest, DisplayNameFormatsIdAndModel) {
  VehicleSpec spec;
  spec.id = 3;
  spec.model = VehicleModel::kVan;
  EXPECT_EQ(spec.DisplayName(), "v03(van)");
}

}  // namespace
}  // namespace navarchos::telemetry
