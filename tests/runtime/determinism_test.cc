// The runtime's cardinal invariant: GenerateFleet, RunFleet, and RunGrid
// produce byte-identical results at any thread count (threads=1 vs
// threads=4 here, same seed). Every result field is compared exactly -
// alarms, scored samples, calibrations, quality counters, grid cells -
// except wall-clock measurements (CellResult::runtime_seconds), which are
// not results. Also proves FleetRunResult's const replay methods are safe
// to call concurrently (run under TSan in CI).
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_runner.h"
#include "eval/experiment.h"
#include "runtime/runtime_config.h"
#include "telemetry/fleet.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 45;  // Keep the full 16-cell grid comparison fast.
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  config.detector_options.tranad.epochs = 2;
  config.detector_options.tranad.d_model = 8;
  config.detector_options.tranad.window = 4;
  config.detector_options.gbt.num_trees = 10;
  config.detector_options.grand.k = 5;
  return config;
}

void ExpectRecordsIdentical(const telemetry::Record& a, const telemetry::Record& b) {
  ASSERT_EQ(a.vehicle_id, b.vehicle_id);
  ASSERT_EQ(a.timestamp, b.timestamp);
  for (std::size_t p = 0; p < a.pids.size(); ++p)
    ASSERT_EQ(a.pids[p], b.pids[p]);  // Exact, not near: bit-identity.
}

void ExpectFleetsIdentical(const telemetry::FleetDataset& a,
                           const telemetry::FleetDataset& b) {
  ASSERT_EQ(a.vehicles.size(), b.vehicles.size());
  for (std::size_t v = 0; v < a.vehicles.size(); ++v) {
    const auto& va = a.vehicles[v];
    const auto& vb = b.vehicles[v];
    ASSERT_EQ(va.spec.id, vb.spec.id);
    ASSERT_EQ(va.reporting, vb.reporting);
    ASSERT_EQ(va.events.size(), vb.events.size());
    for (std::size_t e = 0; e < va.events.size(); ++e) {
      ASSERT_EQ(va.events[e].timestamp, vb.events[e].timestamp);
      ASSERT_EQ(va.events[e].type, vb.events[e].type);
      ASSERT_EQ(va.events[e].code, vb.events[e].code);
      ASSERT_EQ(va.events[e].recorded, vb.events[e].recorded);
      ASSERT_EQ(va.events[e].fault_id, vb.events[e].fault_id);
    }
    ASSERT_EQ(va.faults.size(), vb.faults.size());
    for (std::size_t f = 0; f < va.faults.size(); ++f) {
      ASSERT_EQ(va.faults[f].fault_id, vb.faults[f].fault_id);
      ASSERT_EQ(va.faults[f].type, vb.faults[f].type);
    }
    ASSERT_EQ(va.records.size(), vb.records.size());
    for (std::size_t r = 0; r < va.records.size(); ++r)
      ExpectRecordsIdentical(va.records[r], vb.records[r]);
  }
}

void ExpectAlarmsIdentical(const std::vector<core::Alarm>& a,
                           const std::vector<core::Alarm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].vehicle_id, b[i].vehicle_id);
    ASSERT_EQ(a[i].timestamp, b[i].timestamp);
    ASSERT_EQ(a[i].channel, b[i].channel);
    ASSERT_EQ(a[i].channel_name, b[i].channel_name);
    ASSERT_EQ(a[i].score, b[i].score);
    ASSERT_EQ(a[i].threshold, b[i].threshold);
  }
}

void ExpectRunsIdentical(const core::FleetRunResult& a,
                         const core::FleetRunResult& b) {
  ExpectAlarmsIdentical(a.alarms, b.alarms);
  ASSERT_EQ(a.channel_names, b.channel_names);
  ASSERT_EQ(a.persistence_window, b.persistence_window);
  ASSERT_EQ(a.persistence_min, b.persistence_min);

  ASSERT_EQ(a.scored_samples.size(), b.scored_samples.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t s = 0; s < a.scored_samples[v].size(); ++s) {
      ASSERT_EQ(a.scored_samples[v][s].timestamp, b.scored_samples[v][s].timestamp);
      ASSERT_EQ(a.scored_samples[v][s].calibration_index,
                b.scored_samples[v][s].calibration_index);
      ASSERT_EQ(a.scored_samples[v][s].scores, b.scored_samples[v][s].scores);
    }
  }

  ASSERT_EQ(a.calibrations.size(), b.calibrations.size());
  for (std::size_t v = 0; v < a.calibrations.size(); ++v) {
    ASSERT_EQ(a.calibrations[v].size(), b.calibrations[v].size());
    for (std::size_t c = 0; c < a.calibrations[v].size(); ++c) {
      ASSERT_EQ(a.calibrations[v][c].mean, b.calibrations[v][c].mean);
      ASSERT_EQ(a.calibrations[v][c].stddev, b.calibrations[v][c].stddev);
      ASSERT_EQ(a.calibrations[v][c].median, b.calibrations[v][c].median);
      ASSERT_EQ(a.calibrations[v][c].mad, b.calibrations[v][c].mad);
      ASSERT_EQ(a.calibrations[v][c].max, b.calibrations[v][c].max);
    }
  }

  ASSERT_EQ(a.quality.size(), b.quality.size());
  for (std::size_t v = 0; v < a.quality.size(); ++v) {
    ASSERT_EQ(a.quality[v].records_seen, b.quality[v].records_seen);
    ASSERT_EQ(a.quality[v].RecordsDropped(), b.quality[v].RecordsDropped());
    ASSERT_EQ(a.quality[v].stuck_run_records, b.quality[v].stuck_run_records);
    ASSERT_EQ(a.quality[v].quarantine_events, b.quality[v].quarantine_events);
  }
}

TEST(DeterminismTest, GenerateFleetIsIdenticalAtAnyThreadCount) {
  const auto serial = telemetry::GenerateFleet(SmallConfig(),
                                               runtime::RuntimeConfig{1});
  const auto parallel = telemetry::GenerateFleet(SmallConfig(),
                                                 runtime::RuntimeConfig{4});
  ExpectFleetsIdentical(serial, parallel);

  // The single-argument overload is the serial path.
  const auto legacy = telemetry::GenerateFleet(SmallConfig());
  ExpectFleetsIdentical(serial, legacy);
}

TEST(DeterminismTest, RunFleetIsIdenticalAtAnyThreadCount) {
  const auto fleet = telemetry::GenerateFleet(SmallConfig(),
                                              runtime::RuntimeConfig{4});
  const auto config = FastMonitorConfig();
  const auto serial = core::RunFleet(fleet, config, runtime::RuntimeConfig{1});
  const auto parallel = core::RunFleet(fleet, config, runtime::RuntimeConfig{4});
  ExpectRunsIdentical(serial, parallel);

  // Threshold replays over the recorded traces agree too.
  for (double factor : {3.0, 8.0, 20.0})
    ExpectAlarmsIdentical(serial.AlarmsAt(factor), parallel.AlarmsAt(factor));

  const auto qa = serial.TotalQuality();
  const auto qb = parallel.TotalQuality();
  ASSERT_EQ(qa.records_seen, qb.records_seen);
  ASSERT_EQ(qa.RecordsDropped(), qb.RecordsDropped());
}

TEST(DeterminismTest, RunGridIsIdenticalAtAnyThreadCount) {
  const auto fleet = telemetry::GenerateFleet(SmallConfig(),
                                              runtime::RuntimeConfig{4});
  const auto config = FastMonitorConfig();
  const eval::SweepConfig sweep;
  const auto serial = eval::RunGrid(fleet, sweep, config,
                                    runtime::RuntimeConfig{1});
  const auto parallel = eval::RunGrid(fleet, sweep, config,
                                      runtime::RuntimeConfig{4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].transform, parallel[i].transform);
    ASSERT_EQ(serial[i].detector, parallel[i].detector);
    ASSERT_EQ(serial[i].ph_days, parallel[i].ph_days);
    ASSERT_EQ(serial[i].best_threshold, parallel[i].best_threshold);
    ASSERT_EQ(serial[i].metrics.f05, parallel[i].metrics.f05);
    ASSERT_EQ(serial[i].metrics.f1, parallel[i].metrics.f1);
    ASSERT_EQ(serial[i].metrics.precision, parallel[i].metrics.precision);
    ASSERT_EQ(serial[i].metrics.recall, parallel[i].metrics.recall);
    ASSERT_EQ(serial[i].metrics.false_positive_episodes,
              parallel[i].metrics.false_positive_episodes);
    ASSERT_EQ(serial[i].metrics.detected_failures,
              parallel[i].metrics.detected_failures);
    ASSERT_EQ(serial[i].metrics.total_failures,
              parallel[i].metrics.total_failures);
    // runtime_seconds deliberately not compared: wall-clock, not a result.
  }
}

TEST(DeterminismTest, ConstReplayMethodsAreSafeToCallConcurrently) {
  // AlarmsAt/TotalQuality are strictly const (no mutable scratch), so grid
  // threshold sweeps may replay the same recorded run from many threads.
  // TSan in CI verifies the absence of data races.
  const auto fleet = telemetry::GenerateFleet(SmallConfig(),
                                              runtime::RuntimeConfig{2});
  const auto run = core::RunFleet(fleet, FastMonitorConfig(),
                                  runtime::RuntimeConfig{2});
  const auto expected = run.AlarmsAt(5.0);
  const auto expected_quality = run.TotalQuality();

  std::vector<std::vector<core::Alarm>> replays(4);
  std::vector<core::DataQualityReport> qualities(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&run, &replays, &qualities, t]() {
      replays[static_cast<std::size_t>(t)] = run.AlarmsAt(5.0);
      qualities[static_cast<std::size_t>(t)] = run.TotalQuality();
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < 4; ++t) {
    ExpectAlarmsIdentical(replays[static_cast<std::size_t>(t)], expected);
    ASSERT_EQ(qualities[static_cast<std::size_t>(t)].records_seen,
              expected_quality.records_seen);
  }
}

}  // namespace
}  // namespace navarchos
