// BoundedQueue: the streaming service's ingest primitive. Verified here:
// FIFO order (serially and under producer/consumer contention), blocking
// and rejecting backpressure on a full queue, drain-on-close delivering
// every admitted item, and loss-freedom under multi-producer contention
// (run under TSan in CI).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/bounded_queue.h"

namespace navarchos {
namespace {

using runtime::BoundedQueue;

TEST(BoundedQueueTest, FifoOrderSerial) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));
  ASSERT_EQ(queue.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    ASSERT_EQ(out, i);
  }
  ASSERT_TRUE(queue.Empty());
  ASSERT_FALSE(queue.TryPop(&out));
}

TEST(BoundedQueueTest, TryPushRejectsWhenFullUntilSpaceFrees) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  ASSERT_FALSE(queue.TryPush(3));  // rejection backpressure
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  ASSERT_EQ(out, 1);
  ASSERT_TRUE(queue.TryPush(3));  // space freed, admitted again
  ASSERT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, BlockingPushWaitsForConsumer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(0));  // fills the queue
  std::atomic<int> pushed{0};
  std::thread producer([&]() {
    for (int i = 1; i <= 100; ++i) {
      ASSERT_TRUE(queue.Push(i));  // blocks whenever the consumer lags
      pushed.fetch_add(1);
    }
  });
  int out = -1;
  for (int i = 0; i <= 100; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    ASSERT_EQ(out, i);  // FIFO preserved across every block/wake cycle
  }
  producer.join();
  ASSERT_EQ(pushed.load(), 100);
  ASSERT_TRUE(queue.Empty());
}

TEST(BoundedQueueTest, FifoUnderProducerConsumerContention) {
  BoundedQueue<int> queue(16);
  constexpr int kItems = 20000;
  std::thread producer([&]() {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.Push(i));
    queue.Close();
  });
  std::vector<int> received;
  received.reserve(kItems);
  int out = -1;
  while (queue.Pop(&out)) received.push_back(out);
  producer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueueTest, CloseRefusesPushesAndDrainsEveryAcceptedItem) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(queue.Push(i));
  queue.Close();
  ASSERT_TRUE(queue.closed());
  ASSERT_FALSE(queue.Push(99));     // refused after close
  ASSERT_FALSE(queue.TryPush(99));  // refused after close
  int out = -1;
  for (int i = 0; i < 6; ++i) {  // every admitted item still delivered
    ASSERT_TRUE(queue.Pop(&out));
    ASSERT_EQ(out, i);
  }
  ASSERT_FALSE(queue.Pop(&out));  // closed and drained: exhaustion
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(0));
  std::atomic<bool> refused{false};
  std::thread producer([&]() {
    refused.store(!queue.Push(1));  // blocks on the full queue until Close
  });
  queue.Close();
  producer.join();
  ASSERT_TRUE(refused.load());
  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));  // the pre-close item survives
  ASSERT_EQ(out, 0);
  ASSERT_FALSE(queue.Pop(&out));
}

TEST(BoundedQueueTest, NoLossUnderMultiProducerContention) {
  // 4 producers push disjoint ranges through a small queue; a single
  // consumer must observe every item exactly once, with each producer's
  // items still in that producer's order (per-producer FIFO).
  BoundedQueue<int> queue(4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p]() {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  std::size_t received = 0;
  int out = -1;
  while (received < static_cast<std::size_t>(kProducers) * kPerProducer) {
    ASSERT_TRUE(queue.Pop(&out));
    const int producer = out / kPerProducer;
    const int index = out % kPerProducer;
    ASSERT_GT(index, last_seen[static_cast<std::size_t>(producer)]);
    last_seen[static_cast<std::size_t>(producer)] = index;
    ++received;
  }
  for (auto& thread : producers) thread.join();
  ASSERT_TRUE(queue.Empty());
  for (int p = 0; p < kProducers; ++p)
    ASSERT_EQ(last_seen[static_cast<std::size_t>(p)], kPerProducer - 1);
}

}  // namespace
}  // namespace navarchos
