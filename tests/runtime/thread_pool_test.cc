// ThreadPool and ParallelFor/Map unit tests: submission-order execution on
// a single worker, future values, exception propagation, reentrant
// submission, nested parallelism, and index-ordered reduction.
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/parallel.h"
#include "runtime/runtime_config.h"
#include "runtime/thread_pool.h"

namespace navarchos::runtime {
namespace {

TEST(RuntimeConfigTest, ResolvesThreadCounts) {
  EXPECT_EQ(RuntimeConfig{1}.ResolveThreads(), 1);
  EXPECT_EQ(RuntimeConfig{7}.ResolveThreads(), 7);
  EXPECT_GE(RuntimeConfig{0}.ResolveThreads(), 1);  // hardware concurrency
  EXPECT_EQ(RuntimeConfig::Serial().ResolveThreads(), 1);
}

TEST(ThreadPoolTest, SubmitReturnsFutureValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.Submit([i]() { return i * i; }));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, SingleWorkerExecutesInSubmissionOrder) {
  ThreadPool pool(1);
  std::mutex mu;
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&mu, &order, i]() {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  for (auto& future : futures) future.get();
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);

  // The pool survives a throwing task and keeps executing.
  EXPECT_EQ(pool.Submit([]() { return 41 + 1; }).get(), 42);
}

TEST(ThreadPoolTest, ReentrantSubmissionFromInsideATask) {
  ThreadPool pool(1);  // One worker: subtasks must queue, not deadlock.
  std::atomic<int> executed{0};
  auto outer = pool.Submit([&pool, &executed]() {
    std::vector<std::future<void>> inner;
    for (int i = 0; i < 10; ++i)
      inner.push_back(pool.Submit([&executed]() { ++executed; }));
    ++executed;
    return inner;  // Futures outlive the outer task; awaited by the test.
  });
  for (auto& future : outer.get()) future.get();
  EXPECT_EQ(executed.load(), 11);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.Post([&executed]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++executed;
      });
  }  // Destructor must run all 64, not drop them.
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, TryRunOneTaskHelpsFromOutside) {
  ThreadPool pool(1);
  std::promise<void> release;
  auto blocker = release.get_future().share();
  // Occupy the only worker, then queue one more task.
  auto occupied = pool.Submit([blocker]() { blocker.wait(); });
  std::atomic<bool> ran{false};
  pool.Post([&ran]() { ran = true; });
  // The calling thread can steal and run the queued task itself.
  while (!ran) {
    if (!pool.TryRunOneTask())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
  release.set_value();
  occupied.get();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(257);
    ParallelFor(RuntimeConfig{threads}, hits.size(),
                [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(ParallelForTest, RethrowsBodyException) {
  EXPECT_THROW(
      ParallelFor(RuntimeConfig{4}, 64,
                  [](std::size_t i) {
                    if (i == 13) throw std::runtime_error("body failed");
                  }),
      std::runtime_error);
  // Serial path too.
  EXPECT_THROW(
      ParallelFor(RuntimeConfig{1}, 64,
                  [](std::size_t i) {
                    if (i == 13) throw std::runtime_error("body failed");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, NestedParallelismDoesNotDeadlock) {
  std::atomic<int> total{0};
  ParallelFor(RuntimeConfig{4}, 8, [&total](std::size_t) {
    ParallelFor(RuntimeConfig{2}, 8, [&total](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelForTest, NestedOnSharedPoolDoesNotDeadlock) {
  // The inner loop reuses the same pool its caller runs on; the caller must
  // help execute rather than block its worker.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(&pool, 6, [&pool, &total](std::size_t) {
    ParallelFor(&pool, 6, [&total](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 36);
}

TEST(ParallelMapTest, CollectsResultsByIndexNotCompletionOrder) {
  // Earlier indices sleep longer, so completion order is roughly reversed;
  // the output must still be index-aligned.
  const auto out = ParallelMap<int>(RuntimeConfig{4}, 32, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((32 - i) * 200));
    return static_cast<int>(i) * 3;
  });
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ParallelMapTest, SerialAndParallelAgree) {
  auto body = [](std::size_t i) { return static_cast<double>(i) * 1.5 + 1.0; };
  const auto serial = ParallelMap<double>(RuntimeConfig{1}, 100, body);
  const auto parallel = ParallelMap<double>(RuntimeConfig{4}, 100, body);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace navarchos::runtime
