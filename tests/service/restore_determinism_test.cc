// The headline guarantee of the checkpoint/restore subsystem: kill the
// streaming service at any frame boundary, restore from the snapshot, and
// replay the remaining frames - the combined output (alarms in total order,
// scored samples, calibrations, DataQualityReports) is field-exact
// identical to the uninterrupted run, at threads=1 and threads=4, on clean
// and on corrupted input streams. Also: corrupted snapshot files are
// rejected with a clean Status, and a checkpointed service keeps running
// (checkpoint is a pause, not a shutdown).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_runner.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/corruption.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

service::ServiceConfig ServiceConfigWith(int threads) {
  service::ServiceConfig config;
  config.monitor = FastMonitorConfig();
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 32;
  return config;
}

std::string TempSnapshotPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void ExpectRunsIdentical(const core::FleetRunResult& a,
                         const core::FleetRunResult& b) {
  ASSERT_EQ(a.alarms.size(), b.alarms.size());
  for (std::size_t i = 0; i < a.alarms.size(); ++i) {
    ASSERT_EQ(a.alarms[i].vehicle_id, b.alarms[i].vehicle_id);
    ASSERT_EQ(a.alarms[i].timestamp, b.alarms[i].timestamp);
    ASSERT_EQ(a.alarms[i].channel, b.alarms[i].channel);
    ASSERT_EQ(a.alarms[i].channel_name, b.alarms[i].channel_name);
    ASSERT_EQ(a.alarms[i].score, b.alarms[i].score);
    ASSERT_EQ(a.alarms[i].threshold, b.alarms[i].threshold);
  }
  ASSERT_EQ(a.channel_names, b.channel_names);

  ASSERT_EQ(a.scored_samples.size(), b.scored_samples.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t s = 0; s < a.scored_samples[v].size(); ++s) {
      ASSERT_EQ(a.scored_samples[v][s].timestamp, b.scored_samples[v][s].timestamp);
      ASSERT_EQ(a.scored_samples[v][s].scores, b.scored_samples[v][s].scores);
      ASSERT_EQ(a.scored_samples[v][s].calibration_index,
                b.scored_samples[v][s].calibration_index);
    }
  }

  ASSERT_EQ(a.calibrations.size(), b.calibrations.size());
  for (std::size_t v = 0; v < a.calibrations.size(); ++v) {
    ASSERT_EQ(a.calibrations[v].size(), b.calibrations[v].size());
    for (std::size_t c = 0; c < a.calibrations[v].size(); ++c) {
      ASSERT_EQ(a.calibrations[v][c].mean, b.calibrations[v][c].mean);
      ASSERT_EQ(a.calibrations[v][c].stddev, b.calibrations[v][c].stddev);
      ASSERT_EQ(a.calibrations[v][c].median, b.calibrations[v][c].median);
      ASSERT_EQ(a.calibrations[v][c].mad, b.calibrations[v][c].mad);
      ASSERT_EQ(a.calibrations[v][c].max, b.calibrations[v][c].max);
    }
  }

  ASSERT_EQ(a.quality.size(), b.quality.size());
  for (std::size_t v = 0; v < a.quality.size(); ++v) {
    ASSERT_EQ(a.quality[v].records_seen, b.quality[v].records_seen);
    ASSERT_EQ(a.quality[v].RecordsDropped(), b.quality[v].RecordsDropped());
    ASSERT_EQ(a.quality[v].duplicates_dropped, b.quality[v].duplicates_dropped);
    ASSERT_EQ(a.quality[v].reordered_recovered, b.quality[v].reordered_recovered);
  }
}

/// Runs the stream to `cut` frames in one service (checkpointing there),
/// then restores a second service from the file and replays the rest.
core::FleetRunResult CheckpointedRun(const std::vector<telemetry::SensorFrame>& stream,
                                     const std::vector<std::int32_t>& ids,
                                     const service::ServiceConfig& config,
                                     std::size_t cut, const std::string& path) {
  {
    service::FleetService first(config);
    for (const std::int32_t id : ids) first.RegisterVehicle(id);
    for (std::size_t i = 0; i < cut; ++i) first.Submit(stream[i]);
    const util::Status status = first.Checkpoint(path);
    EXPECT_TRUE(status.ok()) << status.message();
    // The first service dies here without Drain - the simulated crash. Its
    // destructor drains, but nothing after the checkpoint is looked at.
  }

  service::FleetService second(config);
  const util::Status status = second.RestoreFromFile(path);
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(second.vehicle_count(), ids.size());
  EXPECT_EQ(second.stats().frames_accepted, cut);
  for (std::size_t i = cut; i < stream.size(); ++i) second.Submit(stream[i]);
  second.Drain();
  return second.TakeResult();
}

void RunRestoreEqualsUninterrupted(bool corrupted, int threads) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  std::vector<telemetry::SensorFrame> stream;
  if (corrupted) {
    const telemetry::CorruptionModel model(telemetry::CorruptionConfig::Moderate());
    stream = telemetry::InterleaveFleetStream(fleet, model);
  } else {
    stream = telemetry::InterleaveFleetStream(fleet);
  }
  const auto ids = service::VehicleIdsOf(fleet);
  const auto config = ServiceConfigWith(threads);
  const auto uninterrupted = service::RunStream(stream, ids, config);

  const std::string path = TempSnapshotPath(
      "navsnap_restore_t" + std::to_string(threads) +
      (corrupted ? "_corrupt" : "_clean") + ".bin");
  for (const double fraction : {0.1, 0.5, 0.9}) {
    const std::size_t cut =
        static_cast<std::size_t>(fraction * static_cast<double>(stream.size()));
    const auto restored = CheckpointedRun(stream, ids, config, cut, path);
    ExpectRunsIdentical(restored, uninterrupted);
  }
  std::filesystem::remove(path);
}

TEST(RestoreDeterminismTest, CleanStreamSerial) {
  RunRestoreEqualsUninterrupted(/*corrupted=*/false, /*threads=*/1);
}

TEST(RestoreDeterminismTest, CleanStreamParallel) {
  RunRestoreEqualsUninterrupted(/*corrupted=*/false, /*threads=*/4);
}

TEST(RestoreDeterminismTest, CorruptedStreamSerial) {
  RunRestoreEqualsUninterrupted(/*corrupted=*/true, /*threads=*/1);
}

TEST(RestoreDeterminismTest, CorruptedStreamParallel) {
  RunRestoreEqualsUninterrupted(/*corrupted=*/true, /*threads=*/4);
}

TEST(RestoreDeterminismTest, CheckpointAtThreads1RestoresAtThreads4) {
  // The snapshot is thread-count independent: checkpoint a serial service,
  // resume on a parallel one (and vice versa), same output.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto uninterrupted = service::RunStream(stream, ids, ServiceConfigWith(1));
  const std::size_t cut = stream.size() / 2;
  const std::string path = TempSnapshotPath("navsnap_cross_threads.bin");

  {
    service::FleetService first(ServiceConfigWith(1));
    for (const std::int32_t id : ids) first.RegisterVehicle(id);
    for (std::size_t i = 0; i < cut; ++i) first.Submit(stream[i]);
    ASSERT_TRUE(first.Checkpoint(path).ok());
  }
  service::FleetService second(ServiceConfigWith(4));
  ASSERT_TRUE(second.RestoreFromFile(path).ok());
  for (std::size_t i = cut; i < stream.size(); ++i) second.Submit(stream[i]);
  second.Drain();
  ExpectRunsIdentical(second.TakeResult(), uninterrupted);
  std::filesystem::remove(path);
}

TEST(RestoreDeterminismTest, CheckpointedServiceKeepsRunningUnchanged) {
  // Checkpoint is a pause, not a shutdown: the service that wrote the
  // snapshot continues and still produces the uninterrupted result.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto config = ServiceConfigWith(4);
  const auto uninterrupted = service::RunStream(stream, ids, config);
  const std::string path = TempSnapshotPath("navsnap_keeps_running.bin");

  service::FleetService svc(config);
  for (const std::int32_t id : ids) svc.RegisterVehicle(id);
  std::size_t checkpoints = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    svc.Submit(stream[i]);
    if (i % (stream.size() / 5 + 1) == 0) {
      ASSERT_TRUE(svc.Checkpoint(path).ok());
      ++checkpoints;
    }
  }
  svc.Drain();
  EXPECT_GE(checkpoints, 3u);
  ExpectRunsIdentical(svc.TakeResult(), uninterrupted);
  std::filesystem::remove(path);
}

TEST(RestoreDeterminismTest, RestoredAlarmsSurviveInTheFinalResult) {
  // Alarms released before the checkpoint reappear in the restored
  // service's TakeResult and released_alarms(), so an operator can rebuild
  // the complete alarm log after a crash.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto config = ServiceConfigWith(2);
  const auto uninterrupted = service::RunStream(stream, ids, config);
  if (uninterrupted.alarms.empty()) GTEST_SKIP() << "no alarms in this fleet";

  // Cut right after the last alarm's frame would have been admitted: take
  // a late cut so some alarms predate the checkpoint.
  const std::size_t cut = stream.size() * 95 / 100;
  const std::string path = TempSnapshotPath("navsnap_alarm_carry.bin");
  {
    service::FleetService first(config);
    for (const std::int32_t id : ids) first.RegisterVehicle(id);
    for (std::size_t i = 0; i < cut; ++i) first.Submit(stream[i]);
    ASSERT_TRUE(first.Checkpoint(path).ok());
  }
  service::FleetService second(config);
  ASSERT_TRUE(second.RestoreFromFile(path).ok());
  const std::size_t carried = second.released_alarms().size();
  for (std::size_t i = cut; i < stream.size(); ++i) second.Submit(stream[i]);
  second.Drain();
  const auto result = second.TakeResult();
  EXPECT_EQ(result.alarms.size(), uninterrupted.alarms.size());
  EXPECT_LE(carried, result.alarms.size());
  std::filesystem::remove(path);
}

TEST(RestoreDeterminismTest, RestoreRejectsNonFreshService) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string path = TempSnapshotPath("navsnap_not_fresh.bin");
  {
    service::FleetService first(ServiceConfigWith(1));
    for (const std::int32_t id : ids) first.RegisterVehicle(id);
    for (std::size_t i = 0; i < 100; ++i) first.Submit(stream[i]);
    ASSERT_TRUE(first.Checkpoint(path).ok());
  }
  service::FleetService used(ServiceConfigWith(1));
  used.Submit(stream[0]);
  const util::Status status = used.RestoreFromFile(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not fresh"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(RestoreDeterminismTest, CorruptedSnapshotFilesAreRejectedCleanly) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string path = TempSnapshotPath("navsnap_service_corrupt.bin");
  {
    service::FleetService first(ServiceConfigWith(1));
    for (const std::int32_t id : ids) first.RegisterVehicle(id);
    for (std::size_t i = 0; i < 500; ++i) first.Submit(stream[i]);
    ASSERT_TRUE(first.Checkpoint(path).ok());
  }

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());

  // A sweep of single-byte flips across the whole file (header, tags,
  // CRCs, payloads): every one must yield a clean error, never a crash.
  const std::size_t step = std::max<std::size_t>(1, bytes.size() / 211);
  const std::string flipped = path + ".flipped";
  for (std::size_t pos = 0; pos < bytes.size(); pos += step) {
    std::vector<char> corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    {
      std::ofstream out(flipped, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
    }
    service::FleetService fresh(ServiceConfigWith(1));
    const util::Status status = fresh.RestoreFromFile(flipped);
    EXPECT_FALSE(status.ok()) << "flip at byte " << pos << " went undetected";
    EXPECT_FALSE(status.message().empty());
  }

  // Truncations of the file, same contract.
  for (const double fraction : {0.0, 0.3, 0.7, 0.999}) {
    const std::size_t len =
        static_cast<std::size_t>(fraction * static_cast<double>(bytes.size()));
    {
      std::ofstream out(flipped, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    service::FleetService fresh(ServiceConfigWith(1));
    EXPECT_FALSE(fresh.RestoreFromFile(flipped).ok()) << "prefix " << len;
  }

  std::filesystem::remove(path);
  std::filesystem::remove(flipped);
}

}  // namespace
}  // namespace navarchos
