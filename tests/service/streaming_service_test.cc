// FleetService behaviour: the streaming run of an interleaved fleet feed
// must reproduce the batch runner's per-vehicle results exactly, the stats
// counters must account for every frame, the ordered callbacks must observe
// alarms and completions in the deterministic total order, and shutdown
// (Drain) must be graceful and idempotent.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_runner.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

service::ServiceConfig SmallServiceConfig(int threads) {
  service::ServiceConfig config;
  config.monitor = FastMonitorConfig();
  config.runtime = runtime::RuntimeConfig{threads};
  return config;
}

void ExpectAlarmsIdentical(const std::vector<core::Alarm>& a,
                           const std::vector<core::Alarm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].vehicle_id, b[i].vehicle_id);
    ASSERT_EQ(a[i].timestamp, b[i].timestamp);
    ASSERT_EQ(a[i].channel, b[i].channel);
    ASSERT_EQ(a[i].channel_name, b[i].channel_name);
    ASSERT_EQ(a[i].score, b[i].score);
    ASSERT_EQ(a[i].threshold, b[i].threshold);
  }
}

TEST(StreamingServiceTest, StreamingRunMatchesBatchRunnerExactly) {
  // The defining property of the service layer: feeding the interleaved
  // stream through FleetService yields the very results core::RunFleet
  // computes from the per-vehicle histories - field-exact, per vehicle.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto batch = core::RunFleet(fleet, FastMonitorConfig(),
                                    runtime::RuntimeConfig{1});
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto streamed = service::RunStream(stream, service::VehicleIdsOf(fleet),
                                           SmallServiceConfig(2));

  ASSERT_EQ(streamed.channel_names, batch.channel_names);
  ASSERT_EQ(streamed.persistence_window, batch.persistence_window);
  ASSERT_EQ(streamed.persistence_min, batch.persistence_min);

  // Batch alarms are grouped by vehicle (vehicle-major); streaming alarms
  // are in stream order. The multisets must agree - compare per vehicle.
  ASSERT_EQ(streamed.alarms.size(), batch.alarms.size());
  for (std::size_t v = 0; v < fleet.vehicles.size(); ++v) {
    const std::int32_t id = fleet.vehicles[v].spec.id;
    std::vector<core::Alarm> batch_alarms;
    std::vector<core::Alarm> stream_alarms;
    for (const auto& alarm : batch.alarms)
      if (alarm.vehicle_id == id) batch_alarms.push_back(alarm);
    for (const auto& alarm : streamed.alarms)
      if (alarm.vehicle_id == id) stream_alarms.push_back(alarm);
    ExpectAlarmsIdentical(stream_alarms, batch_alarms);
  }

  // Per-vehicle traces are index-aligned (RunStream registered the ids in
  // fleet order) and bit-identical.
  ASSERT_EQ(streamed.scored_samples.size(), batch.scored_samples.size());
  for (std::size_t v = 0; v < batch.scored_samples.size(); ++v) {
    ASSERT_EQ(streamed.scored_samples[v].size(), batch.scored_samples[v].size());
    for (std::size_t s = 0; s < batch.scored_samples[v].size(); ++s) {
      ASSERT_EQ(streamed.scored_samples[v][s].timestamp,
                batch.scored_samples[v][s].timestamp);
      ASSERT_EQ(streamed.scored_samples[v][s].scores,
                batch.scored_samples[v][s].scores);
    }
    ASSERT_EQ(streamed.quality[v].records_seen, batch.quality[v].records_seen);
    ASSERT_EQ(streamed.quality[v].RecordsDropped(),
              batch.quality[v].RecordsDropped());
    ASSERT_EQ(streamed.calibrations[v].size(), batch.calibrations[v].size());
  }
}

TEST(StreamingServiceTest, StatsAccountForEveryFrame) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);

  service::FleetService svc(SmallServiceConfig(2));
  for (const auto id : service::VehicleIdsOf(fleet)) svc.RegisterVehicle(id);
  ASSERT_EQ(svc.vehicle_count(), fleet.vehicles.size());
  for (const auto& frame : stream) ASSERT_TRUE(svc.Submit(frame));
  svc.Drain();

  const auto stats = svc.stats();
  ASSERT_EQ(stats.frames_submitted, stream.size());
  ASSERT_EQ(stats.frames_accepted, stream.size());  // kBlock: lossless
  ASSERT_EQ(stats.frames_rejected, 0u);
  ASSERT_EQ(stats.frames_processed, stream.size());
  const auto result = svc.TakeResult();
  ASSERT_EQ(stats.alarms_emitted, result.alarms.size());
}

TEST(StreamingServiceTest, CallbacksObserveTheDeterministicTotalOrder) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);

  service::FleetService svc(SmallServiceConfig(4));
  std::vector<core::Alarm> live_alarms;
  std::vector<std::uint64_t> completion_seqs;
  // Callbacks run under the sink lock, never concurrently with themselves,
  // so plain vectors are safe here.
  svc.set_alarm_callback(
      [&live_alarms](const core::Alarm& alarm) { live_alarms.push_back(alarm); });
  svc.set_completion_callback([&completion_seqs](const service::FrameCompletion& c) {
    completion_seqs.push_back(c.global_seq);
  });
  for (const auto id : service::VehicleIdsOf(fleet)) svc.RegisterVehicle(id);
  for (const auto& frame : stream) ASSERT_TRUE(svc.Submit(frame));
  svc.Drain();

  // Completions arrive in contiguous global-sequence order regardless of
  // worker scheduling: exactly 0, 1, 2, ... N-1.
  ASSERT_EQ(completion_seqs.size(), stream.size());
  for (std::size_t i = 0; i < completion_seqs.size(); ++i)
    ASSERT_EQ(completion_seqs[i], static_cast<std::uint64_t>(i));

  // The live alarm feed is the recorded result, in the same total order.
  const auto result = svc.TakeResult();
  ExpectAlarmsIdentical(live_alarms, result.alarms);
}

TEST(StreamingServiceTest, RejectPolicyShedsInsteadOfBlocking) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);

  service::ServiceConfig config = SmallServiceConfig(1);
  config.backpressure = service::BackpressurePolicy::kReject;
  config.queue_capacity = 1;  // Tiny lanes: shedding is all but guaranteed.
  service::FleetService svc(config);
  std::size_t admitted = 0;
  for (const auto& frame : stream) admitted += svc.Submit(frame) ? 1u : 0u;
  svc.Drain();

  const auto stats = svc.stats();
  ASSERT_EQ(stats.frames_submitted, stream.size());
  ASSERT_EQ(stats.frames_accepted, admitted);
  ASSERT_EQ(stats.frames_accepted + stats.frames_rejected, stream.size());
  // Every admitted frame is still processed: shedding loses frames at the
  // door, never after admission.
  ASSERT_EQ(stats.frames_processed, stats.frames_accepted);
}

TEST(StreamingServiceTest, DrainIsIdempotentAndRefusesLateSubmissions) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);

  service::FleetService svc(SmallServiceConfig(2));
  for (const auto& frame : stream) ASSERT_TRUE(svc.Submit(frame));
  svc.Drain();
  const auto stats_after_first = svc.stats();
  svc.Drain();  // Idempotent: second drain is a no-op.
  ASSERT_EQ(svc.stats().frames_processed, stats_after_first.frames_processed);
  ASSERT_EQ(svc.stats().alarms_emitted, stats_after_first.alarms_emitted);

  ASSERT_FALSE(svc.Submit(stream.front()));  // Refused after drain.
  ASSERT_EQ(svc.stats().frames_rejected, stats_after_first.frames_rejected + 1);
}

TEST(StreamingServiceTest, RegisterVehicleReturnsStableLaneIndices) {
  service::FleetService svc(SmallServiceConfig(1));
  ASSERT_EQ(svc.RegisterVehicle(7), 0);
  ASSERT_EQ(svc.RegisterVehicle(3), 1);
  ASSERT_EQ(svc.RegisterVehicle(7), 0);  // Re-registration: same lane.
  ASSERT_EQ(svc.vehicle_count(), 2u);
  svc.Drain();
  const auto result = svc.TakeResult();
  ASSERT_EQ(result.scored_samples.size(), 2u);  // One slot per lane.
  ASSERT_EQ(result.quality[0].vehicle_id, 7);
  ASSERT_EQ(result.quality[1].vehicle_id, 3);
}

}  // namespace
}  // namespace navarchos
