// The replay-equals-live invariant of the streaming service: for a recorded
// interleaved stream, the service's complete output - alarms in total
// order, scored samples, calibrations, DataQualityReports - is field-exact
// identical at threads=1 and threads=4, and identical across repeated
// replays at the same thread count. Verified on a clean stream (where it
// must also match the serial batch runner per vehicle) and on a corrupted
// stream produced by the PR-1 CorruptionModel, whose delivery-order
// perturbations (reordering, duplicates, skew) are exactly what the ordered
// sink must not let worker scheduling amplify.
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_runner.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/corruption.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

service::ServiceConfig ServiceConfigWith(int threads) {
  service::ServiceConfig config;
  config.monitor = FastMonitorConfig();
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 32;  // Small enough to exercise backpressure.
  return config;
}

void ExpectAlarmsIdentical(const std::vector<core::Alarm>& a,
                           const std::vector<core::Alarm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].vehicle_id, b[i].vehicle_id);
    ASSERT_EQ(a[i].timestamp, b[i].timestamp);
    ASSERT_EQ(a[i].channel, b[i].channel);
    ASSERT_EQ(a[i].channel_name, b[i].channel_name);
    ASSERT_EQ(a[i].score, b[i].score);
    ASSERT_EQ(a[i].threshold, b[i].threshold);
  }
}

void ExpectQualityIdentical(const core::DataQualityReport& a,
                            const core::DataQualityReport& b) {
  // Every counter, not a summary: the ingest guard's whole report must be
  // reproduced field-exactly.
  ASSERT_EQ(a.vehicle_id, b.vehicle_id);
  ASSERT_EQ(a.records_seen, b.records_seen);
  ASSERT_EQ(a.duplicates_dropped, b.duplicates_dropped);
  ASSERT_EQ(a.reordered_recovered, b.reordered_recovered);
  ASSERT_EQ(a.late_dropped, b.late_dropped);
  ASSERT_EQ(a.non_finite_dropped, b.non_finite_dropped);
  ASSERT_EQ(a.stationary_dropped, b.stationary_dropped);
  ASSERT_EQ(a.sensor_faulty_dropped, b.sensor_faulty_dropped);
  ASSERT_EQ(a.stuck_run_records, b.stuck_run_records);
  ASSERT_EQ(a.stuck_run_dropped, b.stuck_run_dropped);
  ASSERT_EQ(a.non_finite_features_dropped, b.non_finite_features_dropped);
  ASSERT_EQ(a.non_finite_scores_dropped, b.non_finite_scores_dropped);
  ASSERT_EQ(a.quarantine_events, b.quarantine_events);
}

void ExpectRunsIdentical(const core::FleetRunResult& a,
                         const core::FleetRunResult& b) {
  ExpectAlarmsIdentical(a.alarms, b.alarms);
  ASSERT_EQ(a.channel_names, b.channel_names);
  ASSERT_EQ(a.persistence_window, b.persistence_window);
  ASSERT_EQ(a.persistence_min, b.persistence_min);

  ASSERT_EQ(a.scored_samples.size(), b.scored_samples.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t s = 0; s < a.scored_samples[v].size(); ++s) {
      ASSERT_EQ(a.scored_samples[v][s].timestamp, b.scored_samples[v][s].timestamp);
      ASSERT_EQ(a.scored_samples[v][s].calibration_index,
                b.scored_samples[v][s].calibration_index);
      ASSERT_EQ(a.scored_samples[v][s].scores, b.scored_samples[v][s].scores);
    }
  }

  ASSERT_EQ(a.calibrations.size(), b.calibrations.size());
  for (std::size_t v = 0; v < a.calibrations.size(); ++v) {
    ASSERT_EQ(a.calibrations[v].size(), b.calibrations[v].size());
    for (std::size_t c = 0; c < a.calibrations[v].size(); ++c) {
      ASSERT_EQ(a.calibrations[v][c].mean, b.calibrations[v][c].mean);
      ASSERT_EQ(a.calibrations[v][c].stddev, b.calibrations[v][c].stddev);
      ASSERT_EQ(a.calibrations[v][c].median, b.calibrations[v][c].median);
      ASSERT_EQ(a.calibrations[v][c].mad, b.calibrations[v][c].mad);
      ASSERT_EQ(a.calibrations[v][c].max, b.calibrations[v][c].max);
    }
  }

  ASSERT_EQ(a.quality.size(), b.quality.size());
  for (std::size_t v = 0; v < a.quality.size(); ++v)
    ExpectQualityIdentical(a.quality[v], b.quality[v]);
}

TEST(StreamingDeterminismTest, CleanStreamReplayIsIdenticalAtAnyThreadCount) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  const auto serial = service::RunStream(stream, ids, ServiceConfigWith(1));
  const auto parallel = service::RunStream(stream, ids, ServiceConfigWith(4));
  ExpectRunsIdentical(serial, parallel);

  // And both match the serial batch runner per vehicle: streaming is a
  // serving-layer change, not a semantic one.
  const auto batch = core::RunFleet(fleet, FastMonitorConfig(),
                                    runtime::RuntimeConfig{1});
  ASSERT_EQ(serial.alarms.size(), batch.alarms.size());
  ASSERT_EQ(serial.scored_samples.size(), batch.scored_samples.size());
  for (std::size_t v = 0; v < batch.scored_samples.size(); ++v) {
    ASSERT_EQ(serial.scored_samples[v].size(), batch.scored_samples[v].size());
    for (std::size_t s = 0; s < batch.scored_samples[v].size(); ++s)
      ASSERT_EQ(serial.scored_samples[v][s].scores,
                batch.scored_samples[v][s].scores);
    ExpectQualityIdentical(serial.quality[v], batch.quality[v]);
  }
}

TEST(StreamingDeterminismTest, CorruptedStreamReplayIsIdenticalAtAnyThreadCount) {
  // The hard case: a corrupted feed delivers frames out of order, twice, or
  // skewed, so the monitors' reorder buffers and quarantine logic are all
  // active. The replay-equals-live invariant must still hold bit-for-bit.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const telemetry::CorruptionModel model(telemetry::CorruptionConfig::Moderate());
  const auto stream = telemetry::InterleaveFleetStream(fleet, model);
  const auto ids = service::VehicleIdsOf(fleet);

  const auto serial = service::RunStream(stream, ids, ServiceConfigWith(1));
  const auto parallel = service::RunStream(stream, ids, ServiceConfigWith(4));
  ExpectRunsIdentical(serial, parallel);

  // Live-then-replay at the same thread count: a second pass over the
  // recorded stream reproduces the first run exactly.
  const auto replay = service::RunStream(stream, ids, ServiceConfigWith(4));
  ExpectRunsIdentical(parallel, replay);

  // The corruption actually bit: the guard saw transport damage.
  std::size_t dropped = 0;
  for (const auto& quality : serial.quality) dropped += quality.RecordsDropped();
  ASSERT_GT(dropped, 0u);
}

TEST(StreamingDeterminismTest, StreamReplayerItselfIsDeterministic) {
  // The replayer (interleave + corruption) is pure: same fleet, same
  // config, same stream - the precondition for recording a live feed and
  // replaying it later.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const telemetry::CorruptionModel model(telemetry::CorruptionConfig::Moderate());
  telemetry::CorruptionManifest manifest_a;
  telemetry::CorruptionManifest manifest_b;
  const auto a = telemetry::InterleaveFleetStream(fleet, model, &manifest_a);
  const auto b = telemetry::InterleaveFleetStream(fleet, model, &manifest_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].kind, b[i].kind);
    ASSERT_EQ(a[i].vehicle_id(), b[i].vehicle_id());
    ASSERT_EQ(a[i].timestamp(), b[i].timestamp());
  }
  ASSERT_EQ(manifest_a.entries.size(), manifest_b.entries.size());
}

}  // namespace
}  // namespace navarchos
