#include "report/svg.h"

#include <string>

#include <gtest/gtest.h>

namespace navarchos::report {
namespace {

BarChart SampleBarChart() {
  BarChart chart;
  chart.title = "demo";
  chart.groups = {"a", "b"};
  BarSeries one{"one", {0.5, 0.8}, "#111111"};
  BarSeries two{"two", {0.2, 0.9}, "#222222"};
  chart.series = {one, two};
  return chart;
}

TEST(SvgBarChartTest, ContainsStructureAndLabels) {
  const std::string svg = RenderBarChart(SampleBarChart());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("demo"), std::string::npos);
  EXPECT_NE(svg.find("one"), std::string::npos);
  EXPECT_NE(svg.find("#222222"), std::string::npos);
  // 2 groups x 2 series = 4 data rects plus the background.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_GE(rects, 5u);
}

TEST(SvgBarChartTest, EscapesMarkup) {
  BarChart chart = SampleBarChart();
  chart.title = "a<b & c>";
  const std::string svg = RenderBarChart(chart);
  EXPECT_EQ(svg.find("a<b"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b &amp; c&gt;"), std::string::npos);
}

TEST(SvgBarChartTest, ClampsOverflowingValues) {
  BarChart chart = SampleBarChart();
  chart.series[0].values = {5.0, -1.0};  // beyond [0, y_max]
  const std::string svg = RenderBarChart(chart);  // must not produce negatives
  EXPECT_EQ(svg.find("height=\"-"), std::string::npos);
}

TEST(SvgTraceChartTest, RendersSeriesMarkersAndDashes) {
  TraceChart chart;
  chart.title = "trace";
  chart.x_label = "day";
  TraceSeries series{"score", {0, 1, 2}, {0.1, 0.5, 0.2}, "#333333", false};
  TraceSeries threshold{"thr", {0, 1, 2}, {0.4, 0.4, 0.4}, "#333333", true};
  chart.series = {series, threshold};
  chart.markers = {{1.0, "R", "#cc3311"}};
  const std::string svg = RenderTraceChart(chart);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
  EXPECT_NE(svg.find(">R<"), std::string::npos);
  EXPECT_NE(svg.find("day"), std::string::npos);
}

TEST(SvgTraceChartTest, HandlesDegenerateRanges) {
  TraceChart chart;
  chart.title = "flat";
  TraceSeries series{"flat", {3.0, 3.0}, {0.0, 0.0}, "#333333", false};
  chart.series = {series};
  const std::string svg = RenderTraceChart(chart);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(SvgWriteTest, RoundTripsToDisk) {
  const std::string path = std::string(::testing::TempDir()) + "/chart.svg";
  ASSERT_TRUE(WriteSvg(path, RenderBarChart(SampleBarChart())).ok());
  EXPECT_FALSE(WriteSvg("/nonexistent/dir/x.svg", "<svg/>").ok());
}

TEST(ColourCycleTest, NonEmptyHexColours) {
  for (const std::string& colour : ColourCycle()) {
    ASSERT_FALSE(colour.empty());
    EXPECT_EQ(colour[0], '#');
    EXPECT_EQ(colour.size(), 7u);
  }
}

}  // namespace
}  // namespace navarchos::report
