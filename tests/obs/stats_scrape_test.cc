// The wire face of observability: the STATS message round-trips through
// the NWP1 framing (and every single-byte corruption of a framed response
// is rejected), a scrape over loopback TCP returns exactly the snapshot
// the service holds in process, and on a 4-shard fleet the per-shard wire
// scrapes merge to the in-process fleet aggregate - the scrape itself
// never shows up in what it measures.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "shard/shard_group.h"
#include "shard/shard_server.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos::net {
namespace {

telemetry::SensorFrame RecordFrame(std::int32_t vehicle, std::int64_t minute) {
  telemetry::Record record;
  record.vehicle_id = vehicle;
  record.timestamp = minute;
  record.pids.fill(static_cast<double>(minute) * 0.5);
  return telemetry::SensorFrame::OfRecord(record);
}

service::ServiceConfig TinyServiceConfig() {
  service::ServiceConfig config;
  config.runtime = runtime::RuntimeConfig{1};
  config.queue_capacity = 8;
  return config;
}

/// Encodes both snapshots and compares the exact bytes - stricter than the
/// text rendering, which could round or elide.
void ExpectSnapshotsIdentical(const obs::StatsSnapshot& a,
                              const obs::StatsSnapshot& b) {
  persist::Encoder ea;
  obs::EncodeStatsSnapshot(ea, a);
  persist::Encoder eb;
  obs::EncodeStatsSnapshot(eb, b);
  EXPECT_EQ(ea.bytes(), eb.bytes());
  EXPECT_EQ(obs::FormatSnapshot(a), obs::FormatSnapshot(b));
}

obs::StatsSnapshot SampleSnapshot() {
  obs::MetricsRegistry registry;
  registry.counter("service.frames_submitted")->Add(42);
  registry.gauge("service.lane.v7.depth_peak")->Set(5);
  registry.histogram("service.admission_to_release_us")->Record(300);
  registry.histogram("service.admission_to_release_us")->Record(90000);
  return registry.Snapshot();
}

TEST(StatsWireTest, RequestIsAnEmptyStatsFrame) {
  const std::vector<std::uint8_t> request = EncodeStatsRequest();
  MessageReader reader;
  reader.Append(request.data(), request.size());
  WireMessage message;
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kMessage);
  EXPECT_EQ(message.type, MessageType::kStats);
  EXPECT_TRUE(message.payload.empty());

  // An empty payload is a request, never a decodable response.
  StatsMessage out;
  EXPECT_FALSE(DecodeStatsResponse(message.payload, &out).ok());
}

TEST(StatsWireTest, UnshardedResponseRoundTripsWithoutTail) {
  StatsMessage response;
  response.snapshot = SampleSnapshot();
  const std::vector<std::uint8_t> frame = EncodeStatsResponse(response);

  MessageReader reader;
  reader.Append(frame.data(), frame.size());
  WireMessage message;
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kMessage);
  ASSERT_EQ(message.type, MessageType::kStats);

  StatsMessage decoded;
  ASSERT_TRUE(DecodeStatsResponse(message.payload, &decoded).ok());
  ExpectSnapshotsIdentical(decoded.snapshot, response.snapshot);
  EXPECT_TRUE(decoded.shard_map.unsharded());
  EXPECT_EQ(decoded.shard_id, 0u);
}

TEST(StatsWireTest, ShardedResponseCarriesTheIdentityTail) {
  StatsMessage response;
  response.snapshot = SampleSnapshot();
  response.shard_id = 2;
  response.shard_map.shard_count = 4;
  response.shard_map.hash_seed = 0xfeedfacecafebeefull;
  response.shard_map.ports = {9001, 9002, 9003, 9004};
  const std::vector<std::uint8_t> frame = EncodeStatsResponse(response);

  MessageReader reader;
  reader.Append(frame.data(), frame.size());
  WireMessage message;
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kMessage);

  StatsMessage decoded;
  ASSERT_TRUE(DecodeStatsResponse(message.payload, &decoded).ok());
  ExpectSnapshotsIdentical(decoded.snapshot, response.snapshot);
  EXPECT_EQ(decoded.shard_id, 2u);
  EXPECT_EQ(decoded.shard_map.shard_count, 4u);
  EXPECT_EQ(decoded.shard_map.hash_seed, 0xfeedfacecafebeefull);
  EXPECT_EQ(decoded.shard_map.ports, response.shard_map.ports);
}

TEST(StatsWireTest, OutOfRangeShardIdIsRejected) {
  // Hand-build a payload whose tail claims shard 5 of 2.
  persist::Encoder encoder;
  obs::EncodeStatsSnapshot(encoder, SampleSnapshot());
  encoder.PutU32(5);  // shard_id
  encoder.PutU32(2);  // shard_count
  encoder.PutU64(1);  // hash_seed
  encoder.PutU32(9001);
  encoder.PutU32(9002);
  StatsMessage out;
  const util::Status status = DecodeStatsResponse(encoder.bytes(), &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shard id"), std::string::npos);
}

TEST(StatsWireTest, EveryByteFlipOfAFramedResponseIsRejected) {
  // Same two-mask corruption sweep as the persist and wire suites: no
  // single-byte corruption of a framed STATS response may reassemble.
  StatsMessage response;
  response.snapshot = SampleSnapshot();
  response.shard_id = 1;
  response.shard_map.shard_count = 2;
  response.shard_map.hash_seed = 7;
  response.shard_map.ports = {9001, 9002};
  const std::vector<std::uint8_t> original = EncodeStatsResponse(response);

  for (std::size_t i = 0; i < original.size(); ++i) {
    for (const std::uint8_t mask : {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
      std::vector<std::uint8_t> corrupt = original;
      corrupt[i] ^= mask;
      MessageReader reader;
      reader.Append(corrupt.data(), corrupt.size());
      WireMessage message;
      EXPECT_NE(reader.Next(&message), MessageReader::Result::kMessage)
          << "byte " << i << " mask " << int(mask)
          << " slipped through frame verification";
    }
  }
}

TEST(StatsScrapeTest, WireScrapeEqualsInProcessSnapshot) {
  // Stream a session over loopback, drain, snapshot in process, then
  // scrape over the wire. The scrape dials its own connection and asks
  // for STATS - and because scrape-only connections are counted lazily,
  // the stats it serves are the stats the service held before the scrape.
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  ClientConfig config;
  config.port = server.port();
  config.session_id = "scrape-session";
  IngestClient client(config);
  ASSERT_TRUE(client.Connect({1, 2}).ok());
  for (int minute = 0; minute < 50; ++minute) {
    ASSERT_TRUE(client.Send(RecordFrame(1, minute)).ok());
    ASSERT_TRUE(client.Send(RecordFrame(2, minute)).ok());
  }
  ASSERT_TRUE(client.Finish().ok());
  ASSERT_TRUE(server.WaitForFinishedSessions(1, 30000));
  svc.Drain();

  const obs::StatsSnapshot reference = svc.SnapshotStats();
  EXPECT_EQ(reference.CounterValue("service.frames_submitted"), 100u);
  EXPECT_EQ(reference.CounterValue("server.frames_received"), 100u);
  EXPECT_EQ(reference.CounterValue("server.sessions_started"), 1u);
  EXPECT_EQ(reference.CounterValue("server.stats_served"), 0u);
  EXPECT_GT(reference.CounterValue("server.session_bytes_in"), 0u);
  EXPECT_GT(reference.CounterValue("server.session_bytes_out"), 0u);

  IngestClient scraper(config);  // fresh client: ephemeral HELLO-less dial
  StatsMessage scraped;
  ASSERT_TRUE(scraper.QueryStats(&scraped).ok());
  ExpectSnapshotsIdentical(scraped.snapshot, reference);
  EXPECT_TRUE(scraped.shard_map.unsharded());

  // The scrape is visible only after it answered: a second scrape sees
  // exactly one STATS served and still no scrape-connection accepted.
  StatsMessage second;
  ASSERT_TRUE(scraper.QueryStats(&second).ok());
  EXPECT_EQ(second.snapshot.CounterValue("server.stats_served"), 1u);
  EXPECT_EQ(second.snapshot.CounterValue("server.connections_accepted"),
            reference.CounterValue("server.connections_accepted"));
  EXPECT_EQ(second.snapshot.CounterValue("server.session_bytes_in"),
            reference.CounterValue("server.session_bytes_in"));
  EXPECT_EQ(second.snapshot.CounterValue("server.session_bytes_out"),
            reference.CounterValue("server.session_bytes_out"));

  server.Stop();
  (void)svc.TakeResult();
}

TEST(StatsScrapeTest, LiveConnectionScrapesBetweenBatches) {
  // The stop-and-wait discipline leaves the stream quiet between batches;
  // a STATS request on the live ingest connection must answer in place
  // without disturbing the session.
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  ClientConfig config;
  config.port = server.port();
  config.session_id = "live-scrape";
  IngestClient client(config);
  ASSERT_TRUE(client.Connect({3}).ok());
  for (int minute = 0; minute < 10; ++minute)
    ASSERT_TRUE(client.Send(RecordFrame(3, minute)).ok());
  ASSERT_TRUE(client.Flush().ok());

  StatsMessage mid;
  ASSERT_TRUE(client.QueryStats(&mid).ok());
  EXPECT_EQ(mid.snapshot.CounterValue("server.frames_received"), 10u);

  // The session continues unharmed after the scrape.
  for (int minute = 10; minute < 20; ++minute)
    ASSERT_TRUE(client.Send(RecordFrame(3, minute)).ok());
  ASSERT_TRUE(client.Finish().ok());
  ASSERT_TRUE(server.WaitForFinishedSessions(1, 30000));
  server.Stop();
  svc.Drain();
  EXPECT_EQ(svc.stats().frames_submitted, 20u);
  (void)svc.TakeResult();
}

TEST(StatsScrapeTest, FourShardWireScrapesMergeToTheFleetAggregate) {
  // The CI obs-scrape job in miniature: a 4-shard fleet, in-process fleet
  // snapshot after drain, then a wire scrape of every shard; the merged
  // scrape must equal the in-process aggregate byte for byte.
  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::TestScale();
  fleet_config.days = 10;
  const auto fleet = telemetry::GenerateFleet(fleet_config);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  shard::ShardGroupConfig group_config;
  group_config.service.runtime = runtime::RuntimeConfig{2};
  group_config.service.queue_capacity = 32;
  group_config.shard_count = 4;
  shard::ShardGroup group(group_config);
  ServerConfig server_template;
  shard::ShardServer server(&group, server_template);
  ASSERT_TRUE(server.Start().ok());

  for (const auto id : ids) group.RegisterVehicle(id);
  for (const auto& frame : stream) group.Submit(frame);
  group.Drain();

  const obs::StatsSnapshot reference = group.FleetSnapshot();

  obs::StatsSnapshot merged;
  for (int shard = 0; shard < 4; ++shard) {
    ClientConfig config;
    config.port = server.port(shard);
    config.session_id = "scrape-shard-" + std::to_string(shard);
    IngestClient scraper(config);
    StatsMessage response;
    ASSERT_TRUE(scraper.QueryStats(&response).ok());
    EXPECT_EQ(response.shard_id, static_cast<std::uint32_t>(shard));
    EXPECT_EQ(response.shard_map.shard_count, 4u);
    ASSERT_EQ(response.shard_map.ports.size(), 4u);
    EXPECT_EQ(response.shard_map.ports[static_cast<std::size_t>(shard)],
              server.port(shard));
    obs::MergeSnapshot(&merged, response.snapshot);
  }
  ExpectSnapshotsIdentical(merged, reference);

  server.Stop();
  (void)group.TakeResult();
}

}  // namespace
}  // namespace navarchos::net
