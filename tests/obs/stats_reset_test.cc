// Reset semantics of the migrated stats: ServiceStats and ServerStats are
// views over the metrics registry, survive Drain() and session teardown,
// and are zeroed only by constructing a new service - plus exact-count
// assertions for the defence counters under seeded scenarios (two slow
// consumers, one idle half-open peer, a known ensemble retrain schedule
// with an injected fit failure).
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos::net {
namespace {

telemetry::SensorFrame RecordFrame(std::int32_t vehicle, std::int64_t minute) {
  telemetry::Record record;
  record.vehicle_id = vehicle;
  record.timestamp = minute;
  record.pids.fill(static_cast<double>(minute) * 0.5);
  return telemetry::SensorFrame::OfRecord(record);
}

service::ServiceConfig TinyServiceConfig(
    service::BackpressurePolicy policy = service::BackpressurePolicy::kBlock) {
  service::ServiceConfig config;
  config.runtime = runtime::RuntimeConfig{1};
  config.queue_capacity = 8;
  config.backpressure = policy;
  return config;
}

/// Raw socket client for the slow-consumer and idle scenarios (the real
/// IngestClient is too well-behaved to produce them).
class RawClient {
 public:
  bool Connect(std::uint16_t port) {
    return ConnectTcp("127.0.0.1", port, &socket_).ok();
  }

  bool SendBytes(const std::vector<std::uint8_t>& bytes) {
    return socket_.SendAll(bytes.data(), bytes.size()).ok();
  }

  bool ReadMessage(WireMessage* out) {
    std::vector<std::uint8_t> buffer(4096);
    while (true) {
      const MessageReader::Result result = reader_.Next(out);
      if (result == MessageReader::Result::kMessage) return true;
      if (result == MessageReader::Result::kError) return false;
      std::size_t received = 0;
      std::string error;
      const Socket::RecvResult recv =
          socket_.Recv(buffer.data(), buffer.size(), &received, &error);
      if (recv != Socket::RecvResult::kData) return false;
      reader_.Append(buffer.data(), received);
    }
  }

  std::int64_t Hello(const std::string& session_id,
                     const std::vector<std::int32_t>& ids) {
    HelloMessage hello;
    hello.session_id = session_id;
    hello.vehicle_ids = ids;
    if (!SendBytes(EncodeHello(hello))) return -1;
    WireMessage message;
    if (!ReadMessage(&message) || message.type != MessageType::kWelcome)
      return -1;
    WelcomeMessage welcome;
    if (!DecodeWelcome(message.payload, &welcome).ok()) return -1;
    return static_cast<std::int64_t>(welcome.next_seq);
  }

  void Close() { socket_.Close(); }

 private:
  Socket socket_;
  MessageReader reader_;
};

TEST(StatsResetTest, ServiceStatsSurviveDrainAndAreZeroedOnlyByConstruction) {
  service::FleetService svc(TinyServiceConfig());
  svc.RegisterVehicle(1);
  for (int minute = 0; minute < 25; ++minute)
    svc.Submit(RecordFrame(1, minute));

  svc.Drain();
  const service::ServiceStats after_drain = svc.stats();
  EXPECT_EQ(after_drain.frames_submitted, 25u);
  EXPECT_EQ(after_drain.frames_accepted, 25u);
  EXPECT_EQ(after_drain.frames_processed, 25u);

  // Drain is not a reset, and neither is taking the result: the counters
  // describe the service's lifetime.
  (void)svc.TakeResult();
  const service::ServiceStats after_take = svc.stats();
  EXPECT_EQ(after_take.frames_submitted, after_drain.frames_submitted);
  EXPECT_EQ(after_take.frames_processed, after_drain.frames_processed);
  EXPECT_EQ(after_take.alarms_emitted, after_drain.alarms_emitted);

  // The registry snapshot and the struct view agree: one source of truth.
  const obs::StatsSnapshot snapshot = svc.SnapshotStats();
  EXPECT_EQ(snapshot.CounterValue("service.frames_submitted"),
            after_drain.frames_submitted);
  EXPECT_EQ(snapshot.CounterValue("service.frames_processed"),
            after_drain.frames_processed);
  EXPECT_EQ(snapshot.CounterValue("service.alarms_emitted"),
            after_drain.alarms_emitted);

  // Only construction zeroes.
  service::FleetService fresh(TinyServiceConfig());
  EXPECT_EQ(fresh.stats().frames_submitted, 0u);
  EXPECT_EQ(fresh.SnapshotStats().CounterValue("service.frames_submitted"),
            0u);
  fresh.Drain();
  (void)fresh.TakeResult();
}

TEST(StatsResetTest, ServerStatsSurviveSessionEndAndServiceDrain) {
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  ClientConfig config;
  config.port = server.port();
  config.session_id = "reset-semantics";
  IngestClient client(config);
  ASSERT_TRUE(client.Connect({1}).ok());
  for (int minute = 0; minute < 10; ++minute)
    ASSERT_TRUE(client.Send(RecordFrame(1, minute)).ok());
  ASSERT_TRUE(client.Finish().ok());
  ASSERT_TRUE(server.WaitForFinishedSessions(1, 30000));

  const ServerStats live = server.stats();
  EXPECT_EQ(live.sessions_started, 1u);
  EXPECT_EQ(live.frames_received, 10u);
  EXPECT_EQ(live.connections_accepted, 1u);

  // The session is gone and the service drains; the counters stay - they
  // are lifetime totals, not per-session state.
  svc.Drain();
  const ServerStats after_drain = server.stats();
  EXPECT_EQ(after_drain.sessions_started, live.sessions_started);
  EXPECT_EQ(after_drain.frames_received, live.frames_received);
  EXPECT_EQ(after_drain.session_bytes_in, live.session_bytes_in);
  EXPECT_EQ(after_drain.session_bytes_out, live.session_bytes_out);
  server.Stop();
  EXPECT_EQ(server.stats().frames_received, live.frames_received);
  (void)svc.TakeResult();

  // A new server over a new service starts from zero.
  service::FleetService fresh_svc(TinyServiceConfig());
  IngestServer fresh(&fresh_svc, ServerConfig{});
  EXPECT_EQ(fresh.stats().connections_accepted, 0u);
  EXPECT_EQ(fresh.stats().frames_received, 0u);
  fresh_svc.Drain();
  (void)fresh_svc.TakeResult();
}

TEST(StatsResetTest, TwoSlowConsumersAndOneIdlePeerCountExactly) {
  // The seeded defence scenario: exactly two clients that send but never
  // read (disconnected at the outbound bound), then exactly one peer that
  // goes silent after HELLO (reaped at the idle deadline). The counters
  // must report exactly 2 and exactly 1 - not "at least".
  service::FleetService svc(
      TinyServiceConfig(service::BackpressurePolicy::kReject));
  ServerConfig config;
  config.max_outbound_bytes = 2048;
  config.idle_timeout_ms = 500;
  IngestServer server(&svc, config);
  ASSERT_TRUE(server.Start().ok());

  for (int consumer = 0; consumer < 2; ++consumer) {
    RawClient raw;
    ASSERT_TRUE(raw.Connect(server.port()));
    const std::int32_t vehicle = 5 + consumer;
    ASSERT_EQ(raw.Hello("slow-" + std::to_string(consumer), {vehicle}), 0);
    std::uint64_t seq = 0;
    bool disconnected = false;
    for (int batch = 0; batch < 20000 && !disconnected; ++batch) {
      FramesMessage frames;
      frames.first_seq = seq;
      for (int i = 0; i < 64; ++i)
        frames.frames.push_back(
            RecordFrame(vehicle, static_cast<std::int64_t>(seq + i)));
      seq += 64;
      if (!raw.SendBytes(EncodeFrames(frames))) disconnected = true;
    }
    ASSERT_TRUE(disconnected) << "consumer " << consumer;
    raw.Close();
  }

  RawClient idle;
  ASSERT_TRUE(idle.Connect(server.port()));
  ASSERT_EQ(idle.Hello("idle-peer", {9}), 0);
  bool reaped = false;
  for (int i = 0; i < 1000 && !reaped; ++i) {
    reaped = server.stats().idle_reaps >= 1;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(reaped);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.slow_consumer_disconnects, 2u);
  EXPECT_EQ(stats.idle_reaps, 1u);
  // The wire snapshot reports the same exact counts (one source of truth).
  const obs::StatsSnapshot snapshot = svc.SnapshotStats();
  EXPECT_EQ(snapshot.CounterValue("server.slow_consumer_disconnects"), 2u);
  EXPECT_EQ(snapshot.CounterValue("server.idle_reaps"), 1u);

  server.Stop();
  svc.Drain();
  (void)svc.TakeResult();
}

TEST(StatsResetTest, EnsembleRetrainCountsAreExactAndThreadCountInvariant) {
  // A seeded stream over an ensemble-enabled service: the registry's
  // derived ensemble counters must equal the per-lane authoritative sums
  // exactly, reproduce bit-identically at threads=1 and threads=4, and
  // account for the injected fit failure.
  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::TestScale();
  fleet_config.days = 30;
  const auto fleet = telemetry::GenerateFleet(fleet_config);
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  std::uint64_t started_at[2] = {0, 0};
  std::uint64_t completed_at[2] = {0, 0};
  std::uint64_t failed_at[2] = {0, 0};
  const int thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    service::ServiceConfig config;
    config.monitor.transform_options.window = 60;
    config.monitor.transform_options.stride = 10;
    config.monitor.profile_minutes = 400.0;
    config.monitor.threshold.burn_in_minutes = 120.0;
    config.monitor.threshold.persistence_minutes = 60.0;
    config.monitor.ensemble.enabled = true;
    config.monitor.ensemble.k = 3;
    config.monitor.ensemble.m = 2;
    config.monitor.ensemble.retrain_every = 24;
    config.monitor.ensemble.activation_lag = 8;
    config.monitor.ensemble.inject_fit_failures = {2};
    config.runtime = runtime::RuntimeConfig{thread_counts[run]};
    config.queue_capacity = 32;

    service::FleetService service(config);
    for (const std::int32_t id : ids) service.RegisterVehicle(id);
    for (const auto& frame : stream) service.Submit(frame);
    service.Drain();

    const obs::StatsSnapshot snapshot = service.SnapshotStats();
    started_at[run] = snapshot.CounterValue("ensemble.retrains_started");
    completed_at[run] = snapshot.CounterValue("ensemble.retrains_completed");
    failed_at[run] = snapshot.CounterValue("ensemble.retrains_failed");

    // The registry mirrors equal the authoritative per-lane sums exactly.
    const auto result = service.TakeResult();
    std::uint64_t started = 0, completed = 0, failed = 0;
    for (const auto& lane : result.ensemble_stats) {
      started += lane.retrains_started;
      completed += lane.retrains_completed;
      failed += lane.retrains_failed;
    }
    EXPECT_EQ(started_at[run], started);
    EXPECT_EQ(completed_at[run], completed);
    EXPECT_EQ(failed_at[run], failed);
  }

  // Retrain schedules are a pure function of the stream: thread count
  // changes nothing.
  EXPECT_EQ(started_at[0], started_at[1]);
  EXPECT_EQ(completed_at[0], completed_at[1]);
  EXPECT_EQ(failed_at[0], failed_at[1]);
  EXPECT_GT(started_at[0], 0u);
  // Ordinal 2 fails once per vehicle that reaches its second retrain.
  EXPECT_GT(failed_at[0], 0u);
}

}  // namespace
}  // namespace navarchos::net
