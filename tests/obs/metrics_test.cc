// The observability core: fixed power-of-two histogram buckets place
// values deterministically, per-shard snapshots merge in any order to the
// unsharded result, every bucket boundary round-trips through the snapshot
// codec, and no truncated input may crash the decoder or trigger an
// unbounded allocation (the persist robustness contract).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "persist/codec.h"

namespace navarchos::obs {
namespace {

/// Deterministic value stream (an LCG, so the tests need no seed plumbing).
class ValueStream {
 public:
  std::uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    // Spread across bucket magnitudes: shift by the top bits so small and
    // huge values both occur.
    return state_ >> (state_ % 64);
  }

 private:
  std::uint64_t state_ = 0x9e3779b97f4a7c15ull;
};

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  for (std::size_t b = 1; b < Histogram::kBucketCount; ++b) {
    const std::uint64_t lower = Histogram::BucketLowerBound(b);
    EXPECT_EQ(lower, std::uint64_t{1} << (b - 1));
    // The lower bound lands in its own bucket; one below lands one lower.
    EXPECT_EQ(Histogram::BucketOf(lower), b);
    EXPECT_EQ(Histogram::BucketOf(lower - 1), b - 1);
    // The top of the bucket still lands inside it.
    if (b + 1 < Histogram::kBucketCount)
      EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLowerBound(b + 1) - 1), b);
  }
  // The last bucket holds everything up to the u64 maximum.
  EXPECT_EQ(Histogram::BucketOf(~std::uint64_t{0}),
            Histogram::kBucketCount - 1);
}

TEST(HistogramTest, RecordKeepsExactCountAndSum) {
  Histogram histogram;
  std::uint64_t expected_sum = 0;
  ValueStream values;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t value = values.Next() % 100000;
    histogram.Record(value);
    expected_sum += value;
  }
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_EQ(histogram.sum(), expected_sum);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < Histogram::kBucketCount; ++b)
    bucket_total += histogram.bucket(b);
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(CounterGaugeTest, CounterAccumulatesAndGaugeRatchets) {
  Counter counter;
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Set(7);  // the checkpoint-restore path
  EXPECT_EQ(counter.value(), 7u);

  Gauge gauge;
  gauge.UpdateMax(10);
  gauge.UpdateMax(3);  // smaller: no effect, it is a high-water mark
  EXPECT_EQ(gauge.value(), 10u);
  gauge.UpdateMax(25);
  EXPECT_EQ(gauge.value(), 25u);
  gauge.Set(1);  // Set overwrites in either direction
  EXPECT_EQ(gauge.value(), 1u);
}

TEST(RegistryTest, PointersAreStableAndSnapshotsAreNameSorted) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("z.last");
  EXPECT_EQ(registry.counter("z.last"), counter);  // create-on-first-use once
  registry.counter("a.first")->Add(1);
  registry.gauge("m.middle")->Set(5);
  registry.histogram("h.lat")->Record(3);
  counter->Add(2);

  const StatsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[1].name, "z.last");
  EXPECT_EQ(snapshot.CounterValue("z.last"), 2u);
  EXPECT_EQ(snapshot.CounterValue("absent"), 0u);
  EXPECT_EQ(snapshot.GaugeValue("m.middle"), 5u);
  ASSERT_NE(snapshot.FindHistogram("h.lat"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("h.lat")->count, 1u);
  EXPECT_EQ(snapshot.FindHistogram("absent"), nullptr);
}

TEST(MergeTest, AnyMergeOrderEqualsTheUnshardedRun) {
  // Partition one value stream across 3 "shards"; merging the per-shard
  // snapshots in every permutation must equal the unsharded histogram and
  // counters exactly - plain integer addition, no order sensitivity.
  constexpr int kShards = 3;
  MetricsRegistry unsharded;
  MetricsRegistry shards[kShards];
  ValueStream values;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t value = values.Next();
    unsharded.histogram("lat")->Record(value);
    unsharded.counter("events")->Increment();
    MetricsRegistry& shard = shards[i % kShards];
    shard.histogram("lat")->Record(value);
    shard.counter("events")->Increment();
  }
  // Gauges take the max across shards; give each shard a distinct peak.
  unsharded.gauge("depth")->Set(30);
  shards[0].gauge("depth")->Set(10);
  shards[1].gauge("depth")->Set(30);
  shards[2].gauge("depth")->Set(20);

  const std::string expected = FormatSnapshot(unsharded.Snapshot());
  std::vector<int> order = {0, 1, 2};
  do {
    StatsSnapshot merged;
    for (const int shard : order)
      MergeSnapshot(&merged, shards[shard].Snapshot());
    EXPECT_EQ(FormatSnapshot(merged), expected)
        << "merge order " << order[0] << order[1] << order[2];
    // The text form could theoretically hide bucket differences; compare
    // the raw cells too.
    const HistogramSample* merged_lat = merged.FindHistogram("lat");
    const StatsSnapshot reference = unsharded.Snapshot();
    ASSERT_NE(merged_lat, nullptr);
    EXPECT_EQ(merged_lat->buckets, reference.FindHistogram("lat")->buckets);
    EXPECT_EQ(merged_lat->sum, reference.FindHistogram("lat")->sum);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(MergeTest, NamesUnionAndDisjointMetricsSurvive) {
  MetricsRegistry left;
  MetricsRegistry right;
  left.counter("only.left")->Add(3);
  right.counter("only.right")->Add(4);
  left.counter("both")->Add(10);
  right.counter("both")->Add(5);

  StatsSnapshot merged = left.Snapshot();
  MergeSnapshot(&merged, right.Snapshot());
  EXPECT_EQ(merged.CounterValue("only.left"), 3u);
  EXPECT_EQ(merged.CounterValue("only.right"), 4u);
  EXPECT_EQ(merged.CounterValue("both"), 15u);
  // Still name-sorted after the union (the codec requires it).
  for (std::size_t i = 1; i < merged.counters.size(); ++i)
    EXPECT_LT(merged.counters[i - 1].name, merged.counters[i].name);
}

TEST(QuantileTest, EstimatesLandOnBucketUpperBounds) {
  HistogramSample sample;
  EXPECT_EQ(sample.ValueAtQuantile(0.5), 0u);  // empty histogram

  Histogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(10);   // bucket [8, 16)
  histogram.Record(100000);                            // one outlier
  MetricsRegistry registry;
  Histogram* registered = registry.histogram("h");
  for (int i = 0; i < 99; ++i) registered->Record(10);
  registered->Record(100000);
  const StatsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* h = snapshot.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  // p50 lands in the [8, 16) bucket: upper bound 15. p99 still does; only
  // the very top rank reaches the outlier's bucket.
  EXPECT_EQ(h->ValueAtQuantile(0.5), 15u);
  EXPECT_EQ(h->ValueAtQuantile(0.99), 15u);
  EXPECT_GT(h->ValueAtQuantile(1.0), 65535u);
}

TEST(SnapshotCodecTest, EveryBucketBoundaryRoundTrips) {
  // Record every bucket's lower bound once: the decode must reproduce the
  // exact cell pattern - one count in every bucket - plus count and sum.
  MetricsRegistry registry;
  Histogram* histogram = registry.histogram("boundaries");
  for (std::size_t b = 0; b < Histogram::kBucketCount; ++b)
    histogram->Record(Histogram::BucketLowerBound(b));
  registry.counter("c")->Add(~std::uint64_t{0});  // extreme value survives
  registry.gauge("g")->Set(1234567890123456789ull);

  persist::Encoder encoder;
  EncodeStatsSnapshot(encoder, registry.Snapshot());
  persist::Decoder decoder(encoder.bytes());
  StatsSnapshot decoded;
  ASSERT_TRUE(DecodeStatsSnapshot(decoder, &decoded));
  EXPECT_TRUE(decoder.ok());
  EXPECT_EQ(decoder.remaining(), 0u);

  const HistogramSample* round = decoded.FindHistogram("boundaries");
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->count, Histogram::kBucketCount);
  for (std::size_t b = 0; b < Histogram::kBucketCount; ++b)
    EXPECT_EQ(round->buckets[b], 1u) << "bucket " << b;
  EXPECT_EQ(decoded.CounterValue("c"), ~std::uint64_t{0});
  EXPECT_EQ(decoded.GaugeValue("g"), 1234567890123456789ull);
  EXPECT_EQ(FormatSnapshot(decoded), FormatSnapshot(registry.Snapshot()));
}

TEST(SnapshotCodecTest, EveryPrefixTruncationFailsCleanly) {
  MetricsRegistry registry;
  registry.counter("service.frames_submitted")->Add(100);
  registry.gauge("service.lane.v7.depth_peak")->Set(3);
  registry.histogram("service.admission_to_release_us")->Record(250);
  persist::Encoder encoder;
  EncodeStatsSnapshot(encoder, registry.Snapshot());
  const std::vector<std::uint8_t>& bytes = encoder.bytes();

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + len);
    persist::Decoder decoder(prefix);
    StatsSnapshot out;
    EXPECT_FALSE(DecodeStatsSnapshot(decoder, &out)) << "prefix " << len;
  }
}

TEST(SnapshotCodecTest, UnsortedNamesAreRejected) {
  // The codec refuses an out-of-order name list (a merged snapshot must
  // stay sorted; corruption that reorders entries may not slip through).
  StatsSnapshot snapshot;
  snapshot.counters.push_back({"b", 1});
  snapshot.counters.push_back({"a", 2});
  persist::Encoder encoder;
  EncodeStatsSnapshot(encoder, snapshot);
  persist::Decoder decoder(encoder.bytes());
  StatsSnapshot out;
  EXPECT_FALSE(DecodeStatsSnapshot(decoder, &out));
}

TEST(FormatTest, RenderingIsDeterministicAndDiffable) {
  MetricsRegistry registry;
  registry.counter("server.frames_received")->Add(12);
  registry.gauge("service.lane.v3.depth_peak")->Set(4);
  registry.histogram("pool.task_us")->Record(100);
  const std::string once = FormatSnapshot(registry.Snapshot());
  const std::string twice = FormatSnapshot(registry.Snapshot());
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("counter server.frames_received 12"), std::string::npos);
  EXPECT_NE(once.find("gauge service.lane.v3.depth_peak 4"),
            std::string::npos);
  EXPECT_NE(once.find("histogram pool.task_us"), std::string::npos);
}

}  // namespace
}  // namespace navarchos::obs
