// End-to-end integration tests: fleet simulation -> monitor -> evaluation.
#include "core/fleet_runner.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"

namespace navarchos::core {
namespace {

telemetry::FleetDataset SmallFleet() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 100;
  config.service_interval_days = 40.0;
  config.num_vehicles = 6;
  config.num_reporting = 5;
  config.num_recorded_failures = 2;
  config.num_hidden_failures = 0;
  config.fault_lead_days = 20;
  return telemetry::GenerateFleet(config);
}

MonitorConfig FastConfig() {
  MonitorConfig config;
  config.transform_options.window = 120;
  config.transform_options.stride = 15;
  config.profile_minutes = 600.0;
  config.threshold.burn_in_minutes = 240.0;
  return config;
}

TEST(FleetRunnerTest, ProducesTracesForEveryVehicle) {
  const auto fleet = SmallFleet();
  const auto result = RunFleet(fleet, FastConfig());
  EXPECT_EQ(result.scored_samples.size(), fleet.vehicles.size());
  EXPECT_EQ(result.calibrations.size(), fleet.vehicles.size());
  EXPECT_FALSE(result.channel_names.empty());
  std::size_t total_scored = 0;
  for (const auto& trace : result.scored_samples) total_scored += trace.size();
  EXPECT_GT(total_scored, 0u);
}

TEST(FleetRunnerTest, ScoredSamplesTimeOrderedPerVehicle) {
  const auto result = RunFleet(SmallFleet(), FastConfig());
  for (const auto& trace : result.scored_samples) {
    for (std::size_t i = 1; i < trace.size(); ++i)
      EXPECT_LT(trace[i - 1].timestamp, trace[i].timestamp);
  }
}

TEST(FleetRunnerTest, CalibrationIndicesValid) {
  const auto result = RunFleet(SmallFleet(), FastConfig());
  for (std::size_t v = 0; v < result.scored_samples.size(); ++v) {
    for (const auto& sample : result.scored_samples[v]) {
      ASSERT_GE(sample.calibration_index, 0);
      ASSERT_LT(sample.calibration_index,
                static_cast<int>(result.calibrations[v].size()));
    }
  }
}

TEST(FleetRunnerTest, ReplayAtConfigFactorMatchesLiveAlarms) {
  MonitorConfig config = FastConfig();
  config.threshold.factor = 6.0;
  const auto fleet = SmallFleet();
  const auto result = RunFleet(fleet, config);
  const auto replayed = result.AlarmsAt(6.0);
  ASSERT_EQ(replayed.size(), result.alarms.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].vehicle_id, result.alarms[i].vehicle_id);
    EXPECT_EQ(replayed[i].timestamp, result.alarms[i].timestamp);
    EXPECT_EQ(replayed[i].channel, result.alarms[i].channel);
    EXPECT_NEAR(replayed[i].threshold, result.alarms[i].threshold, 1e-9);
  }
}

TEST(FleetRunnerTest, HigherFactorNeverMoreAlarms) {
  const auto result = RunFleet(SmallFleet(), FastConfig());
  std::size_t previous = result.AlarmsAt(2.0).size();
  for (double factor : {4.0, 8.0, 16.0, 32.0}) {
    const std::size_t count = result.AlarmsAt(factor).size();
    EXPECT_LE(count, previous);
    previous = count;
  }
}

TEST(FleetRunnerTest, DeterministicAcrossRuns) {
  const auto fleet = SmallFleet();
  const auto a = RunFleet(fleet, FastConfig());
  const auto b = RunFleet(fleet, FastConfig());
  ASSERT_EQ(a.alarms.size(), b.alarms.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t i = 0; i < a.scored_samples[v].size(); i += 13) {
      EXPECT_EQ(a.scored_samples[v][i].scores, b.scored_samples[v][i].scores);
    }
  }
}

TEST(RunCellTest, ReturnsOneResultPerHorizon) {
  const auto fleet = SmallFleet();
  eval::SweepConfig sweep;
  sweep.factors = {4.0, 8.0};
  const auto cells = eval::RunCell(fleet, transform::TransformKind::kCorrelation,
                                   detect::DetectorKind::kClosestPair, sweep,
                                   FastConfig());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].ph_days, 15);
  EXPECT_EQ(cells[1].ph_days, 30);
  EXPECT_GT(cells[0].runtime_seconds, 0.0);
  // Both horizons evaluated over the same run, so runtime is shared.
  EXPECT_DOUBLE_EQ(cells[0].runtime_seconds, cells[1].runtime_seconds);
}

TEST(RunCellTest, BestThresholdComesFromSweepSet) {
  const auto fleet = SmallFleet();
  eval::SweepConfig sweep;
  sweep.factors = {5.0, 10.0};
  const auto cells = eval::RunCell(fleet, transform::TransformKind::kMeanAggregation,
                                   detect::DetectorKind::kClosestPair, sweep,
                                   FastConfig());
  for (const auto& cell : cells) {
    EXPECT_TRUE(cell.best_threshold == 5.0 || cell.best_threshold == 10.0);
  }
}

TEST(RunCellTest, GrandUsesConstantSweep) {
  const auto fleet = SmallFleet();
  eval::SweepConfig sweep;
  sweep.constants = {0.8, 0.99};
  const auto cells = eval::RunCell(fleet, transform::TransformKind::kCorrelation,
                                   detect::DetectorKind::kGrand, sweep, FastConfig());
  for (const auto& cell : cells)
    EXPECT_TRUE(cell.best_threshold == 0.8 || cell.best_threshold == 0.99);
}

TEST(PaperGridTest, TransformAndDetectorListsMatchPaper) {
  EXPECT_EQ(eval::PaperTransforms().size(), 4u);
  EXPECT_EQ(eval::PaperDetectors().size(), 4u);
  EXPECT_EQ(eval::PaperTransforms()[3], transform::TransformKind::kCorrelation);
  EXPECT_EQ(eval::PaperDetectors()[1], detect::DetectorKind::kClosestPair);
}

}  // namespace
}  // namespace navarchos::core
