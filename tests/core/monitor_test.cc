#include "core/monitor.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace navarchos::core {
namespace {

using telemetry::EventType;
using telemetry::FleetEvent;
using telemetry::Record;

/// Builds a usable (moving, in-range) record with controllable couplings.
Record MakeRecord(telemetry::Minute t, util::Rng& rng, double coupling_break = 0.0) {
  Record record;
  record.timestamp = t;
  const double speed = 40.0 + 25.0 * rng.Uniform();
  const double rpm = speed * 35.0 * (1.0 + 0.02 * rng.Gaussian());
  const double map = 30.0 + 0.4 * speed + rng.Gaussian(0.0, 1.0);
  // MAF follows rpm*map unless the coupling is broken.
  double maf = rpm * map / 8000.0 * (1.0 + 0.02 * rng.Gaussian());
  maf += coupling_break * (rng.Uniform() - 0.5) * 20.0;
  record.pids = {rpm, speed, 90.0 + rng.Gaussian(0.0, 0.5),
                 25.0 + rng.Gaussian(0.0, 1.0), map, std::max(1.0, maf)};
  return record;
}

MonitorConfig FastConfig() {
  MonitorConfig config;
  config.transform_options.window = 30;
  config.transform_options.stride = 5;
  config.profile_minutes = 150.0;
  config.threshold.burn_in_minutes = 50.0;
  config.threshold.persistence_minutes = 50.0;
  config.threshold.factor = 5.0;
  return config;
}

FleetEvent MakeEvent(telemetry::Minute t, EventType type, bool recorded = true) {
  FleetEvent event;
  event.timestamp = t;
  event.type = type;
  event.recorded = recorded;
  return event;
}

TEST(VehicleMonitorTest, CollectsReferenceThenCalibratesThenScores) {
  VehicleMonitor monitor(0, FastConfig());
  util::Rng rng(1);
  EXPECT_TRUE(monitor.collecting_reference());
  telemetry::Minute t = 0;
  // Feed enough records: window 30 + (30-1)*5 strides = 175 to fill Ref,
  // then 10*5 for burn-in, then some live.
  for (int i = 0; i < 400; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  EXPECT_FALSE(monitor.collecting_reference());
  EXPECT_EQ(monitor.fit_count(), 1);
  EXPECT_EQ(monitor.calibrations().size(), 1u);
  EXPECT_GT(monitor.scored_samples().size(), 0u);
}

TEST(VehicleMonitorTest, ServiceEventResetsReference) {
  VehicleMonitor monitor(0, FastConfig());
  util::Rng rng(2);
  telemetry::Minute t = 0;
  for (int i = 0; i < 400; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  EXPECT_EQ(monitor.fit_count(), 1);
  monitor.OnEvent(MakeEvent(t, EventType::kService));
  EXPECT_TRUE(monitor.collecting_reference());
  for (int i = 0; i < 400; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  EXPECT_EQ(monitor.fit_count(), 2);
}

TEST(VehicleMonitorTest, UnrecordedEventIsInvisible) {
  VehicleMonitor monitor(0, FastConfig());
  util::Rng rng(3);
  telemetry::Minute t = 0;
  for (int i = 0; i < 400; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  monitor.OnEvent(MakeEvent(t, EventType::kService, /*recorded=*/false));
  EXPECT_FALSE(monitor.collecting_reference());
}

TEST(VehicleMonitorTest, DtcEventsDoNotReset) {
  VehicleMonitor monitor(0, FastConfig());
  util::Rng rng(4);
  telemetry::Minute t = 0;
  for (int i = 0; i < 400; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  monitor.OnEvent(MakeEvent(t, EventType::kDtcPending));
  monitor.OnEvent(MakeEvent(t, EventType::kDtcStored));
  monitor.OnEvent(MakeEvent(t, EventType::kOther));
  EXPECT_FALSE(monitor.collecting_reference());
}

TEST(VehicleMonitorTest, ResetOnServiceConfigurable) {
  MonitorConfig config = FastConfig();
  config.reset_on_service = false;  // Table 3 ablation
  VehicleMonitor monitor(0, config);
  util::Rng rng(5);
  telemetry::Minute t = 0;
  for (int i = 0; i < 400; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  monitor.OnEvent(MakeEvent(t, EventType::kService));
  EXPECT_FALSE(monitor.collecting_reference());
  monitor.OnEvent(MakeEvent(t, EventType::kRepair));
  EXPECT_TRUE(monitor.collecting_reference());
}

TEST(VehicleMonitorTest, StationaryRecordsIgnored) {
  VehicleMonitor monitor(0, FastConfig());
  util::Rng rng(6);
  Record parked;
  parked.timestamp = 0;
  parked.pids = {800.0, 0.0, 90.0, 25.0, 30.0, 3.0};
  for (int i = 0; i < 500; ++i) monitor.OnRecord(parked);
  EXPECT_TRUE(monitor.collecting_reference());  // nothing usable arrived
}

TEST(VehicleMonitorTest, SustainedCouplingBreakRaisesAlarm) {
  VehicleMonitor monitor(0, FastConfig());
  util::Rng rng(7);
  telemetry::Minute t = 0;
  for (int i = 0; i < 500; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  ASSERT_FALSE(monitor.collecting_reference());
  // Break the rpm*map->MAF coupling hard for a sustained stretch.
  bool alarmed = false;
  for (int i = 0; i < 600; ++i) {
    if (monitor.OnRecord(MakeRecord(t++, rng, /*coupling_break=*/8.0))) alarmed = true;
  }
  EXPECT_TRUE(alarmed);
}

TEST(VehicleMonitorTest, HealthyStreamRaisesNoAlarmAtHighFactor) {
  MonitorConfig config = FastConfig();
  config.threshold.factor = 30.0;
  VehicleMonitor monitor(0, config);
  util::Rng rng(8);
  telemetry::Minute t = 0;
  int alarms = 0;
  for (int i = 0; i < 2000; ++i)
    if (monitor.OnRecord(MakeRecord(t++, rng))) ++alarms;
  EXPECT_EQ(alarms, 0);
}

TEST(AlarmsForThresholdTest, ReplayMatchesThresholdSemantics) {
  // Two-channel scores with one persistent violation stretch on channel 1.
  std::vector<CalibrationStats> calibrations(1);
  calibrations[0].mean = {0.0, 0.0};
  calibrations[0].stddev = {1.0, 1.0};
  std::vector<ScoredSample> samples;
  for (int i = 0; i < 30; ++i) {
    ScoredSample sample;
    sample.vehicle_id = 3;
    sample.timestamp = i;
    sample.calibration_index = 0;
    const double violating = (i >= 10 && i < 25) ? 10.0 : 0.0;
    sample.scores = {0.1, violating};
    samples.push_back(sample);
  }
  // Threshold = mean + 5 * std = 5; persistence 4-of-5.
  const auto alarms = AlarmsForThreshold(samples, calibrations, 5.0, 5, 4, {"a", "b"});
  ASSERT_FALSE(alarms.empty());
  // First alarm only after 4 violations accumulate (i = 13).
  EXPECT_EQ(alarms.front().timestamp, 13);
  EXPECT_EQ(alarms.front().channel_name, "b");
  // Alarms stop shortly after the violation stretch ends.
  EXPECT_LE(alarms.back().timestamp, 26);
}

TEST(AlarmsForThresholdTest, ConstantThresholdPath) {
  std::vector<CalibrationStats> calibrations(1);
  calibrations[0].mean = {0.0};
  calibrations[0].stddev = {1.0};
  calibrations[0].constant_threshold = true;
  std::vector<ScoredSample> samples;
  for (int i = 0; i < 10; ++i) {
    ScoredSample sample;
    sample.timestamp = i;
    sample.calibration_index = 0;
    sample.scores = {0.95};
    samples.push_back(sample);
  }
  // 0.95 < 0.99 -> no alarms at the tight constant.
  EXPECT_TRUE(AlarmsForThreshold(samples, calibrations, 0.99, 3, 2, {}).empty());
  // 0.95 > 0.90 -> alarms once persistence accrues.
  const auto alarms = AlarmsForThreshold(samples, calibrations, 0.9, 3, 2, {});
  EXPECT_FALSE(alarms.empty());
}

TEST(AlarmsForThresholdTest, CycleChangeResetsPersistence) {
  std::vector<CalibrationStats> calibrations(2);
  for (auto& stats : calibrations) {
    stats.mean = {0.0};
    stats.stddev = {1.0};
  }
  std::vector<ScoredSample> samples;
  for (int i = 0; i < 6; ++i) {
    ScoredSample sample;
    sample.timestamp = i;
    sample.calibration_index = i < 3 ? 0 : 1;  // cycle change at i = 3
    sample.scores = {10.0};
    samples.push_back(sample);
  }
  // Persistence 4-of-4: neither 3-sample cycle can accumulate 4 violations.
  EXPECT_TRUE(AlarmsForThreshold(samples, calibrations, 1.0, 4, 4, {}).empty());
}

}  // namespace
}  // namespace navarchos::core
