// Ingest-guard behaviour of the hardened VehicleMonitor: duplicate and
// out-of-order delivery recovery, late drops, non-finite rejection, and
// calibration quarantine.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/monitor.h"
#include "util/rng.h"

namespace navarchos::core {
namespace {

using telemetry::EventType;
using telemetry::FleetEvent;
using telemetry::Record;

/// Builds a usable (moving, in-range) record.
Record MakeRecord(telemetry::Minute t, util::Rng& rng) {
  Record record;
  record.timestamp = t;
  const double speed = 40.0 + 25.0 * rng.Uniform();
  const double rpm = speed * 35.0 * (1.0 + 0.02 * rng.Gaussian());
  const double map = 30.0 + 0.4 * speed + rng.Gaussian(0.0, 1.0);
  double maf = rpm * map / 8000.0 * (1.0 + 0.02 * rng.Gaussian());
  record.pids = {rpm, speed, 90.0 + rng.Gaussian(0.0, 0.5),
                 25.0 + rng.Gaussian(0.0, 1.0), map, std::max(1.0, maf)};
  return record;
}

MonitorConfig FastConfig() {
  MonitorConfig config;
  config.transform_options.window = 30;
  config.transform_options.stride = 5;
  config.profile_minutes = 150.0;
  config.threshold.burn_in_minutes = 50.0;
  config.threshold.persistence_minutes = 50.0;
  config.threshold.factor = 5.0;
  return config;
}

std::vector<Record> CleanStream(int n, std::uint64_t seed = 11) {
  util::Rng rng(seed);
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) records.push_back(MakeRecord(i, rng));
  return records;
}

/// Runs a delivery sequence through a fresh monitor and returns it flushed.
VehicleMonitor RunThrough(const std::vector<Record>& deliveries,
                          const MonitorConfig& config = FastConfig()) {
  VehicleMonitor monitor(0, config);
  for (const Record& record : deliveries) monitor.OnRecord(record);
  monitor.Flush();
  return monitor;
}

bool SameSamples(const std::vector<ScoredSample>& a,
                 const std::vector<ScoredSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].timestamp != b[i].timestamp || a[i].scores != b[i].scores ||
        a[i].calibration_index != b[i].calibration_index) {
      return false;
    }
  }
  return true;
}

TEST(MonitorIngestTest, DuplicateDeliveriesAreDroppedAndCounted) {
  const auto records = CleanStream(400);
  std::vector<Record> duplicated;
  for (const Record& record : records) {
    duplicated.push_back(record);
    duplicated.push_back(record);  // immediate transport retry
  }
  const auto clean = RunThrough(records);
  const auto hardened = RunThrough(duplicated);
  EXPECT_EQ(hardened.quality().duplicates_dropped, records.size());
  EXPECT_EQ(hardened.quality().records_seen, duplicated.size());
  EXPECT_EQ(hardened.quality().late_dropped, 0u);
  // The duplicated stream must score exactly like the clean one.
  EXPECT_TRUE(SameSamples(hardened.scored_samples(), clean.scored_samples()));
}

TEST(MonitorIngestTest, EqualTimestampsWithDifferentPayloadsAreKept) {
  // Sub-minute bursts produce equal timestamps with distinct readings; the
  // dedup must not swallow them.
  auto records = CleanStream(200);
  for (auto& record : records) record.timestamp /= 2;  // pairs share a minute
  const auto monitor = RunThrough(records);
  EXPECT_EQ(monitor.quality().duplicates_dropped, 0u);
  EXPECT_EQ(monitor.quality().late_dropped, 0u);
}

TEST(MonitorIngestTest, OutOfOrderDeliveriesAreResequenced) {
  const auto records = CleanStream(400);
  std::vector<Record> shuffled = records;
  // Swap adjacent pairs: every even record arrives after its successor.
  for (std::size_t i = 0; i + 1 < shuffled.size(); i += 2)
    std::swap(shuffled[i], shuffled[i + 1]);
  const auto clean = RunThrough(records);
  const auto hardened = RunThrough(shuffled);
  EXPECT_GT(hardened.quality().reordered_recovered, 0u);
  EXPECT_EQ(hardened.quality().late_dropped, 0u);
  EXPECT_EQ(hardened.quality().duplicates_dropped, 0u);
  // Resequencing restores the exact clean-run behaviour...
  EXPECT_TRUE(SameSamples(hardened.scored_samples(), clean.scored_samples()));
  // ...and the scored timeline is strictly increasing.
  for (std::size_t i = 1; i < hardened.scored_samples().size(); ++i) {
    EXPECT_LT(hardened.scored_samples()[i - 1].timestamp,
              hardened.scored_samples()[i].timestamp);
  }
  ASSERT_FALSE(hardened.scored_samples().empty());
}

TEST(MonitorIngestTest, HopelesslyLateRecordsAreDropped) {
  const auto records = CleanStream(100);
  std::vector<Record> deliveries = records;
  Record straggler = records[10];
  straggler.pids[0] += 1.0;  // not a duplicate, genuinely late
  deliveries.push_back(straggler);
  const auto monitor = RunThrough(deliveries);
  EXPECT_EQ(monitor.quality().late_dropped, 1u);
  EXPECT_EQ(monitor.quality().duplicates_dropped, 0u);
}

TEST(MonitorIngestTest, NonFiniteRecordsAreRejectedBeforeTheRangeFilter) {
  const auto records = CleanStream(400);
  std::vector<Record> deliveries;
  std::size_t injected = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    deliveries.push_back(records[i]);
    if (i % 10 == 0) {
      Record poisoned = records[i];
      poisoned.pids[i % telemetry::kNumPids] =
          std::numeric_limits<double>::quiet_NaN();
      deliveries.push_back(poisoned);
      ++injected;
    }
  }
  const auto clean = RunThrough(records);
  const auto hardened = RunThrough(deliveries);
  EXPECT_EQ(hardened.quality().non_finite_dropped, injected);
  // A NaN-poisoned record must neither reach the reference nor the scores.
  EXPECT_TRUE(SameSamples(hardened.scored_samples(), clean.scored_samples()));
}

TEST(MonitorIngestTest, DisabledGuardRestoresThePassthroughPath) {
  MonitorConfig config = FastConfig();
  config.ingest.enabled = false;
  const auto records = CleanStream(400);
  std::vector<Record> duplicated;
  for (const Record& record : records) {
    duplicated.push_back(record);
    duplicated.push_back(record);
  }
  const auto monitor = RunThrough(duplicated, config);
  EXPECT_EQ(monitor.quality().duplicates_dropped, 0u);
  EXPECT_EQ(monitor.quality().records_seen, duplicated.size());
}

TEST(MonitorIngestTest, StuckRunsAreCountedAndDroppedOnlyOnOptIn) {
  auto records = CleanStream(400);
  // Freeze the coolant channel for a long stretch mid-stream.
  const double frozen = records[100].pids[2];
  for (std::size_t i = 100; i < 200; ++i) records[i].pids[2] = frozen;

  const auto counting = RunThrough(records);
  EXPECT_GT(counting.quality().stuck_run_records, 0u);
  EXPECT_EQ(counting.quality().stuck_run_dropped, 0u);

  MonitorConfig dropping = FastConfig();
  dropping.ingest.drop_stuck_runs = true;
  const auto dropped = RunThrough(records, dropping);
  EXPECT_EQ(dropped.quality().stuck_run_dropped,
            dropped.quality().stuck_run_records);
  EXPECT_GT(dropped.quality().stuck_run_dropped, 0u);
}

/// Pass-through transformer: one feature, the first PID, emitted per record.
class StubTransformer : public transform::Transformer {
 public:
  std::string Name() const override { return "stub"; }
  std::vector<std::string> FeatureNames() const override { return {"f0"}; }
  std::optional<transform::TransformedSample> Collect(const Record& record) override {
    transform::TransformedSample sample;
    sample.timestamp = record.timestamp;
    sample.features = {record.pids[0]};
    return sample;
  }
  void Reset() override {}
};

/// Detector emitting NaN scores on its first reference cycle and finite
/// scores afterwards (a numerically degenerate first fit).
class NanOnFirstFitDetector : public detect::Detector {
 public:
  std::string Name() const override { return "nan_on_first_fit"; }
  void Fit(const std::vector<std::vector<double>>& ref) override { ++fits_; (void)ref; }
  std::vector<double> Score(const std::vector<double>& sample) override {
    (void)sample;
    if (fits_ <= 1) return {std::numeric_limits<double>::quiet_NaN()};
    return {0.5};
  }
  std::size_t ScoreChannels() const override { return 1; }
  std::vector<std::string> ChannelNames() const override { return {"score"}; }

 private:
  int fits_ = 0;
};

TEST(MonitorIngestTest, NonFiniteCalibrationQuarantinesTheReferenceCycle) {
  MonitorConfig config;
  config.transform = transform::TransformKind::kRaw;  // stride 1
  config.profile_minutes = 16.0;
  config.threshold.burn_in_minutes = 10.0;
  VehicleMonitor monitor(0, config, std::make_unique<StubTransformer>(),
                         std::make_unique<NanOnFirstFitDetector>());
  util::Rng rng(21);
  telemetry::Minute t = 0;

  // Fill the reference; the first post-fit score is NaN -> quarantine.
  for (int i = 0; i < 40; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  EXPECT_FALSE(monitor.collecting_reference());
  EXPECT_TRUE(monitor.quarantined());
  EXPECT_EQ(monitor.quality().quarantine_events, 1u);
  EXPECT_TRUE(monitor.scored_samples().empty());
  EXPECT_TRUE(monitor.calibrations().empty());

  // The quarantined cycle stays silent however much data arrives...
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(monitor.OnRecord(MakeRecord(t++, rng)).has_value());
  }
  EXPECT_TRUE(monitor.scored_samples().empty());

  // ...until a maintenance reset triggers a re-fit, which recovers.
  FleetEvent service;
  service.timestamp = t;
  service.type = EventType::kService;
  monitor.OnEvent(service);
  EXPECT_FALSE(monitor.quarantined());
  for (int i = 0; i < 60; ++i) monitor.OnRecord(MakeRecord(t++, rng));
  monitor.Flush();
  EXPECT_FALSE(monitor.quarantined());
  EXPECT_EQ(monitor.fit_count(), 2);
  EXPECT_EQ(monitor.calibrations().size(), 1u);
  EXPECT_GT(monitor.scored_samples().size(), 0u);
  EXPECT_EQ(monitor.quality().quarantine_events, 1u);
}

}  // namespace
}  // namespace navarchos::core
