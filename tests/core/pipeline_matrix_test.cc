// Pipeline compatibility matrix: every transformation x every detector must
// run end-to-end through the streaming monitor - reference fill, fit,
// burn-in calibration, live scoring - on a realistic record stream, without
// aborting and with finite scores. This is the guarantee that lets users
// mix and match framework steps freely.
#include <cmath>

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "telemetry/driving_cycle.h"
#include "telemetry/engine_model.h"
#include "util/rng.h"

namespace navarchos::core {
namespace {

struct Combo {
  transform::TransformKind transform;
  detect::DetectorKind detector;
};

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(transform::TransformKindName(info.param.transform)) + "_" +
         detect::DetectorKindName(info.param.detector);
}

class PipelineMatrixTest : public ::testing::TestWithParam<Combo> {};

TEST_P(PipelineMatrixTest, RunsEndToEndOnSimulatedStream) {
  const Combo combo = GetParam();

  MonitorConfig config;
  config.transform = combo.transform;
  config.detector = combo.detector;
  // Small horizons so every combination fits and scores quickly.
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  config.detector_options.tranad.epochs = 2;
  config.detector_options.tranad.d_model = 8;
  config.detector_options.tranad.window = 4;
  config.detector_options.gbt.num_trees = 10;
  config.detector_options.mlp.epochs = 3;
  config.detector_options.grand.k = 5;
  VehicleMonitor monitor(0, config);

  // ~6 simulated operating days through the real driving/engine models.
  util::Rng rng(11);
  const auto spec = telemetry::SampleFleetSpecs(1, rng).front();
  telemetry::DrivingCycle cycle(spec);
  telemetry::EngineModel engine(spec);
  const telemetry::FaultEffects healthy;
  int scored_before = 0;
  for (int day = 0; day < 14; ++day) {
    for (const auto& ride : cycle.PlanDay(day, rng)) {
      engine.StartRide(ride.start, 18.0);
      for (const auto& minute : cycle.Realise(ride, rng)) {
        telemetry::Record record;
        record.vehicle_id = 0;
        record.timestamp = ride.start;
        record.pids = engine.Step(record.timestamp, minute, 18.0, healthy, rng);
        monitor.OnRecord(record);
      }
    }
  }
  scored_before = static_cast<int>(monitor.scored_samples().size());

  // Must have completed at least one full fit + calibration cycle and
  // produced finite scores.
  EXPECT_FALSE(monitor.collecting_reference())
      << "reference never filled for this combination";
  EXPECT_GE(monitor.fit_count(), 1);
  EXPECT_GT(scored_before, 0);
  for (const auto& sample : monitor.scored_samples()) {
    ASSERT_EQ(sample.scores.size(), monitor.channel_names().size());
    for (double score : sample.scores) {
      EXPECT_TRUE(std::isfinite(score));
      EXPECT_GE(score, 0.0);
    }
  }

  // A service event must cleanly reset and allow a second cycle.
  telemetry::FleetEvent service;
  service.vehicle_id = 0;
  service.timestamp = 14 * telemetry::kMinutesPerDay;
  service.type = telemetry::EventType::kService;
  service.recorded = true;
  monitor.OnEvent(service);
  EXPECT_TRUE(monitor.collecting_reference());
  for (int day = 14; day < 28; ++day) {
    for (const auto& ride : cycle.PlanDay(day, rng)) {
      engine.StartRide(ride.start, 18.0);
      for (const auto& minute : cycle.Realise(ride, rng)) {
        telemetry::Record record;
        record.vehicle_id = 0;
        record.timestamp = ride.start;
        record.pids = engine.Step(record.timestamp, minute, 18.0, healthy, rng);
        monitor.OnRecord(record);
      }
    }
  }
  EXPECT_GE(monitor.fit_count(), 2);
}

std::vector<Combo> AllCombos() {
  std::vector<Combo> combos;
  for (auto transform_kind :
       {transform::TransformKind::kRaw, transform::TransformKind::kDelta,
        transform::TransformKind::kMeanAggregation,
        transform::TransformKind::kCorrelation, transform::TransformKind::kHistogram,
        transform::TransformKind::kSpectral, transform::TransformKind::kSax}) {
    for (auto detector_kind :
         {detect::DetectorKind::kClosestPair, detect::DetectorKind::kGrand,
          detect::DetectorKind::kTranAd, detect::DetectorKind::kXgBoost,
          detect::DetectorKind::kIsolationForest, detect::DetectorKind::kMlp,
          detect::DetectorKind::kKnnDistance}) {
      combos.push_back({transform_kind, detector_kind});
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, PipelineMatrixTest,
                         ::testing::ValuesIn(AllCombos()), ComboName);

}  // namespace
}  // namespace navarchos::core
