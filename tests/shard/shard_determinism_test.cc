// The sharded extension of the house invariant: for a recorded interleaved
// stream, the ShardGroup's complete fleet-wide output - alarms in total
// order, history records with fleet sequence numbers, scored samples,
// calibrations, quality reports - is bit-identical at EVERY shard count x
// thread count combination, and equal to the unsharded service. Sharding
// re-partitions lanes between services; it must never change a single
// emitted byte. Verified on a clean stream and on a corrupted stream whose
// reorderings/duplicates exercise the reorder buffers on every shard.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_runner.h"
#include "history/history_log.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "shard/shard_group.h"
#include "telemetry/corruption.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

/// FastMonitorConfig with the rolling consensus ensemble switched on.
core::MonitorConfig EnsembleMonitorConfig() {
  core::MonitorConfig config = FastMonitorConfig();
  config.ensemble.enabled = true;
  config.ensemble.k = 3;
  config.ensemble.m = 2;
  config.ensemble.retrain_every = 24;
  config.ensemble.activation_lag = 8;
  return config;
}

service::ServiceConfig ServiceConfigWith(
    int threads, const core::MonitorConfig& monitor = FastMonitorConfig()) {
  service::ServiceConfig config;
  config.monitor = monitor;
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 32;  // Small enough to exercise backpressure.
  return config;
}

/// Everything a sharded run emits, in emission order.
struct ShardedRun {
  core::FleetRunResult result;
  std::vector<core::Alarm> live_alarms;       ///< Alarm-callback order.
  std::vector<history::HistoryRecord> records;  ///< History-callback order.
};

ShardedRun RunSharded(const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids, int shards,
                      int threads,
                      const core::MonitorConfig& monitor = FastMonitorConfig()) {
  shard::ShardGroupConfig config;
  config.service = ServiceConfigWith(threads, monitor);
  config.shard_count = static_cast<std::uint32_t>(shards);
  shard::ShardGroup group(config);
  ShardedRun run;
  group.set_alarm_callback([&run](const core::Alarm& alarm) {
    run.live_alarms.push_back(alarm);
  });
  group.set_history_callback([&run](const history::HistoryRecord& record) {
    run.records.push_back(record);
  });
  for (const auto id : ids) group.RegisterVehicle(id);
  for (const auto& frame : stream) group.Submit(frame);
  group.Drain();
  run.result = group.TakeResult();
  return run;
}

void ExpectAlarmsIdentical(const std::vector<core::Alarm>& a,
                           const std::vector<core::Alarm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].vehicle_id, b[i].vehicle_id) << "alarm " << i;
    ASSERT_EQ(a[i].timestamp, b[i].timestamp) << "alarm " << i;
    ASSERT_EQ(a[i].channel, b[i].channel) << "alarm " << i;
    ASSERT_EQ(a[i].channel_name, b[i].channel_name) << "alarm " << i;
    ASSERT_EQ(a[i].score, b[i].score) << "alarm " << i;
    ASSERT_EQ(a[i].threshold, b[i].threshold) << "alarm " << i;
  }
}

void ExpectRecordsIdentical(const std::vector<history::HistoryRecord>& a,
                            const std::vector<history::HistoryRecord>& b) {
  // Byte-level equality including the fleet sequence numbers: identical
  // record streams imply identical history logs, hence identical RANK /
  // TIMELINE / COMOVE answers.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].vehicle_id, b[i].vehicle_id) << "record " << i;
    ASSERT_EQ(a[i].global_seq, b[i].global_seq) << "record " << i;
    ASSERT_EQ(a[i].timestamp, b[i].timestamp) << "record " << i;
    ASSERT_EQ(a[i].score, b[i].score) << "record " << i;
    ASSERT_EQ(a[i].threshold, b[i].threshold) << "record " << i;
    ASSERT_EQ(a[i].alarm, b[i].alarm) << "record " << i;
    ASSERT_EQ(a[i].top_channels, b[i].top_channels) << "record " << i;
    ASSERT_EQ(a[i].votes, b[i].votes) << "record " << i;
    ASSERT_EQ(a[i].ensemble_live, b[i].ensemble_live) << "record " << i;
  }
}

void ExpectResultsIdentical(const core::FleetRunResult& a,
                            const core::FleetRunResult& b) {
  ExpectAlarmsIdentical(a.alarms, b.alarms);
  ASSERT_EQ(a.channel_names, b.channel_names);
  ASSERT_EQ(a.persistence_window, b.persistence_window);
  ASSERT_EQ(a.persistence_min, b.persistence_min);

  ASSERT_EQ(a.scored_samples.size(), b.scored_samples.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t s = 0; s < a.scored_samples[v].size(); ++s) {
      ASSERT_EQ(a.scored_samples[v][s].timestamp,
                b.scored_samples[v][s].timestamp);
      ASSERT_EQ(a.scored_samples[v][s].scores, b.scored_samples[v][s].scores);
    }
  }
  ASSERT_EQ(a.quality.size(), b.quality.size());
  for (std::size_t v = 0; v < a.quality.size(); ++v) {
    ASSERT_EQ(a.quality[v].records_seen, b.quality[v].records_seen);
    ASSERT_EQ(a.quality[v].duplicates_dropped, b.quality[v].duplicates_dropped);
    ASSERT_EQ(a.quality[v].reordered_recovered,
              b.quality[v].reordered_recovered);
  }
}

void CheckInvariantOn(const std::vector<telemetry::SensorFrame>& stream,
                      const std::vector<std::int32_t>& ids,
                      const core::MonitorConfig& monitor = FastMonitorConfig()) {
  // The unsharded serial service is the reference output.
  const auto reference =
      service::RunStream(stream, ids, ServiceConfigWith(1, monitor));
  const ShardedRun baseline = RunSharded(stream, ids, /*shards=*/1,
                                         /*threads=*/1, monitor);
  ExpectResultsIdentical(reference, baseline.result);
  ExpectAlarmsIdentical(reference.alarms, baseline.live_alarms);

  for (const int shards : {1, 2, 4}) {
    for (const int threads : {1, 4}) {
      if (shards == 1 && threads == 1) continue;  // the baseline itself
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      const ShardedRun run = RunSharded(stream, ids, shards, threads, monitor);
      ExpectResultsIdentical(baseline.result, run.result);
      ExpectAlarmsIdentical(baseline.live_alarms, run.live_alarms);
      ExpectRecordsIdentical(baseline.records, run.records);
    }
  }
}

TEST(ShardDeterminismTest, CleanStreamIsIdenticalAtAnyShardAndThreadCount) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  CheckInvariantOn(stream, service::VehicleIdsOf(fleet));
}

TEST(ShardDeterminismTest,
     CorruptedStreamIsIdenticalAtAnyShardAndThreadCount) {
  // Delivery-order damage (reorderings, duplicates, skew) activates the
  // per-vehicle reorder buffers on every shard; scheduling noise across
  // shards must still never leak into the fleet-wide order.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const telemetry::CorruptionModel model(
      telemetry::CorruptionConfig::Moderate());
  const auto stream = telemetry::InterleaveFleetStream(fleet, model);
  CheckInvariantOn(stream, service::VehicleIdsOf(fleet));
}

TEST(ShardDeterminismTest, EnsembleEnabledStreamIsIdenticalAcrossShards) {
  // Sharding transparency extended to the consensus ensemble: background
  // retrains run on each shard's own pool, yet the fleet-wide output -
  // including per-record consensus votes - is identical at every shard x
  // thread combination and equal to the unsharded service.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  CheckInvariantOn(stream, service::VehicleIdsOf(fleet),
                   EnsembleMonitorConfig());
}

TEST(ShardDeterminismTest, HistoryRecordsCarryFleetSequencesOfTheirFrames) {
  // Fleet sequence numbers are the glue of the merged total order. On a
  // clean stream every submitted frame is admitted, so fleet seq i IS the
  // index of stream[i]: each emitted record must point back at a frame of
  // its own vehicle (shard-local seqs leaking through would point at
  // frames of other vehicles).
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const ShardedRun sharded = RunSharded(stream, ids, /*shards=*/4,
                                        /*threads=*/4);
  ASSERT_FALSE(sharded.records.empty());
  for (const auto& record : sharded.records) {
    ASSERT_LT(record.global_seq, stream.size());
    EXPECT_EQ(stream[record.global_seq].vehicle_id(), record.vehicle_id);
  }
}

}  // namespace
}  // namespace navarchos
