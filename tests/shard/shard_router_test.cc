// The consistent-hash router is a wire-visible contract: every peer of a
// fleet - routing clients, shard servers, checkpoint manifests - rebuilds
// the vehicle-to-shard assignment locally from (shard_count, seed) alone,
// so the hash function and the ring derivation are pinned here value by
// value. A change that shifts any pinned assignment is a protocol break
// (it would route resumed sessions to the wrong shard), not a refactor.
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "shard/shard_router.h"

namespace navarchos::shard {
namespace {

TEST(ShardRouterTest, Mix64IsTheDocumentedSplitmix64Finalizer) {
  // First outputs of splitmix64 seeded at 0 and 1, plus one wide pattern.
  // These pin the exact mixer; std::hash or any "equivalent" mixer would
  // silently break cross-process agreement.
  EXPECT_EQ(Mix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(Mix64(1), 0x910A2DEC89025CC1ull);
  EXPECT_EQ(Mix64(0x123456789ABCDEFull), 0x157A3807A48FAA9Dull);
}

TEST(ShardRouterTest, AssignmentsArePinnedAtTheDefaultSeed) {
  // Exact assignments for the first vehicle ids under the default seed.
  // Any ring-derivation change (vnode count, label layout, tie-breaks)
  // shows up here before it can corrupt a deployed fleet.
  const ShardMap two(2);
  const std::vector<int> expect_two = {1, 1, 1, 1, 0, 0, 0, 1, 0, 0, 1, 0};
  for (std::size_t id = 0; id < expect_two.size(); ++id)
    EXPECT_EQ(two.ShardOf(static_cast<std::int32_t>(id)), expect_two[id])
        << "vehicle " << id;

  const ShardMap four(4);
  const std::vector<int> expect_four = {2, 1, 3, 3, 3, 3, 3, 1, 2, 3, 1, 2};
  for (std::size_t id = 0; id < expect_four.size(); ++id)
    EXPECT_EQ(four.ShardOf(static_cast<std::int32_t>(id)), expect_four[id])
        << "vehicle " << id;
}

TEST(ShardRouterTest, PureFunctionOfCountAndSeed) {
  const ShardMap a(4, 12345);
  const ShardMap b(4, 12345);
  for (std::int32_t id = -100; id < 1000; ++id)
    ASSERT_EQ(a.ShardOf(id), b.ShardOf(id)) << "vehicle " << id;
}

TEST(ShardRouterTest, SingleShardRoutesEverythingToZero) {
  const ShardMap map(1, 999);
  for (std::int32_t id = -5; id < 100; ++id) EXPECT_EQ(map.ShardOf(id), 0);
}

TEST(ShardRouterTest, SmallConsecutiveIdsAreNotPinnedToOneShard) {
  // Regression: vnode labels must be domain-separated from vehicle keys.
  // Without the (shard + 1) high word, ids 0..63 hash exactly onto shard
  // 0's ring points and ALL land on shard 0.
  const ShardMap map(4);
  std::map<int, int> counts;
  for (std::int32_t id = 0; id < 64; ++id) ++counts[map.ShardOf(id)];
  EXPECT_GE(counts.size(), 3u) << "first 64 ids collapsed onto "
                               << counts.size() << " shard(s)";
}

TEST(ShardRouterTest, LoadSplitIsRoughlyBalanced) {
  const ShardMap map(4);
  std::vector<int> counts(4, 0);
  for (std::int32_t id = 0; id < 100000; ++id)
    ++counts[static_cast<std::size_t>(map.ShardOf(id))];
  for (int shard = 0; shard < 4; ++shard) {
    // 64 vnodes keep a uniform fleet within a loose band of fair share.
    EXPECT_GT(counts[static_cast<std::size_t>(shard)], 15000)
        << "shard " << shard;
    EXPECT_LT(counts[static_cast<std::size_t>(shard)], 35000)
        << "shard " << shard;
  }
}

TEST(ShardRouterTest, GrowingTheRingOnlyMovesVehiclesToTheNewShard) {
  // The consistent-hashing promise: adding shard N only inserts new ring
  // points, so a vehicle either keeps its shard or moves to the NEW one -
  // and only roughly 1/(N+1) of them move.
  const ShardMap four(4);
  const ShardMap five(5);
  int moved = 0;
  const int kVehicles = 10000;
  for (std::int32_t id = 0; id < kVehicles; ++id) {
    const int before = four.ShardOf(id);
    const int after = five.ShardOf(id);
    if (before != after) {
      ++moved;
      EXPECT_EQ(after, 4) << "vehicle " << id
                          << " moved between pre-existing shards";
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kVehicles * 35 / 100);
}

TEST(ShardRouterTest, SeedChangesTheAssignment) {
  const ShardMap a(4, 1);
  const ShardMap b(4, 2);
  int differing = 0;
  for (std::int32_t id = 0; id < 1000; ++id)
    if (a.ShardOf(id) != b.ShardOf(id)) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(ShardRouterTest, NegativeIdsRouteConsistently) {
  // Negative ids are zero-extended through a fixed-width cast, so the
  // assignment is identical on every platform and process.
  const ShardMap map(4);
  for (std::int32_t id = -1000; id < 0; ++id) {
    const int shard = map.ShardOf(id);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    ASSERT_EQ(shard, map.ShardOf(id));  // stable on repeated lookup
  }
}

}  // namespace
}  // namespace navarchos::shard
