// The sharded wire path end to end: a ShardedClient streaming the fleet
// over loopback TCP to a ShardServer (one listener per shard) produces the
// same fleet-wide result as the in-process ShardGroup run and the unsharded
// service - including through a mid-stream abort + resume across every
// shard session. Also pins the backward-compat boundary: a plain (pre-
// shard-map) IngestClient against a single-shard ShardServer still works,
// because a 1-shard WELCOME advertises no map at all.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/ingest_client.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "shard/shard_group.h"
#include "shard/shard_server.h"
#include "shard/sharded_client.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

shard::ShardGroupConfig GroupConfig(int shards, int threads) {
  shard::ShardGroupConfig config;
  config.service.monitor = FastMonitorConfig();
  config.service.runtime = runtime::RuntimeConfig{threads};
  config.service.queue_capacity = 32;
  config.shard_count = static_cast<std::uint32_t>(shards);
  return config;
}

void ExpectAlarmsIdentical(const std::vector<core::Alarm>& a,
                           const std::vector<core::Alarm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].vehicle_id, b[i].vehicle_id) << "alarm " << i;
    ASSERT_EQ(a[i].timestamp, b[i].timestamp) << "alarm " << i;
    ASSERT_EQ(a[i].channel, b[i].channel) << "alarm " << i;
    ASSERT_EQ(a[i].score, b[i].score) << "alarm " << i;
    ASSERT_EQ(a[i].threshold, b[i].threshold) << "alarm " << i;
  }
}

/// The in-process reference: the same stream through a ShardGroup.
core::FleetRunResult RunInProcess(
    const std::vector<telemetry::SensorFrame>& stream,
    const std::vector<std::int32_t>& ids, int shards, int threads) {
  shard::ShardGroup group(GroupConfig(shards, threads));
  for (const auto id : ids) group.RegisterVehicle(id);
  for (const auto& frame : stream) group.Submit(frame);
  group.Drain();
  return group.TakeResult();
}

TEST(ShardedLoopbackTest, WireRunEqualsInProcessRun) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto reference = RunInProcess(stream, ids, 4, 4);

  shard::ShardGroup group(GroupConfig(4, 4));
  net::ServerConfig server_template;
  server_template.port = 0;
  shard::ShardServer server(&group, server_template);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.map_info().shard_count, 4u);
  ASSERT_EQ(server.map_info().ports.size(), 4u);

  shard::ShardedClientConfig client_config;
  client_config.client.port = server.port(0);
  client_config.client.session_id = "sharded-loopback";
  shard::ShardedClient client(client_config);
  ASSERT_TRUE(client.Connect(ids, /*resume=*/false).ok());
  EXPECT_EQ(client.shard_map_info().shard_count, 4u);
  for (const auto& frame : stream) ASSERT_TRUE(client.Send(frame).ok());
  ASSERT_TRUE(client.Finish().ok());

  ASSERT_TRUE(server.WaitForFinishedSessions(4, /*timeout_ms=*/30000));
  server.Stop();
  group.Drain();
  const auto wire = group.TakeResult();
  ExpectAlarmsIdentical(reference.alarms, wire.alarms);
  ASSERT_EQ(reference.scored_samples.size(), wire.scored_samples.size());
  for (std::size_t v = 0; v < reference.scored_samples.size(); ++v)
    ASSERT_EQ(reference.scored_samples[v].size(),
              wire.scored_samples[v].size());
}

TEST(ShardedLoopbackTest, AbortAndResumeAcrossShardsStaysExactlyOnce) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto reference = RunInProcess(stream, ids, 2, 4);

  shard::ShardGroup group(GroupConfig(2, 4));
  net::ServerConfig server_template;
  server_template.port = 0;
  shard::ShardServer server(&group, server_template);
  ASSERT_TRUE(server.Start().ok());

  shard::ShardedClientConfig client_config;
  client_config.client.port = server.port(0);
  client_config.client.session_id = "sharded-resume";

  // First client dies mid-stream: no flush, no FIN, on any shard.
  const std::size_t cut = stream.size() / 3;
  {
    shard::ShardedClient first(client_config);
    ASSERT_TRUE(first.Connect(ids, /*resume=*/false).ok());
    for (std::size_t i = 0; i < cut; ++i)
      ASSERT_TRUE(first.Send(stream[i]).ok());
    first.Abort();
  }

  // The resuming client replays the WHOLE stream; each shard session skips
  // its decided prefix locally and re-sends only the undecided tail.
  shard::ShardedClient second(client_config);
  ASSERT_TRUE(second.Connect(ids, /*resume=*/true).ok());
  for (const auto& frame : stream) ASSERT_TRUE(second.Send(frame).ok());
  ASSERT_TRUE(second.Finish().ok());

  ASSERT_TRUE(server.WaitForFinishedSessions(2, /*timeout_ms=*/30000));
  server.Stop();
  group.Drain();
  const auto wire = group.TakeResult();
  // Exactly-once across the crash: the merged fleet output is the
  // uninterrupted in-process run, bit for bit.
  ExpectAlarmsIdentical(reference.alarms, wire.alarms);
}

TEST(ShardedLoopbackTest, PlainClientStillSpeaksToASingleShardServer) {
  // Old peers predate the shard map. A 1-shard ShardServer must therefore
  // advertise nothing (its WELCOME is byte-identical to the unsharded
  // server's) and a plain IngestClient must complete a session against it.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto reference = RunInProcess(stream, ids, 1, 4);

  shard::ShardGroup group(GroupConfig(1, 4));
  net::ServerConfig server_template;
  server_template.port = 0;
  shard::ShardServer server(&group, server_template);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.map_info().unsharded());

  net::ClientConfig config;
  config.port = server.port(0);
  config.session_id = "legacy-client";
  net::IngestClient client(config);
  ASSERT_TRUE(client.Connect(ids, /*resume=*/false).ok());
  EXPECT_TRUE(client.shard_map().unsharded());
  for (const auto& frame : stream) ASSERT_TRUE(client.Send(frame).ok());
  ASSERT_TRUE(client.Finish().ok());

  ASSERT_TRUE(server.WaitForFinishedSessions(1, /*timeout_ms=*/30000));
  server.Stop();
  group.Drain();
  const auto wire = group.TakeResult();
  ExpectAlarmsIdentical(reference.alarms, wire.alarms);
}

}  // namespace
}  // namespace navarchos
