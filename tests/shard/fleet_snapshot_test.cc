// The fleet-wide checkpoint: a mid-stream Checkpoint(dir) plus a fresh
// group's RestoreFromDir must reproduce the uninterrupted run bit for bit
// (restore-equals-uninterrupted, extended across shards), the manifest's
// CRC fingerprints must catch any damaged or swapped per-shard snapshot
// BEFORE any state is touched, and repeated checkpoints must supersede each
// other atomically (the manifest rename is the commit point).
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_runner.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "shard/shard_group.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos::shard {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

ShardGroupConfig GroupConfig(int shards, int threads) {
  ShardGroupConfig config;
  config.service.monitor = FastMonitorConfig();
  config.service.runtime = runtime::RuntimeConfig{threads};
  config.service.queue_capacity = 32;
  config.shard_count = static_cast<std::uint32_t>(shards);
  return config;
}

std::string TempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectAlarmsIdentical(const std::vector<core::Alarm>& a,
                           const std::vector<core::Alarm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].vehicle_id, b[i].vehicle_id) << "alarm " << i;
    ASSERT_EQ(a[i].timestamp, b[i].timestamp) << "alarm " << i;
    ASSERT_EQ(a[i].score, b[i].score) << "alarm " << i;
    ASSERT_EQ(a[i].threshold, b[i].threshold) << "alarm " << i;
  }
}

/// Flips one byte near the middle of `path`.
void CorruptFile(const std::string& path) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(file.tellg());
  ASSERT_GT(size, 0);
  const std::streamoff pos = size / 2;
  file.seekg(pos);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(pos);
  file.write(&byte, 1);
}

TEST(FleetSnapshotTest, RestoreEqualsUninterruptedAcrossShards) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::size_t cut = stream.size() / 2;
  const std::string dir = TempDir("navshard_fleet_restore");

  // Uninterrupted reference run.
  ShardGroup reference(GroupConfig(4, 4));
  for (const auto id : ids) reference.RegisterVehicle(id);
  for (const auto& frame : stream) reference.Submit(frame);
  reference.Drain();
  const auto expected = reference.TakeResult();

  // Interrupted run: checkpoint at the cut, then pretend the process died
  // (drop the group without draining the rest of the stream).
  {
    ShardGroup first(GroupConfig(4, 4));
    for (const auto id : ids) first.RegisterVehicle(id);
    for (std::size_t i = 0; i < cut; ++i) first.Submit(stream[i]);
    const util::Status status = first.Checkpoint(dir);
    ASSERT_TRUE(status.ok()) << status.message();
  }

  // A fresh group restores the fleet manifest and replays the tail.
  ShardGroup restored(GroupConfig(4, 4));
  const util::Status status = restored.RestoreFromDir(dir);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_EQ(restored.stats().frames_accepted, cut);
  ASSERT_EQ(restored.vehicle_count(), ids.size());
  for (std::size_t i = cut; i < stream.size(); ++i) restored.Submit(stream[i]);
  restored.Drain();
  const auto resumed = restored.TakeResult();

  ExpectAlarmsIdentical(expected.alarms, resumed.alarms);
  ASSERT_EQ(expected.scored_samples.size(), resumed.scored_samples.size());
  for (std::size_t v = 0; v < expected.scored_samples.size(); ++v)
    ASSERT_EQ(expected.scored_samples[v].size(),
              resumed.scored_samples[v].size());
  std::filesystem::remove_all(dir);
}

TEST(FleetSnapshotTest, LaterCheckpointSupersedesEarlier) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string dir = TempDir("navshard_fleet_epochs");

  ShardGroup group(GroupConfig(2, 2));
  for (const auto id : ids) group.RegisterVehicle(id);
  const std::size_t first_cut = stream.size() / 4;
  const std::size_t second_cut = stream.size() / 2;
  for (std::size_t i = 0; i < first_cut; ++i) group.Submit(stream[i]);
  ASSERT_TRUE(group.Checkpoint(dir).ok());
  for (std::size_t i = first_cut; i < second_cut; ++i)
    group.Submit(stream[i]);
  ASSERT_TRUE(group.Checkpoint(dir).ok());
  group.Drain();

  // The directory holds exactly one epoch: the manifest plus one snapshot
  // per shard (stale epochs are removed after the commit rename).
  std::size_t snapshots = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().filename().string().rfind("shard-", 0) == 0)
      ++snapshots;
  EXPECT_EQ(snapshots, 2u);

  ShardGroup restored(GroupConfig(2, 2));
  ASSERT_TRUE(restored.RestoreFromDir(dir).ok());
  EXPECT_EQ(restored.stats().frames_accepted, second_cut);
  restored.Drain();
  std::filesystem::remove_all(dir);
}

TEST(FleetSnapshotTest, CorruptedShardSnapshotIsRejectedBeforeRestore) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string dir = TempDir("navshard_fleet_corrupt_shard");

  {
    ShardGroup group(GroupConfig(4, 2));
    for (const auto id : ids) group.RegisterVehicle(id);
    for (std::size_t i = 0; i < stream.size() / 2; ++i)
      group.Submit(stream[i]);
    ASSERT_TRUE(group.Checkpoint(dir).ok());
    group.Drain();
  }

  // Damage ONE per-shard snapshot; the manifest itself stays valid. The
  // restore must fail against the manifest's CRC without touching state.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-0.", 0) == 0) CorruptFile(entry.path().string());
  }
  ShardGroup restored(GroupConfig(4, 2));
  const util::Status status = restored.RestoreFromDir(dir);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(restored.vehicle_count(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(FleetSnapshotTest, CorruptedManifestIsRejected) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string dir = TempDir("navshard_fleet_corrupt_manifest");

  {
    ShardGroup group(GroupConfig(2, 1));
    for (const auto id : ids) group.RegisterVehicle(id);
    for (std::size_t i = 0; i < stream.size() / 2; ++i)
      group.Submit(stream[i]);
    ASSERT_TRUE(group.Checkpoint(dir).ok());
    group.Drain();
  }

  CorruptFile(dir + "/fleet.manifest");
  ShardGroup restored(GroupConfig(2, 1));
  EXPECT_FALSE(restored.RestoreFromDir(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(FleetSnapshotTest, MissingShardSnapshotIsRejected) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string dir = TempDir("navshard_fleet_missing_shard");

  {
    ShardGroup group(GroupConfig(2, 1));
    for (const auto id : ids) group.RegisterVehicle(id);
    for (std::size_t i = 0; i < stream.size() / 4; ++i)
      group.Submit(stream[i]);
    ASSERT_TRUE(group.Checkpoint(dir).ok());
    group.Drain();
  }

  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-1.", 0) == 0)
      std::filesystem::remove(entry.path());
  }
  ShardGroup restored(GroupConfig(2, 1));
  EXPECT_FALSE(restored.RestoreFromDir(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(FleetSnapshotTest, RestoreRejectsMismatchedShardCount) {
  // The manifest pins the ring parameters: restoring 4 shards' state into
  // a 2-shard group would silently re-route vehicles, so it must refuse.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string dir = TempDir("navshard_fleet_wrong_count");

  {
    ShardGroup group(GroupConfig(4, 1));
    for (const auto id : ids) group.RegisterVehicle(id);
    for (std::size_t i = 0; i < stream.size() / 4; ++i)
      group.Submit(stream[i]);
    ASSERT_TRUE(group.Checkpoint(dir).ok());
    group.Drain();
  }

  ShardGroup restored(GroupConfig(2, 1));
  EXPECT_FALSE(restored.RestoreFromDir(dir).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace navarchos::shard
