// Persistence round-trips: GBT models and fleet datasets.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "detect/gbt.h"
#include "telemetry/io.h"
#include "util/rng.h"

namespace navarchos {
namespace {

TEST(GbtSerialisationTest, RoundTripPredictsIdentically) {
  util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    x.push_back({a, b});
    y.push_back(std::sin(a) + 0.5 * b);
  }
  detect::GbtRegressor model;
  model.Fit(x, y);
  const std::string text = model.Serialise();

  detect::GbtRegressor loaded;
  ASSERT_TRUE(loaded.Deserialise(text));
  EXPECT_EQ(loaded.tree_count(), model.tree_count());
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> q{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    EXPECT_DOUBLE_EQ(loaded.Predict(q), model.Predict(q));
  }
}

TEST(GbtSerialisationTest, RejectsGarbage) {
  detect::GbtRegressor model;
  EXPECT_FALSE(model.Deserialise("not a model"));
  EXPECT_FALSE(model.fitted());
  EXPECT_FALSE(model.Deserialise("gbt v1\nbase abc\n"));
}

TEST(GbtSerialisationTest, RejectsTruncatedTree) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back({rng.Gaussian()});
    y.push_back(x.back()[0]);
  }
  detect::GbtRegressor model;
  model.Fit(x, y);
  std::string text = model.Serialise();
  text.resize(text.size() / 2);  // truncate mid-tree
  detect::GbtRegressor loaded;
  EXPECT_FALSE(loaded.Deserialise(text));
}

TEST(FleetIoTest, RoundTripPreservesRecordsAndEvents) {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 20;
  const auto fleet = telemetry::GenerateFleet(config);
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_io";
  ASSERT_TRUE(telemetry::WriteFleetCsv(prefix, fleet).ok());

  telemetry::FleetDataset loaded;
  ASSERT_TRUE(telemetry::ReadFleetCsv(prefix, &loaded).ok());
  ASSERT_EQ(loaded.vehicles.size(), fleet.vehicles.size());
  EXPECT_EQ(loaded.TotalRecords(), fleet.TotalRecords());
  EXPECT_EQ(loaded.TotalRecordedEvents(), fleet.TotalRecordedEvents());

  // Per-vehicle spot checks (vehicles come back sorted by id).
  for (std::size_t v = 0; v < fleet.vehicles.size(); ++v) {
    const auto& original = fleet.vehicles[v];
    const telemetry::VehicleHistory* match = nullptr;
    for (const auto& candidate : loaded.vehicles)
      if (candidate.spec.id == original.spec.id) match = &candidate;
    ASSERT_NE(match, nullptr);
    ASSERT_EQ(match->records.size(), original.records.size());
    for (std::size_t i = 0; i < original.records.size(); i += 101) {
      EXPECT_EQ(match->records[i].timestamp, original.records[i].timestamp);
      for (int pid = 0; pid < telemetry::kNumPids; ++pid) {
        EXPECT_NEAR(match->records[i].pids[static_cast<std::size_t>(pid)],
                    original.records[i].pids[static_cast<std::size_t>(pid)], 1e-3);
      }
    }
    EXPECT_EQ(match->events.size(), original.events.size());
    EXPECT_EQ(match->RecordedRepairTimes(), original.RecordedRepairTimes());
  }
}

TEST(FleetIoTest, ReportingInferredFromRecordedMaintenance) {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 20;
  const auto fleet = telemetry::GenerateFleet(config);
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_io2";
  ASSERT_TRUE(telemetry::WriteFleetCsv(prefix, fleet).ok());
  telemetry::FleetDataset loaded;
  ASSERT_TRUE(telemetry::ReadFleetCsv(prefix, &loaded).ok());
  for (const auto& vehicle : loaded.vehicles) {
    bool has_recorded_maintenance = false;
    for (const auto& event : vehicle.events)
      if (event.recorded && telemetry::IsMaintenanceEvent(event.type))
        has_recorded_maintenance = true;
    EXPECT_EQ(vehicle.reporting, has_recorded_maintenance);
  }
}

TEST(FleetIoTest, MissingFilesFail) {
  telemetry::FleetDataset fleet;
  EXPECT_FALSE(telemetry::ReadFleetCsv("/nonexistent/prefix", &fleet).ok());
}

}  // namespace
}  // namespace navarchos
