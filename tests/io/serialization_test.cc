// Persistence round-trips: GBT models and fleet datasets.
#include <cmath>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "detect/gbt.h"
#include "telemetry/io.h"
#include "util/rng.h"

namespace navarchos {
namespace {

/// Writes `content` verbatim (binary mode: line endings stay as given).
void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

/// Writes a minimal valid events CSV so ReadFleetCsv can open the pair.
void WriteEventsFile(const std::string& prefix) {
  WriteFile(prefix + "_events.csv",
            "vehicle_id,timestamp_min,type,code,recorded\n1,100,service,S1,1\n");
}

constexpr char kRecordsHeader[] =
    "vehicle_id,timestamp_min,rpm,speed,coolantTemp,intakeTemp,mapIntake,"
    "MAFairFlowRate\n";

TEST(GbtSerialisationTest, RoundTripPredictsIdentically) {
  util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    x.push_back({a, b});
    y.push_back(std::sin(a) + 0.5 * b);
  }
  detect::GbtRegressor model;
  model.Fit(x, y);
  const std::string text = model.Serialise();

  detect::GbtRegressor loaded;
  ASSERT_TRUE(loaded.Deserialise(text));
  EXPECT_EQ(loaded.tree_count(), model.tree_count());
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> q{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    EXPECT_DOUBLE_EQ(loaded.Predict(q), model.Predict(q));
  }
}

TEST(GbtSerialisationTest, RejectsGarbage) {
  detect::GbtRegressor model;
  EXPECT_FALSE(model.Deserialise("not a model"));
  EXPECT_FALSE(model.fitted());
  EXPECT_FALSE(model.Deserialise("gbt v1\nbase abc\n"));
}

TEST(GbtSerialisationTest, RejectsTruncatedTree) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back({rng.Gaussian()});
    y.push_back(x.back()[0]);
  }
  detect::GbtRegressor model;
  model.Fit(x, y);
  std::string text = model.Serialise();
  text.resize(text.size() / 2);  // truncate mid-tree
  detect::GbtRegressor loaded;
  EXPECT_FALSE(loaded.Deserialise(text));
}

TEST(FleetIoTest, RoundTripPreservesRecordsAndEvents) {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 20;
  const auto fleet = telemetry::GenerateFleet(config);
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_io";
  ASSERT_TRUE(telemetry::WriteFleetCsv(prefix, fleet).ok());

  telemetry::FleetDataset loaded;
  ASSERT_TRUE(telemetry::ReadFleetCsv(prefix, &loaded).ok());
  ASSERT_EQ(loaded.vehicles.size(), fleet.vehicles.size());
  EXPECT_EQ(loaded.TotalRecords(), fleet.TotalRecords());
  EXPECT_EQ(loaded.TotalRecordedEvents(), fleet.TotalRecordedEvents());

  // Per-vehicle spot checks (vehicles come back sorted by id).
  for (std::size_t v = 0; v < fleet.vehicles.size(); ++v) {
    const auto& original = fleet.vehicles[v];
    const telemetry::VehicleHistory* match = nullptr;
    for (const auto& candidate : loaded.vehicles)
      if (candidate.spec.id == original.spec.id) match = &candidate;
    ASSERT_NE(match, nullptr);
    ASSERT_EQ(match->records.size(), original.records.size());
    for (std::size_t i = 0; i < original.records.size(); i += 101) {
      EXPECT_EQ(match->records[i].timestamp, original.records[i].timestamp);
      for (int pid = 0; pid < telemetry::kNumPids; ++pid) {
        EXPECT_NEAR(match->records[i].pids[static_cast<std::size_t>(pid)],
                    original.records[i].pids[static_cast<std::size_t>(pid)], 1e-3);
      }
    }
    EXPECT_EQ(match->events.size(), original.events.size());
    EXPECT_EQ(match->RecordedRepairTimes(), original.RecordedRepairTimes());
  }
}

TEST(FleetIoTest, ReportingInferredFromRecordedMaintenance) {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 20;
  const auto fleet = telemetry::GenerateFleet(config);
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_io2";
  ASSERT_TRUE(telemetry::WriteFleetCsv(prefix, fleet).ok());
  telemetry::FleetDataset loaded;
  ASSERT_TRUE(telemetry::ReadFleetCsv(prefix, &loaded).ok());
  for (const auto& vehicle : loaded.vehicles) {
    bool has_recorded_maintenance = false;
    for (const auto& event : vehicle.events)
      if (event.recorded && telemetry::IsMaintenanceEvent(event.type))
        has_recorded_maintenance = true;
    EXPECT_EQ(vehicle.reporting, has_recorded_maintenance);
  }
}

TEST(FleetIoTest, MissingFilesFail) {
  telemetry::FleetDataset fleet;
  EXPECT_FALSE(telemetry::ReadFleetCsv("/nonexistent/prefix", &fleet).ok());
}

TEST(FleetIoTest, MalformedCellFailsWithFileAndLine) {
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_bad_cell";
  WriteFile(prefix + "_records.csv",
            std::string(kRecordsHeader) +
                "1,100,2000,60,90,25,45,15\n"
                "1,101,2000,sixty,90,25,45,15\n");
  WriteEventsFile(prefix);
  telemetry::FleetDataset fleet;
  const auto status = telemetry::ReadFleetCsv(prefix, &fleet);
  ASSERT_FALSE(status.ok());
  // The bad cell is on data row 1 = file line 3 (line 1 is the header).
  EXPECT_NE(status.message().find("_records.csv:3"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("sixty"), std::string::npos) << status.message();
}

TEST(FleetIoTest, WrongColumnCountFailsWithFileAndLine) {
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_bad_cols";
  WriteFile(prefix + "_records.csv",
            std::string(kRecordsHeader) + "1,100,2000,60,90\n");
  WriteEventsFile(prefix);
  telemetry::FleetDataset fleet;
  const auto status = telemetry::ReadFleetCsv(prefix, &fleet);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("_records.csv:2"), std::string::npos)
      << status.message();
}

TEST(FleetIoTest, CrlfAndMissingTrailingNewlineTolerated) {
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_crlf";
  WriteFile(prefix + "_records.csv",
            "vehicle_id,timestamp_min,rpm,speed,coolantTemp,intakeTemp,"
            "mapIntake,MAFairFlowRate\r\n"
            "1,100,2000,60,90,25,45,15\r\n"
            "1,101,2100,62,90,25,45,15");  // no trailing newline
  WriteEventsFile(prefix);
  telemetry::FleetDataset fleet;
  telemetry::FleetCsvStats stats;
  ASSERT_TRUE(telemetry::ReadFleetCsv(prefix, &fleet, &stats).ok());
  EXPECT_EQ(stats.record_rows, 2u);
  EXPECT_EQ(stats.skipped_record_rows, 0u);
  ASSERT_EQ(fleet.vehicles.size(), 1u);
  ASSERT_EQ(fleet.vehicles[0].records.size(), 2u);
  EXPECT_EQ(fleet.vehicles[0].records[1].timestamp, 101);
}

TEST(FleetIoTest, OutOfRangeRowsAreSkippedAndCounted) {
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_range";
  WriteFile(prefix + "_records.csv",
            std::string(kRecordsHeader) +
                "1,100,2000,60,90,25,45,15\n"
                // timestamp overflows int64: parses but cannot be represented.
                "1,99999999999999999999999,2000,60,90,25,45,15\n"
                // MAF overflows double.
                "1,102,2000,60,90,25,45,1e999\n"
                "1,103,2000,60,90,25,45,15\n");
  WriteFile(prefix + "_events.csv",
            "vehicle_id,timestamp_min,type,code,recorded\n"
            "1,100,service,S1,1\n"
            "99999999999999999999999,101,service,S2,1\n");
  telemetry::FleetDataset fleet;
  telemetry::FleetCsvStats stats;
  ASSERT_TRUE(telemetry::ReadFleetCsv(prefix, &fleet, &stats).ok());
  EXPECT_EQ(stats.record_rows, 2u);
  EXPECT_EQ(stats.skipped_record_rows, 2u);
  EXPECT_EQ(stats.event_rows, 1u);
  EXPECT_EQ(stats.skipped_event_rows, 1u);
  ASSERT_EQ(fleet.vehicles.size(), 1u);
  EXPECT_EQ(fleet.vehicles[0].records.size(), 2u);
  EXPECT_EQ(fleet.vehicles[0].records[1].timestamp, 103);
}

TEST(FleetIoTest, NanPidValuesRoundTripVerbatim) {
  // A channel that stops reporting serialises as "nan"; the importer keeps
  // it (the pipeline's filters classify it downstream, see DataQualityReport).
  telemetry::FleetDataset fleet;
  telemetry::VehicleHistory vehicle;
  vehicle.spec.id = 1;
  telemetry::Record record;
  record.vehicle_id = 1;
  record.timestamp = 100;
  record.pids = {2000.0, 60.0, std::numeric_limits<double>::quiet_NaN(),
                 25.0, 45.0, 15.0};
  vehicle.records.push_back(record);
  fleet.vehicles.push_back(vehicle);
  const std::string prefix = std::string(::testing::TempDir()) + "/fleet_nan";
  ASSERT_TRUE(telemetry::WriteFleetCsv(prefix, fleet).ok());

  telemetry::FleetDataset loaded;
  telemetry::FleetCsvStats stats;
  ASSERT_TRUE(telemetry::ReadFleetCsv(prefix, &loaded, &stats).ok());
  EXPECT_EQ(stats.record_rows, 1u);
  EXPECT_EQ(stats.skipped_record_rows, 0u);
  ASSERT_EQ(loaded.vehicles.size(), 1u);
  ASSERT_EQ(loaded.vehicles[0].records.size(), 1u);
  EXPECT_TRUE(std::isnan(loaded.vehicles[0].records[0].pids[2]));
  EXPECT_DOUBLE_EQ(loaded.vehicles[0].records[0].pids[0], 2000.0);
}

}  // namespace
}  // namespace navarchos
