#include "transform/standardizer.h"

#include <gtest/gtest.h>

#include "transform/day_aggregation.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos::transform {
namespace {

TEST(StandardizerTest, TransformedSampleHasZeroMeanUnitVariance) {
  util::Rng rng(1);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 500; ++i)
    samples.push_back({rng.Gaussian(10.0, 3.0), rng.Gaussian(-5.0, 0.5)});
  Standardizer standardizer;
  standardizer.Fit(samples);
  const auto z = standardizer.ApplyAll(samples);
  std::vector<double> col0, col1;
  for (const auto& row : z) {
    col0.push_back(row[0]);
    col1.push_back(row[1]);
  }
  EXPECT_NEAR(util::Mean(col0), 0.0, 1e-9);
  EXPECT_NEAR(util::StdDev(col0), 1.0, 1e-9);
  EXPECT_NEAR(util::Mean(col1), 0.0, 1e-9);
  EXPECT_NEAR(util::StdDev(col1), 1.0, 1e-9);
}

TEST(StandardizerTest, ConstantFeaturePassesThroughCentred) {
  std::vector<std::vector<double>> samples(10, {7.0});
  Standardizer standardizer;
  standardizer.Fit(samples);
  EXPECT_DOUBLE_EQ(standardizer.Apply({7.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(standardizer.Apply({9.0})[0], 2.0);  // unit scale
}

TEST(StandardizerTest, FittedFlag) {
  Standardizer standardizer;
  EXPECT_FALSE(standardizer.fitted());
  standardizer.Fit({{1.0}, {2.0}});
  EXPECT_TRUE(standardizer.fitted());
}

TEST(DayAggregationTest, GroupsByCalendarDay) {
  std::vector<telemetry::Record> records;
  for (int day = 0; day < 3; ++day) {
    for (int m = 0; m < 50; ++m) {
      telemetry::Record record;
      record.vehicle_id = 4;
      record.timestamp = day * telemetry::kMinutesPerDay + 600 + m;
      record.pids = {2000.0, 50.0 + day, 90.0, 25.0, 45.0, 15.0};
      records.push_back(record);
    }
  }
  const auto summaries = AggregateByDay(4, records, 20);
  ASSERT_EQ(summaries.size(), 3u);
  for (int day = 0; day < 3; ++day) {
    EXPECT_EQ(summaries[static_cast<std::size_t>(day)].day, day);
    EXPECT_EQ(summaries[static_cast<std::size_t>(day)].vehicle_id, 4);
    EXPECT_EQ(summaries[static_cast<std::size_t>(day)].record_count, 50);
    // Mean speed channel (index 1) equals the injected per-day speed.
    EXPECT_NEAR(summaries[static_cast<std::size_t>(day)].features[1], 50.0 + day, 1e-9);
    // Std of a constant channel is 0.
    EXPECT_NEAR(summaries[static_cast<std::size_t>(day)].features[6], 0.0, 1e-9);
  }
}

TEST(DayAggregationTest, SkipsSparseDays) {
  std::vector<telemetry::Record> records;
  for (int m = 0; m < 5; ++m) {
    telemetry::Record record;
    record.timestamp = m;
    record.pids = {2000.0, 50.0, 90.0, 25.0, 45.0, 15.0};
    records.push_back(record);
  }
  EXPECT_TRUE(AggregateByDay(0, records, 20).empty());
}

TEST(DayAggregationTest, KmDrivenFromSpeedSum) {
  std::vector<telemetry::Record> records;
  for (int m = 0; m < 60; ++m) {
    telemetry::Record record;
    record.timestamp = m;
    record.pids = {2000.0, 60.0, 90.0, 25.0, 45.0, 15.0};
    records.push_back(record);
  }
  const auto summaries = AggregateByDay(0, records, 20);
  ASSERT_EQ(summaries.size(), 1u);
  // 60 minutes at 60 km/h = 60 km.
  EXPECT_NEAR(summaries[0].km_driven, 60.0, 1e-9);
}

TEST(DayAggregationTest, FeatureNamesHaveMeanAndStd) {
  const auto names = DaySummaryFeatureNames();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names[0], "mean_rpm");
  EXPECT_EQ(names[6], "std_rpm");
}

}  // namespace
}  // namespace navarchos::transform
