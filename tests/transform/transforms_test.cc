#include <cmath>

#include <gtest/gtest.h>

#include "transform/basic_transforms.h"
#include "transform/extended_transforms.h"
#include "transform/transformer.h"
#include "util/rng.h"

namespace navarchos::transform {
namespace {

using telemetry::kNumPids;
using telemetry::Record;

Record MakeRecord(telemetry::Minute t, double base) {
  Record record;
  record.timestamp = t;
  for (int i = 0; i < kNumPids; ++i)
    record.pids[static_cast<std::size_t>(i)] = base + i;
  return record;
}

TEST(RawTransformTest, EmitsEveryRecordUnchanged) {
  RawTransform transform;
  const Record record = MakeRecord(5, 10.0);
  const auto sample = transform.Collect(record);
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->timestamp, 5);
  ASSERT_EQ(sample->features.size(), static_cast<std::size_t>(kNumPids));
  for (int i = 0; i < kNumPids; ++i)
    EXPECT_DOUBLE_EQ(sample->features[static_cast<std::size_t>(i)], 10.0 + i);
}

TEST(RawTransformTest, FeatureNamesMatchPids) {
  RawTransform transform;
  const auto names = transform.FeatureNames();
  ASSERT_EQ(names.size(), static_cast<std::size_t>(kNumPids));
  EXPECT_EQ(names[0], "rpm");
  EXPECT_EQ(names[5], "MAFairFlowRate");
}

TEST(DeltaTransformTest, FirstRecordProducesNothing) {
  DeltaTransform transform;
  EXPECT_FALSE(transform.Collect(MakeRecord(0, 1.0)).has_value());
}

TEST(DeltaTransformTest, EmitsDifferences) {
  DeltaTransform transform;
  transform.Collect(MakeRecord(0, 1.0));
  const auto sample = transform.Collect(MakeRecord(1, 4.5));
  ASSERT_TRUE(sample.has_value());
  for (double feature : sample->features) EXPECT_DOUBLE_EQ(feature, 3.5);
}

TEST(DeltaTransformTest, ResetForgetsPrevious) {
  DeltaTransform transform;
  transform.Collect(MakeRecord(0, 1.0));
  transform.Reset();
  EXPECT_FALSE(transform.Collect(MakeRecord(1, 2.0)).has_value());
}

TEST(WindowedTransformTest, EmissionCadence) {
  TransformOptions options;
  options.window = 10;
  options.stride = 3;
  MeanAggregationTransform transform(options);
  int emitted = 0;
  for (int i = 0; i < 30; ++i)
    if (transform.Collect(MakeRecord(i, static_cast<double>(i)))) ++emitted;
  // First emission at record 10 (window full), then every 3 records:
  // records 10, 13, 16, 19, 22, 25, 28 -> 7 samples.
  EXPECT_EQ(emitted, 7);
}

TEST(WindowedTransformTest, ResetClearsWindow) {
  TransformOptions options;
  options.window = 5;
  options.stride = 1;
  MeanAggregationTransform transform(options);
  for (int i = 0; i < 5; ++i) transform.Collect(MakeRecord(i, 1.0));
  transform.Reset();
  int emitted = 0;
  for (int i = 0; i < 4; ++i)
    if (transform.Collect(MakeRecord(i, 1.0))) ++emitted;
  EXPECT_EQ(emitted, 0);  // window must refill
}

TEST(MeanAggregationTest, ComputesWindowMeans) {
  TransformOptions options;
  options.window = 4;
  options.stride = 1;
  MeanAggregationTransform transform(options);
  std::optional<TransformedSample> sample;
  for (int i = 1; i <= 4; ++i) sample = transform.Collect(MakeRecord(i, static_cast<double>(i)));
  ASSERT_TRUE(sample.has_value());
  // Channel 0 saw values 1,2,3,4 -> mean 2.5; channel k adds +k.
  for (int k = 0; k < kNumPids; ++k)
    EXPECT_DOUBLE_EQ(sample->features[static_cast<std::size_t>(k)], 2.5 + k);
}

TEST(CorrelationTransformTest, FeatureCountIsUpperTriangle) {
  TransformOptions options;
  options.window = 8;
  CorrelationTransform transform(options);
  EXPECT_EQ(transform.FeatureNames().size(), CorrelationFeatureCount(kNumPids));
  EXPECT_EQ(CorrelationFeatureCount(6), 15u);
}

TEST(CorrelationTransformTest, PerfectlyCoupledChannels) {
  TransformOptions options;
  options.window = 16;
  options.stride = 1;
  CorrelationTransform transform(options);
  util::Rng rng(1);
  std::optional<TransformedSample> sample;
  for (int i = 0; i < 16; ++i) {
    Record record;
    record.timestamp = i;
    const double x = rng.Gaussian();
    // All channels equal to x -> every pair perfectly correlated.
    for (int k = 0; k < kNumPids; ++k) record.pids[static_cast<std::size_t>(k)] = x;
    sample = transform.Collect(record);
  }
  ASSERT_TRUE(sample.has_value());
  for (double feature : sample->features) EXPECT_NEAR(feature, 1.0, 1e-9);
}

TEST(CorrelationTransformTest, DetectsCouplingBreak) {
  // Two streams: one where channel 5 follows channel 0, one where it is
  // independent - the rpm~MAF style signature of a MAF fault.
  TransformOptions options;
  options.window = 64;
  options.stride = 1;
  auto run = [&](bool coupled) {
    CorrelationTransform transform(options);
    util::Rng rng(2);
    std::optional<TransformedSample> sample;
    for (int i = 0; i < 64; ++i) {
      Record record;
      record.timestamp = i;
      const double x = rng.Gaussian();
      for (int k = 0; k < kNumPids; ++k)
        record.pids[static_cast<std::size_t>(k)] = rng.Gaussian();
      record.pids[0] = x;
      record.pids[5] = coupled ? x + 0.1 * rng.Gaussian() : rng.Gaussian();
      sample = transform.Collect(record);
    }
    return sample->features[4];  // rpm~MAFairFlowRate
  };
  EXPECT_GT(run(true), 0.9);
  EXPECT_LT(std::fabs(run(false)), 0.5);
}

TEST(CorrelationTransformTest, FeaturesAreBounded) {
  TransformOptions options;
  options.window = 12;
  options.stride = 1;
  CorrelationTransform transform(options);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    Record record;
    record.timestamp = i;
    for (int k = 0; k < kNumPids; ++k)
      record.pids[static_cast<std::size_t>(k)] = rng.Gaussian(0.0, 10.0);
    if (auto sample = transform.Collect(record)) {
      for (double feature : sample->features) {
        EXPECT_GE(feature, -1.0);
        EXPECT_LE(feature, 1.0);
      }
    }
  }
}

TEST(HistogramTransformTest, PerChannelMassSumsToOne) {
  TransformOptions options;
  options.window = 20;
  options.stride = 1;
  options.histogram_bins = 5;
  HistogramTransform transform(options);
  util::Rng rng(4);
  std::optional<TransformedSample> sample;
  for (int i = 0; i < 20; ++i) {
    Record record;
    record.timestamp = i;
    record.pids = {2000.0 + rng.Gaussian(0, 200), 60.0, 90.0, 25.0, 45.0, 15.0};
    sample = transform.Collect(record);
  }
  ASSERT_TRUE(sample.has_value());
  for (int channel = 0; channel < kNumPids; ++channel) {
    double mass = 0.0;
    for (int b = 0; b < 5; ++b)
      mass += sample->features[static_cast<std::size_t>(channel * 5 + b)];
    EXPECT_NEAR(mass, 1.0, 1e-9);
  }
}

TEST(SpectralTransformTest, BandEnergiesNormalised) {
  TransformOptions options;
  options.window = 32;
  options.stride = 1;
  options.spectral_bands = 4;
  SpectralTransform transform(options);
  util::Rng rng(5);
  std::optional<TransformedSample> sample;
  for (int i = 0; i < 32; ++i) {
    Record record;
    record.timestamp = i;
    for (int k = 0; k < kNumPids; ++k)
      record.pids[static_cast<std::size_t>(k)] = std::sin(0.3 * i) + rng.Gaussian(0, 0.1);
    sample = transform.Collect(record);
  }
  ASSERT_TRUE(sample.has_value());
  for (int channel = 0; channel < kNumPids; ++channel) {
    double mass = 0.0;
    for (int b = 0; b < 4; ++b) {
      const double e = sample->features[static_cast<std::size_t>(channel * 4 + b)];
      EXPECT_GE(e, 0.0);
      mass += e;
    }
    EXPECT_NEAR(mass, 1.0, 1e-6);
  }
}

TEST(FactoryTest, AllKindsConstructible) {
  for (int kind = 0; kind <= 5; ++kind) {
    const auto transformer = MakeTransformer(static_cast<TransformKind>(kind));
    ASSERT_NE(transformer, nullptr);
    EXPECT_FALSE(transformer->Name().empty());
    EXPECT_GT(transformer->FeatureCount(), 0u);
  }
}

TEST(FactoryTest, EffectiveStrideDependsOnKind) {
  TransformOptions options;
  options.stride = 25;
  EXPECT_EQ(EffectiveStride(TransformKind::kRaw, options), 1);
  EXPECT_EQ(EffectiveStride(TransformKind::kDelta, options), 1);
  EXPECT_EQ(EffectiveStride(TransformKind::kCorrelation, options), 25);
  EXPECT_EQ(EffectiveStride(TransformKind::kMeanAggregation, options), 25);
}

TEST(FactoryTest, NamesMatchKinds) {
  EXPECT_STREQ(TransformKindName(TransformKind::kRaw), "raw");
  EXPECT_STREQ(TransformKindName(TransformKind::kCorrelation), "correlation");
  EXPECT_STREQ(TransformKindName(TransformKind::kMeanAggregation), "mean_agr");
  EXPECT_STREQ(TransformKindName(TransformKind::kDelta), "delta");
}

}  // namespace
}  // namespace navarchos::transform
