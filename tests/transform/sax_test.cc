#include "transform/sax.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace navarchos::transform {
namespace {

using telemetry::kNumPids;

TEST(GaussianBreakpointsTest, KnownQuartiles) {
  const auto breakpoints = GaussianBreakpoints(4);
  ASSERT_EQ(breakpoints.size(), 3u);
  EXPECT_NEAR(breakpoints[0], -0.6745, 1e-3);
  EXPECT_NEAR(breakpoints[1], 0.0, 1e-6);
  EXPECT_NEAR(breakpoints[2], 0.6745, 1e-3);
}

TEST(GaussianBreakpointsTest, MonotoneAndSymmetric) {
  const auto breakpoints = GaussianBreakpoints(8);
  for (std::size_t i = 1; i < breakpoints.size(); ++i)
    EXPECT_GT(breakpoints[i], breakpoints[i - 1]);
  for (std::size_t i = 0; i < breakpoints.size(); ++i)
    EXPECT_NEAR(breakpoints[i], -breakpoints[breakpoints.size() - 1 - i], 1e-6);
}

SaxTransform MakeSax(int window = 48, int segments = 8, int alphabet = 4) {
  TransformOptions options;
  options.window = window;
  options.stride = 1;
  SaxOptions sax;
  sax.segments = segments;
  sax.alphabet = alphabet;
  return SaxTransform(options, sax);
}

TEST(SaxTransformTest, SymboliseRampCoversAlphabet) {
  const SaxTransform sax = MakeSax();
  std::vector<double> ramp;
  for (int i = 0; i < 48; ++i) ramp.push_back(static_cast<double>(i));
  const auto symbols = sax.Symbolise(ramp);
  ASSERT_EQ(symbols.size(), 8u);
  EXPECT_EQ(symbols.front(), 0);
  EXPECT_EQ(symbols.back(), 3);
  for (std::size_t i = 1; i < symbols.size(); ++i)
    EXPECT_GE(symbols[i], symbols[i - 1]);
}

TEST(SaxTransformTest, SymboliseLevelInvariant) {
  const SaxTransform sax = MakeSax();
  util::Rng rng(1);
  std::vector<double> base, shifted;
  for (int i = 0; i < 48; ++i) {
    const double v = rng.Gaussian();
    base.push_back(v);
    shifted.push_back(100.0 + 5.0 * v);  // affine shift + scale
  }
  EXPECT_EQ(sax.Symbolise(base), sax.Symbolise(shifted));
}

TEST(SaxTransformTest, FeatureMassNormalised) {
  TransformOptions options;
  options.window = 48;
  options.stride = 1;
  SaxOptions sax_options;
  SaxTransform sax(options, sax_options);
  util::Rng rng(2);
  std::optional<TransformedSample> sample;
  for (int i = 0; i < 48; ++i) {
    telemetry::Record record;
    record.timestamp = i;
    for (int k = 0; k < kNumPids; ++k)
      record.pids[static_cast<std::size_t>(k)] = rng.Gaussian();
    sample = sax.Collect(record);
  }
  ASSERT_TRUE(sample.has_value());
  const int unigrams = sax_options.alphabet;
  const int bigrams = sax_options.alphabet * sax_options.alphabet;
  for (int channel = 0; channel < kNumPids; ++channel) {
    const std::size_t base = static_cast<std::size_t>(channel * (unigrams + bigrams));
    double unigram_mass = 0.0, bigram_mass = 0.0;
    for (int u = 0; u < unigrams; ++u) unigram_mass += sample->features[base + static_cast<std::size_t>(u)];
    for (int b = 0; b < bigrams; ++b)
      bigram_mass += sample->features[base + static_cast<std::size_t>(unigrams + b)];
    EXPECT_NEAR(unigram_mass, 1.0, 1e-9);
    EXPECT_NEAR(bigram_mass, 1.0, 1e-9);
  }
}

TEST(SaxTransformTest, FeatureNamesMatchCount) {
  const SaxTransform sax = MakeSax();
  EXPECT_EQ(sax.FeatureNames().size(), static_cast<std::size_t>(kNumPids * (4 + 16)));
}

TEST(SaxTransformTest, DynamicsChangeMovesBigramDistribution) {
  // Smooth ramp vs rapid oscillation: same marginal spread, different
  // transitions - the "artificial event" signal the paper's future work
  // aims for.
  const SaxTransform sax = MakeSax(48, 16, 4);
  std::vector<double> smooth, oscillating;
  for (int i = 0; i < 48; ++i) {
    smooth.push_back(static_cast<double>(i % 24));
    // Oscillation at the PAA segment scale (3 samples per segment), so the
    // segment means alternate between the extremes.
    oscillating.push_back(i % 6 < 3 ? 0.0 : 23.0);
  }
  const auto a = sax.Symbolise(smooth);
  const auto b = sax.Symbolise(oscillating);
  // Count monotone-adjacent transitions per stream.
  int smooth_jumps = 0, oscillating_jumps = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    smooth_jumps += std::abs(a[i] - a[i - 1]) > 1 ? 1 : 0;
    oscillating_jumps += std::abs(b[i] - b[i - 1]) > 1 ? 1 : 0;
  }
  EXPECT_LT(smooth_jumps, oscillating_jumps);
}

}  // namespace
}  // namespace navarchos::transform
