#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "neighbors/agglomerative.h"
#include "neighbors/knn.h"
#include "neighbors/lof.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos::neighbors {
namespace {

TEST(KnnTest, FindsExactNearestNeighbours) {
  KnnIndex index({{0.0, 0.0}, {1.0, 0.0}, {0.0, 2.0}, {5.0, 5.0}});
  const auto hits = index.Query(std::vector<double>{0.1, 0.0}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_EQ(hits[1].index, 1u);
  EXPECT_NEAR(hits[0].distance, 0.1, 1e-12);
  EXPECT_NEAR(hits[1].distance, 0.9, 1e-12);
}

TEST(KnnTest, ExcludeSkipsSelf) {
  KnnIndex index({{0.0}, {1.0}, {3.0}});
  const auto hits = index.Query(index.Point(0), 1, 0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 1u);
}

TEST(KnnTest, KLargerThanSetReturnsAll) {
  KnnIndex index({{0.0}, {1.0}});
  EXPECT_EQ(index.Query(std::vector<double>{0.5}, 10).size(), 2u);
}

TEST(KnnTest, NearestDistanceMatchesQuery) {
  util::Rng rng(1);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 50; ++i) points.push_back({rng.Gaussian(), rng.Gaussian()});
  KnnIndex index(points);
  const std::vector<double> query{0.3, -0.2};
  EXPECT_DOUBLE_EQ(index.NearestDistance(query), index.Query(query, 1)[0].distance);
}

TEST(KnnTest, MatchesBruteForceOnRandomData) {
  util::Rng rng(2);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 80; ++i) points.push_back({rng.Gaussian(), rng.Gaussian(), rng.Gaussian()});
  KnnIndex index(points);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> query{rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
    const auto hits = index.Query(query, 5);
    // Brute force.
    std::vector<double> distances;
    for (const auto& point : points)
      distances.push_back(util::EuclideanDistance(point, query));
    std::sort(distances.begin(), distances.end());
    for (int k = 0; k < 5; ++k)
      EXPECT_NEAR(hits[static_cast<std::size_t>(k)].distance,
                  distances[static_cast<std::size_t>(k)], 1e-9);
  }
}

TEST(LofTest, IsolatedPointScoresHigh) {
  util::Rng rng(3);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) points.push_back({rng.Gaussian(), rng.Gaussian()});
  LofModel lof(points, 10);
  const double inlier_score = lof.Score(std::vector<double>{0.0, 0.0});
  const double outlier_score = lof.Score(std::vector<double>{12.0, 12.0});
  EXPECT_LT(inlier_score, 1.6);
  EXPECT_GT(outlier_score, 3.0);
}

TEST(LofTest, FitScoresFlagPlantedOutlier) {
  util::Rng rng(4);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) points.push_back({rng.Gaussian(), rng.Gaussian()});
  points.push_back({15.0, -15.0});  // planted outlier at index 60
  LofModel lof(points, 10);
  const auto scores = lof.FitScores();
  const std::size_t argmax =
      std::max_element(scores.begin(), scores.end()) - scores.begin();
  EXPECT_EQ(argmax, 60u);
}

TEST(LofTest, UniformClusterScoresNearOne) {
  util::Rng rng(5);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 200; ++i) points.push_back({rng.Uniform(), rng.Uniform()});
  LofModel lof(points, 15);
  const auto scores = lof.FitScores();
  EXPECT_NEAR(util::Mean(scores), 1.0, 0.15);
}

TEST(AgglomerativeTest, MergeCountIsLeavesMinusOne) {
  util::Rng rng(6);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 25; ++i) points.push_back({rng.Gaussian(), rng.Gaussian()});
  const Dendrogram dendrogram = AgglomerativeAverageLinkage(points);
  EXPECT_EQ(dendrogram.leaf_count, 25);
  EXPECT_EQ(dendrogram.merges.size(), 24u);
}

TEST(AgglomerativeTest, SeparatesWellSeparatedBlobs) {
  util::Rng rng(7);
  std::vector<std::vector<double>> points;
  std::vector<int> truth;
  const double centers[3][2] = {{0.0, 0.0}, {20.0, 0.0}, {0.0, 20.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 15; ++i) {
      points.push_back({centers[c][0] + rng.Gaussian(), centers[c][1] + rng.Gaussian()});
      truth.push_back(c);
    }
  }
  const Dendrogram dendrogram = AgglomerativeAverageLinkage(points);
  const auto labels = CutToClusters(dendrogram, 3);
  // Labels must be consistent with the ground-truth partition.
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = 0; j < points.size(); ++j)
      EXPECT_EQ(labels[i] == labels[j],
                truth[i] == truth[j]) << "pair " << i << "," << j;
}

TEST(AgglomerativeTest, CutToOneClusterIsUniform) {
  util::Rng rng(8);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 12; ++i) points.push_back({rng.Gaussian()});
  const auto labels = CutToClusters(AgglomerativeAverageLinkage(points), 1);
  for (int label : labels) EXPECT_EQ(label, 0);
}

TEST(AgglomerativeTest, CutToNClustersIsAllSingletons) {
  util::Rng rng(9);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) points.push_back({rng.Gaussian()});
  const auto labels = CutToClusters(AgglomerativeAverageLinkage(points), 10);
  std::set<int> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(AgglomerativeTest, CutProducesExactlyKClusters) {
  util::Rng rng(10);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 40; ++i) points.push_back({rng.Gaussian(), rng.Gaussian()});
  const Dendrogram dendrogram = AgglomerativeAverageLinkage(points);
  for (int k : {2, 5, 9, 17}) {
    const auto labels = CutToClusters(dendrogram, k);
    std::set<int> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), static_cast<std::size_t>(k));
  }
}

/// Naive O(n^3) average-linkage reference implementation.
std::vector<int> NaiveAverageLinkage(const std::vector<std::vector<double>>& points,
                                     int k) {
  const std::size_t n = points.size();
  std::vector<std::vector<std::size_t>> clusters(n);
  for (std::size_t i = 0; i < n; ++i) clusters[i] = {i};
  while (clusters.size() > static_cast<std::size_t>(k)) {
    double best = 1e300;
    std::size_t bi = 0, bj = 1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        double total = 0.0;
        for (std::size_t a : clusters[i])
          for (std::size_t b : clusters[j])
            total += util::EuclideanDistance(points[a], points[b]);
        const double avg =
            total / (static_cast<double>(clusters[i].size()) * clusters[j].size());
        if (avg < best) {
          best = avg;
          bi = i;
          bj = j;
        }
      }
    }
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(), clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
  }
  std::vector<int> labels(n, -1);
  for (std::size_t c = 0; c < clusters.size(); ++c)
    for (std::size_t i : clusters[c]) labels[i] = static_cast<int>(c);
  return labels;
}

TEST(AgglomerativeTest, NnChainMatchesNaivePartition) {
  // Property test: the NN-chain implementation must induce the same
  // partition as the naive O(n^3) average-linkage on random data.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 18; ++i) points.push_back({rng.Gaussian(), rng.Gaussian()});
    const auto fast = CutToClusters(AgglomerativeAverageLinkage(points), 4);
    const auto naive = NaiveAverageLinkage(points, 4);
    for (std::size_t i = 0; i < points.size(); ++i)
      for (std::size_t j = 0; j < points.size(); ++j)
        EXPECT_EQ(fast[i] == fast[j], naive[i] == naive[j])
            << "seed " << seed << " pair " << i << "," << j;
  }
}

}  // namespace
}  // namespace navarchos::neighbors
