// VehicleMonitor checkpoint round trips: cut a vehicle's frame stream at
// several points, snapshot the monitor mid-stream, restore into a fresh
// monitor, and feed both the remaining frames - alarms, scored samples,
// calibrations and the DataQualityReport must match field-exactly
// (restore-equals-uninterrupted at the monitor level). Fingerprint
// mismatches and truncated payloads must be rejected cleanly.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "persist/codec.h"
#include "telemetry/corruption.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

std::vector<telemetry::SensorFrame> FramesOfFirstVehicle(bool corrupted) {
  telemetry::FleetConfig fleet_config = telemetry::FleetConfig::TestScale();
  fleet_config.days = 20;
  const auto fleet = telemetry::GenerateFleet(fleet_config);
  std::vector<telemetry::SensorFrame> stream;
  if (corrupted) {
    const telemetry::CorruptionModel model(telemetry::CorruptionConfig::Moderate());
    stream = telemetry::InterleaveFleetStream(fleet, model);
  } else {
    stream = telemetry::InterleaveFleetStream(fleet);
  }
  const std::int32_t id = fleet.vehicles.front().spec.id;
  std::vector<telemetry::SensorFrame> frames;
  for (const auto& frame : stream)
    if (frame.vehicle_id() == id) frames.push_back(frame);
  return frames;
}

void ExpectMonitorsEqual(const core::VehicleMonitor& a,
                         const core::VehicleMonitor& b) {
  ASSERT_EQ(a.scored_samples().size(), b.scored_samples().size());
  for (std::size_t i = 0; i < a.scored_samples().size(); ++i) {
    ASSERT_EQ(a.scored_samples()[i].timestamp, b.scored_samples()[i].timestamp);
    ASSERT_EQ(a.scored_samples()[i].scores, b.scored_samples()[i].scores);
    ASSERT_EQ(a.scored_samples()[i].calibration_index,
              b.scored_samples()[i].calibration_index);
  }
  ASSERT_EQ(a.calibrations().size(), b.calibrations().size());
  for (std::size_t i = 0; i < a.calibrations().size(); ++i) {
    ASSERT_EQ(a.calibrations()[i].mean, b.calibrations()[i].mean);
    ASSERT_EQ(a.calibrations()[i].stddev, b.calibrations()[i].stddev);
    ASSERT_EQ(a.calibrations()[i].median, b.calibrations()[i].median);
    ASSERT_EQ(a.calibrations()[i].mad, b.calibrations()[i].mad);
    ASSERT_EQ(a.calibrations()[i].max, b.calibrations()[i].max);
  }
  ASSERT_EQ(a.channel_names(), b.channel_names());
  ASSERT_EQ(a.quality().records_seen, b.quality().records_seen);
  ASSERT_EQ(a.quality().RecordsDropped(), b.quality().RecordsDropped());
}

void ExpectAlarmsEqual(const std::vector<core::Alarm>& a,
                       const std::vector<core::Alarm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].timestamp, b[i].timestamp);
    ASSERT_EQ(a[i].channel, b[i].channel);
    ASSERT_EQ(a[i].score, b[i].score);
    ASSERT_EQ(a[i].threshold, b[i].threshold);
  }
}

void RunCutPointCase(bool corrupted) {
  const auto frames = FramesOfFirstVehicle(corrupted);
  ASSERT_GT(frames.size(), 100u);
  const std::int32_t id = frames.front().vehicle_id();
  const core::MonitorConfig config = FastMonitorConfig();

  // The uninterrupted reference run.
  core::VehicleMonitor reference(id, config);
  std::vector<core::Alarm> reference_alarms;
  for (const auto& frame : frames)
    for (auto& alarm : reference.OnFrame(frame))
      reference_alarms.push_back(std::move(alarm));
  for (auto& alarm : reference.Flush()) reference_alarms.push_back(std::move(alarm));

  // Cut points spanning pre-calibration, mid-calibration and steady state.
  for (const double fraction : {0.05, 0.33, 0.71, 0.95}) {
    const std::size_t cut =
        static_cast<std::size_t>(fraction * static_cast<double>(frames.size()));

    core::VehicleMonitor live(id, config);
    std::vector<core::Alarm> alarms;
    for (std::size_t i = 0; i < cut; ++i)
      for (auto& alarm : live.OnFrame(frames[i])) alarms.push_back(std::move(alarm));

    persist::Encoder encoder;
    live.Save(encoder);
    const std::vector<std::uint8_t> bytes = encoder.bytes();

    core::VehicleMonitor restored(id, config);
    persist::Decoder decoder(bytes.data(), bytes.size());
    ASSERT_TRUE(restored.Restore(decoder)) << decoder.error();
    ASSERT_TRUE(decoder.ok()) << decoder.error();
    ASSERT_EQ(decoder.remaining(), 0u);

    for (std::size_t i = cut; i < frames.size(); ++i)
      for (auto& alarm : restored.OnFrame(frames[i]))
        alarms.push_back(std::move(alarm));
    for (auto& alarm : restored.Flush()) alarms.push_back(std::move(alarm));

    ExpectAlarmsEqual(alarms, reference_alarms);
    ExpectMonitorsEqual(restored, reference);
  }
}

TEST(MonitorRoundTripTest, RestoreEqualsUninterruptedOnCleanStream) {
  RunCutPointCase(/*corrupted=*/false);
}

TEST(MonitorRoundTripTest, RestoreEqualsUninterruptedOnCorruptedStream) {
  // Corruption keeps the reorder buffer, dedup window and stuck-run
  // counters busy - all state the snapshot must carry.
  RunCutPointCase(/*corrupted=*/true);
}

TEST(MonitorRoundTripTest, FingerprintMismatchIsRejected) {
  const auto frames = FramesOfFirstVehicle(/*corrupted=*/false);
  const std::int32_t id = frames.front().vehicle_id();
  core::VehicleMonitor saved(id, FastMonitorConfig());
  for (std::size_t i = 0; i < 50; ++i) saved.OnFrame(frames[i]);
  persist::Encoder encoder;
  saved.Save(encoder);

  // Wrong vehicle.
  {
    core::VehicleMonitor other(id + 1, FastMonitorConfig());
    persist::Decoder decoder(encoder.bytes());
    EXPECT_FALSE(other.Restore(decoder));
    EXPECT_FALSE(decoder.ok());
  }
  // Wrong pipeline (different detector).
  {
    core::MonitorConfig other_config = FastMonitorConfig();
    other_config.detector = detect::DetectorKind::kKnnDistance;
    core::VehicleMonitor other(id, other_config);
    persist::Decoder decoder(encoder.bytes());
    EXPECT_FALSE(other.Restore(decoder));
    EXPECT_FALSE(decoder.ok());
  }
}

TEST(MonitorRoundTripTest, TruncatedStateIsRejectedCleanly) {
  const auto frames = FramesOfFirstVehicle(/*corrupted=*/false);
  const std::int32_t id = frames.front().vehicle_id();
  core::VehicleMonitor saved(id, FastMonitorConfig());
  for (std::size_t i = 0; i < 200 && i < frames.size(); ++i) saved.OnFrame(frames[i]);
  persist::Encoder encoder;
  saved.Save(encoder);
  const std::vector<std::uint8_t>& bytes = encoder.bytes();

  const std::size_t step = std::max<std::size_t>(1, bytes.size() / 131);
  for (std::size_t len = 0; len < bytes.size(); len += step) {
    core::VehicleMonitor fresh(id, FastMonitorConfig());
    persist::Decoder decoder(bytes.data(), len);
    const bool restored = fresh.Restore(decoder);
    EXPECT_FALSE(restored && decoder.ok() && decoder.remaining() == 0)
        << "prefix length " << len;
  }
}

}  // namespace
}  // namespace navarchos
