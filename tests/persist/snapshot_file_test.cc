// The snapshot container: tagged chunks round-trip through the byte stream
// and through files (atomic write + read), and the loader survives every
// corruption we can throw at it - every single-byte bit flip, every
// truncation prefix, version and magic mismatches - always with a clean
// error Status, never a crash, OOM or silently wrong data.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/snapshot.h"

namespace navarchos::persist {
namespace {

Snapshot MakeSample() {
  Snapshot snapshot;
  Encoder meta;
  meta.PutU32(7);
  meta.PutString("fleet");
  snapshot.Add("meta", std::move(meta));
  Encoder lane;
  lane.PutDouble(2.5);
  lane.PutU64(99);
  snapshot.Add("lane.0", std::move(lane));
  snapshot.Add("raw", std::vector<std::uint8_t>{1, 2, 3, 4});
  return snapshot;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SnapshotTest, ChunksRoundTripThroughBytes) {
  const Snapshot snapshot = MakeSample();
  const std::vector<std::uint8_t> bytes = SerialiseSnapshot(snapshot);

  Snapshot restored;
  const util::Status status =
      ParseSnapshot(bytes.data(), bytes.size(), "test", &restored);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_EQ(restored.chunks().size(), 3u);
  EXPECT_EQ(restored.chunks()[0].tag, "meta");
  EXPECT_EQ(restored.chunks()[1].tag, "lane.0");
  EXPECT_EQ(restored.chunks()[2].tag, "raw");
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(restored.chunks()[i].payload, snapshot.chunks()[i].payload);

  ASSERT_NE(restored.Find("lane.0"), nullptr);
  Decoder decoder(restored.Find("lane.0")->payload);
  EXPECT_EQ(decoder.GetDouble(), 2.5);
  EXPECT_EQ(decoder.GetU64(), 99u);
  EXPECT_EQ(restored.Find("nope"), nullptr);
}

TEST(SnapshotTest, FileRoundTripIsExact) {
  const Snapshot snapshot = MakeSample();
  const std::string path = TempPath("navsnap_roundtrip.bin");
  ASSERT_TRUE(WriteSnapshot(path, snapshot).ok());

  Snapshot restored;
  const util::Status status = ReadSnapshot(path, &restored);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_EQ(restored.chunks().size(), snapshot.chunks().size());
  for (std::size_t i = 0; i < snapshot.chunks().size(); ++i) {
    EXPECT_EQ(restored.chunks()[i].tag, snapshot.chunks()[i].tag);
    EXPECT_EQ(restored.chunks()[i].payload, snapshot.chunks()[i].payload);
  }
  std::filesystem::remove(path);
}

TEST(SnapshotTest, MissingFileIsACleanError) {
  Snapshot restored;
  const util::Status status =
      ReadSnapshot(TempPath("navsnap_does_not_exist.bin"), &restored);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(restored.chunks().empty());
}

TEST(SnapshotTest, EveryTruncationPrefixIsACleanError) {
  const std::vector<std::uint8_t> bytes = SerialiseSnapshot(MakeSample());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Snapshot restored;
    const util::Status status =
        ParseSnapshot(bytes.data(), len, "test", &restored);
    EXPECT_FALSE(status.ok()) << "prefix length " << len;
    EXPECT_TRUE(restored.chunks().empty()) << "prefix length " << len;
  }
}

TEST(SnapshotTest, EveryByteFlipIsDetected) {
  // The satellite corruption-injection test: flip every byte of a small
  // snapshot (two different XOR masks) and demand a clean error for each -
  // the CRC covers tag and payload, the header fields are validated, and no
  // corruption may crash the parser or slip through unnoticed.
  const std::vector<std::uint8_t> bytes = SerialiseSnapshot(MakeSample());
  for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0xFF}}) {
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      std::vector<std::uint8_t> corrupted = bytes;
      corrupted[pos] = static_cast<std::uint8_t>(corrupted[pos] ^ mask);
      Snapshot restored;
      const util::Status status = ParseSnapshot(
          corrupted.data(), corrupted.size(), "test", &restored);
      EXPECT_FALSE(status.ok())
          << "byte " << pos << " XOR " << int{mask} << " went undetected";
      EXPECT_FALSE(status.message().empty());
    }
  }
}

TEST(SnapshotTest, TrailingGarbageIsAnError) {
  std::vector<std::uint8_t> bytes = SerialiseSnapshot(MakeSample());
  bytes.push_back(0);
  Snapshot restored;
  EXPECT_FALSE(ParseSnapshot(bytes.data(), bytes.size(), "test", &restored).ok());
}

TEST(SnapshotTest, VersionMismatchNamesBothVersions) {
  std::vector<std::uint8_t> bytes = SerialiseSnapshot(MakeSample());
  bytes[8] = 99;  // version field follows the 8-byte magic
  Snapshot restored;
  const util::Status status =
      ParseSnapshot(bytes.data(), bytes.size(), "test", &restored);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version 99"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find(std::to_string(kSnapshotVersion)),
            std::string::npos);
}

TEST(SnapshotTest, CrcErrorNamesContextOffsetAndBothCrcs) {
  const Snapshot snapshot = MakeSample();
  std::vector<std::uint8_t> bytes = SerialiseSnapshot(snapshot);
  bytes.back() ^= 0xFF;  // corrupt the last payload byte of the last chunk
  Snapshot restored;
  const util::Status status =
      ParseSnapshot(bytes.data(), bytes.size(), "corrupt.bin", &restored);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("corrupt.bin"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("CRC mismatch"), std::string::npos);
  EXPECT_NE(status.message().find("offset"), std::string::npos);
  EXPECT_NE(status.message().find("expected"), std::string::npos);
}

TEST(SnapshotTest, WriteIsAtomicReplace) {
  const std::string path = TempPath("navsnap_atomic.bin");
  ASSERT_TRUE(WriteSnapshot(path, MakeSample()).ok());

  // Overwrite with a different snapshot: the reader must see either the old
  // or the new file, and after the rename returns, exactly the new one.
  Snapshot second;
  second.Add("only", std::vector<std::uint8_t>{9});
  ASSERT_TRUE(WriteSnapshot(path, second).ok());

  Snapshot restored;
  ASSERT_TRUE(ReadSnapshot(path, &restored).ok());
  ASSERT_EQ(restored.chunks().size(), 1u);
  EXPECT_EQ(restored.chunks()[0].tag, "only");

  // No temp files left behind.
  std::size_t leftovers = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(std::filesystem::temp_directory_path()))
    if (entry.path().filename().string().find("navsnap_atomic.bin.tmp") == 0)
      ++leftovers;
  EXPECT_EQ(leftovers, 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace navarchos::persist
