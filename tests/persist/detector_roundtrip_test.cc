// Per-detector checkpoint round trips: for every detector kind (and the raw
// GBT regressor behind the XGBoost technique), fit on a reference, advance
// the streaming state, snapshot, restore into a never-fitted instance, and
// demand field-exact equal scores on a held-out slice - the detector-level
// restore-equals-uninterrupted contract. Truncated state bytes must be
// rejected cleanly, never crash.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "detect/factory.h"
#include "persist/codec.h"
#include "util/rng.h"

namespace navarchos {
namespace {

constexpr std::size_t kDims = 5;
constexpr std::size_t kRefRows = 64;
constexpr std::size_t kProbeRows = 12;

std::vector<std::vector<double>> MakeRows(std::size_t rows, util::Rng* rng) {
  std::vector<std::vector<double>> out(rows, std::vector<double>(kDims));
  for (auto& row : out) {
    const double latent = rng->Gaussian();
    for (std::size_t d = 0; d < kDims; ++d)
      row[d] = 0.6 * latent + 0.4 * rng->Gaussian();
  }
  return out;
}

detect::DetectorOptions Options() {
  detect::DetectorOptions options;
  for (std::size_t d = 0; d < kDims; ++d)
    options.feature_names.push_back("pid" + std::to_string(d));
  return options;
}

class DetectorRoundTripTest
    : public ::testing::TestWithParam<detect::DetectorKind> {};

TEST_P(DetectorRoundTripTest, RestoredDetectorScoresBitIdentically) {
  const detect::DetectorKind kind = GetParam();
  util::Rng rng(2026);
  const auto ref = MakeRows(kRefRows, &rng);
  const auto warm = MakeRows(kProbeRows, &rng);
  const auto probe = MakeRows(kProbeRows, &rng);

  auto original = detect::MakeDetector(kind, Options());
  original->Fit(ref);
  // Advance past the fit: stateful detectors (Grand's martingale and tie
  // RNG, TranAD's rolling window) must checkpoint mid-stream, not at a
  // conveniently fresh state.
  for (const auto& row : warm) original->Score(row);

  persist::Encoder encoder;
  original->SaveState(encoder);
  const std::vector<std::uint8_t> bytes = encoder.bytes();
  ASSERT_FALSE(bytes.empty());

  auto restored = detect::MakeDetector(kind, Options());
  persist::Decoder decoder(bytes.data(), bytes.size());
  ASSERT_TRUE(restored->RestoreState(decoder)) << decoder.error();
  ASSERT_TRUE(decoder.ok()) << decoder.error();
  EXPECT_EQ(decoder.remaining(), 0u);  // the state is fully self-describing
  EXPECT_EQ(restored->ScoreChannels(), original->ScoreChannels());
  EXPECT_EQ(restored->ChannelNames(), original->ChannelNames());

  // Both continue the stream from the snapshot point in lockstep.
  for (const auto& row : probe) {
    const std::vector<double> a = original->Score(row);
    const std::vector<double> b = restored->Score(row);
    ASSERT_EQ(a, b);  // field-exact, not approximately
  }
}

TEST_P(DetectorRoundTripTest, TruncatedStateIsRejectedCleanly) {
  const detect::DetectorKind kind = GetParam();
  util::Rng rng(2026);
  auto original = detect::MakeDetector(kind, Options());
  original->Fit(MakeRows(kRefRows, &rng));

  persist::Encoder encoder;
  original->SaveState(encoder);
  const std::vector<std::uint8_t>& bytes = encoder.bytes();

  // A spread of truncation points including the empty prefix and the
  // almost-complete one; every one must fail the decoder, never crash.
  const std::size_t step = std::max<std::size_t>(1, bytes.size() / 97);
  for (std::size_t len = 0; len < bytes.size(); len += step) {
    auto fresh = detect::MakeDetector(kind, Options());
    persist::Decoder decoder(bytes.data(), len);
    const bool restored = fresh->RestoreState(decoder);
    EXPECT_FALSE(restored && decoder.ok() && decoder.remaining() == 0)
        << "prefix length " << len << " restored successfully";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DetectorRoundTripTest,
    ::testing::Values(detect::DetectorKind::kClosestPair,
                      detect::DetectorKind::kGrand,
                      detect::DetectorKind::kTranAd,
                      detect::DetectorKind::kXgBoost,
                      detect::DetectorKind::kIsolationForest,
                      detect::DetectorKind::kMlp,
                      detect::DetectorKind::kKnnDistance),
    [](const ::testing::TestParamInfo<detect::DetectorKind>& info) {
      return std::string(detect::DetectorKindName(info.param));
    });

TEST(GbtRoundTripTest, SerialisedModelPredictsBitIdentically) {
  util::Rng rng(7);
  const auto x = MakeRows(kRefRows, &rng);
  std::vector<double> y(kRefRows);
  for (std::size_t i = 0; i < kRefRows; ++i) y[i] = x[i][0] - x[i][1];

  detect::GbtRegressor original;
  original.Fit(x, y);

  persist::Encoder encoder;
  encoder.PutString(original.Serialise());

  detect::GbtRegressor restored;
  persist::Decoder decoder(encoder.bytes());
  ASSERT_TRUE(restored.Deserialise(decoder.GetString()));
  ASSERT_TRUE(decoder.ok());
  EXPECT_EQ(restored.tree_count(), original.tree_count());

  for (const auto& row : MakeRows(kProbeRows, &rng))
    ASSERT_EQ(original.Predict(row), restored.Predict(row));
}

}  // namespace
}  // namespace navarchos
