// The binary codec under the checkpoint/restore subsystem: every primitive
// round-trips bit-exactly (doubles included, NaN included), and no
// truncated or corrupted input may crash the decoder or trigger an
// unbounded allocation - length prefixes are validated before any memory
// is reserved.
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/codec.h"

namespace navarchos::persist {
namespace {

TEST(CodecTest, PrimitivesRoundTrip) {
  Encoder encoder;
  encoder.PutU8(0xAB);
  encoder.PutU32(0xDEADBEEFu);
  encoder.PutU64(0x0123456789ABCDEFull);
  encoder.PutI32(-123456789);
  encoder.PutI64(-1234567890123456789ll);
  encoder.PutBool(true);
  encoder.PutBool(false);
  encoder.PutDouble(3.141592653589793);
  encoder.PutString("hello snapshot");

  Decoder decoder(encoder.bytes());
  EXPECT_EQ(decoder.GetU8(), 0xAB);
  EXPECT_EQ(decoder.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(decoder.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(decoder.GetI32(), -123456789);
  EXPECT_EQ(decoder.GetI64(), -1234567890123456789ll);
  EXPECT_TRUE(decoder.GetBool());
  EXPECT_FALSE(decoder.GetBool());
  EXPECT_EQ(decoder.GetDouble(), 3.141592653589793);
  EXPECT_EQ(decoder.GetString(), "hello snapshot");
  EXPECT_TRUE(decoder.ok());
  EXPECT_EQ(decoder.remaining(), 0u);
}

TEST(CodecTest, DoublesAreBitExact) {
  // Snapshots must reproduce scores bit-for-bit, so the codec must round
  // trip every bit pattern - including the ones text formatting mangles.
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           1.0 / 3.0,
                           6.02214076e23};
  Encoder encoder;
  for (double value : values) encoder.PutDouble(value);
  encoder.PutDouble(std::numeric_limits<double>::quiet_NaN());

  Decoder decoder(encoder.bytes());
  for (double value : values) {
    const double restored = decoder.GetDouble();
    EXPECT_EQ(std::signbit(restored), std::signbit(value));
    EXPECT_EQ(restored, value);
  }
  EXPECT_TRUE(std::isnan(decoder.GetDouble()));
  EXPECT_TRUE(decoder.ok());
}

TEST(CodecTest, VectorAndMatrixRoundTrip) {
  const std::vector<double> vec = {1.5, -2.5, 0.0, 1e300};
  const std::vector<std::vector<double>> mat = {{1.0, 2.0}, {}, {3.0}};
  Encoder encoder;
  encoder.PutDoubleVec(vec);
  encoder.PutDoubleMat(mat);

  Decoder decoder(encoder.bytes());
  EXPECT_EQ(decoder.GetDoubleVec(), vec);
  EXPECT_EQ(decoder.GetDoubleMat(), mat);
  EXPECT_TRUE(decoder.ok());
}

TEST(CodecTest, TruncationAtEveryPrefixFailsCleanly) {
  Encoder encoder;
  encoder.PutU32(42);
  encoder.PutString("payload");
  encoder.PutDoubleVec({1.0, 2.0, 3.0});
  const auto& bytes = encoder.bytes();

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Decoder decoder(bytes.data(), len);
    decoder.GetU32();
    decoder.GetString();
    decoder.GetDoubleVec();
    EXPECT_FALSE(decoder.ok()) << "prefix length " << len;
    EXPECT_FALSE(decoder.error().empty());
  }
}

TEST(CodecTest, OversizedLengthPrefixFailsBeforeAllocating) {
  // A corrupted length prefix claiming ~2^64 bytes must fail on the bounds
  // check, never reach the allocator.
  Encoder encoder;
  encoder.PutU32(0xFFFFFFFFu);  // string length prefix
  {
    Decoder decoder(encoder.bytes());
    decoder.GetString();
    EXPECT_FALSE(decoder.ok());
  }

  Encoder vec_encoder;
  vec_encoder.PutU64(0xFFFFFFFFFFFFFFFFull);  // vector count prefix
  {
    Decoder decoder(vec_encoder.bytes());
    decoder.GetDoubleVec();
    EXPECT_FALSE(decoder.ok());
  }

  Encoder mat_encoder;
  mat_encoder.PutU64(0xFFFFFFFFFFFFFFFFull);  // row count prefix
  {
    Decoder decoder(mat_encoder.bytes());
    decoder.GetDoubleMat();
    EXPECT_FALSE(decoder.ok());
  }
}

TEST(CodecTest, ErrorLatchesAndReadsReturnDefaults) {
  Encoder encoder;
  encoder.PutU32(7);
  Decoder decoder(encoder.bytes());
  EXPECT_EQ(decoder.GetU32(), 7u);
  EXPECT_EQ(decoder.GetU64(), 0u);  // past the end: latches
  EXPECT_FALSE(decoder.ok());
  const std::string first_error = decoder.error();
  EXPECT_EQ(decoder.GetDouble(), 0.0);  // latched: defaults, error unchanged
  EXPECT_EQ(decoder.GetString(), "");
  EXPECT_EQ(decoder.error(), first_error);
}

TEST(CodecTest, BoolRejectsNonCanonicalBytes) {
  Encoder encoder;
  encoder.PutU8(2);
  Decoder decoder(encoder.bytes());
  decoder.GetBool();
  EXPECT_FALSE(decoder.ok());
}

TEST(CodecTest, ToStatusReportsTrailingBytes) {
  Encoder encoder;
  encoder.PutU32(1);
  encoder.PutU32(2);
  Decoder decoder(encoder.bytes());
  decoder.GetU32();
  EXPECT_TRUE(decoder.ok());
  EXPECT_FALSE(decoder.ToStatus("payload").ok());  // 4 bytes unconsumed
  decoder.GetU32();
  EXPECT_TRUE(decoder.ToStatus("payload").ok());
}

TEST(CodecTest, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  const std::string data = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(data.data()), data.size()),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace navarchos::persist
