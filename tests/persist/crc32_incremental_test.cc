// The incremental CRC32 (Init/Update/Final) must be bit-identical to the
// one-shot Crc32 over the concatenation, for EVERY way of chunking the
// input - it checksums the wire frames and the history log's blocks, so a
// chunking-dependent result would corrupt both on the next refactor that
// changes buffer boundaries.
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "persist/codec.h"
#include "util/rng.h"

namespace navarchos::persist {
namespace {

std::vector<std::uint8_t> ReferenceBuffer(std::size_t size) {
  util::Rng rng(0x5eed);
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes)
    b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
  return bytes;
}

TEST(Crc32IncrementalTest, EmptyInputMatchesOneShot) {
  EXPECT_EQ(Crc32(nullptr, 0), Crc32Final(Crc32Init()));
}

TEST(Crc32IncrementalTest, EverySingleSplitMatchesOneShot) {
  const std::vector<std::uint8_t> bytes = ReferenceBuffer(257);
  const std::uint32_t expected = Crc32(bytes.data(), bytes.size());
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    std::uint32_t crc = Crc32Init();
    crc = Crc32Update(crc, bytes.data(), split);
    crc = Crc32Update(crc, bytes.data() + split, bytes.size() - split);
    EXPECT_EQ(Crc32Final(crc), expected) << "split at " << split;
  }
}

TEST(Crc32IncrementalTest, EveryChunkSizeMatchesOneShot) {
  const std::vector<std::uint8_t> bytes = ReferenceBuffer(509);
  const std::uint32_t expected = Crc32(bytes.data(), bytes.size());
  for (std::size_t chunk = 1; chunk <= bytes.size(); ++chunk) {
    std::uint32_t crc = Crc32Init();
    for (std::size_t off = 0; off < bytes.size(); off += chunk) {
      const std::size_t n = std::min(chunk, bytes.size() - off);
      crc = Crc32Update(crc, bytes.data() + off, n);
    }
    EXPECT_EQ(Crc32Final(crc), expected) << "chunk size " << chunk;
  }
}

TEST(Crc32IncrementalTest, ByteAtATimeWithEmptySpansMatchesOneShot) {
  const std::vector<std::uint8_t> bytes = ReferenceBuffer(64);
  std::uint32_t crc = Crc32Init();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    crc = Crc32Update(crc, bytes.data(), 0);  // empty spans are no-ops
    crc = Crc32Update(crc, bytes.data() + i, 1);
  }
  EXPECT_EQ(Crc32Final(crc), Crc32(bytes.data(), bytes.size()));
}

TEST(Crc32IncrementalTest, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> bytes = ReferenceBuffer(128);
  const std::uint32_t expected = Crc32(bytes.data(), bytes.size());
  bytes[57] ^= 0x10;
  std::uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, bytes.data(), 64);
  crc = Crc32Update(crc, bytes.data() + 64, 64);
  EXPECT_NE(Crc32Final(crc), expected);
}

}  // namespace
}  // namespace navarchos::persist
