// Tests of the related-work extension detectors: isolation forest (Khan et
// al. 2019) and the MLP regression scheme (Massaro et al. 2020).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "detect/isolation_forest.h"
#include "detect/mlp_detector.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos::detect {
namespace {

std::vector<std::vector<double>> BlobRef(int n, util::Rng& rng) {
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < n; ++i) ref.push_back({rng.Gaussian(), rng.Gaussian()});
  return ref;
}

TEST(AveragePathLengthTest, KnownValues) {
  EXPECT_DOUBLE_EQ(AveragePathLength(1), 0.0);
  EXPECT_DOUBLE_EQ(AveragePathLength(0), 0.0);
  // c(2) = 2 * H(1) - 2 * 1/2 = 2 * 0.5772... - 1 ~ 0.154? No: H(1) = 1
  // in the exact series; the log approximation gives ~0.15 at n = 2, and
  // the value must grow with n.
  EXPECT_GT(AveragePathLength(16), AveragePathLength(4));
  EXPECT_GT(AveragePathLength(256), AveragePathLength(16));
}

TEST(IsolationForestTest, ScoresBoundedZeroOne) {
  IsolationForestDetector detector;
  util::Rng rng(1);
  detector.Fit(BlobRef(128, rng));
  for (int i = 0; i < 50; ++i) {
    const double s = detector.Score({rng.Gaussian(), rng.Gaussian()})[0];
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, OutlierScoresAboveInlier) {
  IsolationForestDetector detector;
  util::Rng rng(2);
  detector.Fit(BlobRef(200, rng));
  const double inlier = detector.Score({0.0, 0.0})[0];
  const double outlier = detector.Score({8.0, -8.0})[0];
  EXPECT_GT(outlier, inlier + 0.1);
  EXPECT_GT(outlier, 0.6);  // classic iforest anomaly region
  EXPECT_LT(inlier, 0.6);
}

TEST(IsolationForestTest, DeterministicForSeed) {
  util::Rng rng(3);
  const auto ref = BlobRef(100, rng);
  IsolationForestDetector a, b;
  a.Fit(ref);
  b.Fit(ref);
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> q{rng.Gaussian(), rng.Gaussian()};
    EXPECT_DOUBLE_EQ(a.Score(q)[0], b.Score(q)[0]);
  }
}

TEST(IsolationForestTest, HandlesConstantFeature) {
  std::vector<std::vector<double>> ref;
  util::Rng rng(4);
  for (int i = 0; i < 64; ++i) ref.push_back({rng.Gaussian(), 5.0});
  IsolationForestDetector detector;
  detector.Fit(ref);
  const double s = detector.Score({0.0, 5.0})[0];
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(IsolationForestTest, ReportsProbabilityScores) {
  IsolationForestDetector detector;
  EXPECT_TRUE(detector.ScoresAreProbabilities());
  EXPECT_EQ(detector.ScoreChannels(), 1u);
  EXPECT_EQ(detector.Name(), "isolation_forest");
}

TEST(MlpDetectorTest, LearnsLinearCoupling) {
  util::Rng rng(5);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(-2, 2);
    ref.push_back({x, 2.0 * x + rng.Gaussian(0, 0.05)});
  }
  MlpDetector detector;
  detector.Fit(ref);
  const auto consistent = detector.Score({1.0, 2.0});
  const auto broken = detector.Score({1.0, -2.0});
  EXPECT_LT(consistent[1], 0.6);
  EXPECT_GT(broken[1], 3.0 * std::max(consistent[1], 0.05));
}

TEST(MlpDetectorTest, OneChannelPerFeature) {
  util::Rng rng(6);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 60; ++i)
    ref.push_back({rng.Gaussian(), rng.Gaussian(), rng.Gaussian()});
  MlpParams params;
  params.epochs = 5;
  MlpDetector detector(params);
  detector.Fit(ref);
  EXPECT_EQ(detector.ScoreChannels(), 3u);
  EXPECT_EQ(detector.ChannelNames().size(), 3u);
}

TEST(MlpDetectorTest, DeterministicForSeed) {
  util::Rng rng(7);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 80; ++i) ref.push_back({rng.Gaussian(), rng.Gaussian()});
  MlpParams params;
  params.epochs = 3;
  MlpDetector a(params), b(params);
  a.Fit(ref);
  b.Fit(ref);
  const std::vector<double> q{0.3, -0.7};
  EXPECT_EQ(a.Score(q), b.Score(q));
}

TEST(MlpDetectorTest, ScoresNonNegativeFinite) {
  util::Rng rng(8);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 60; ++i) ref.push_back({rng.Gaussian(), rng.Gaussian()});
  MlpParams params;
  params.epochs = 4;
  MlpDetector detector(params);
  detector.Fit(ref);
  for (int i = 0; i < 20; ++i) {
    for (double s : detector.Score({rng.Gaussian(), rng.Gaussian()})) {
      EXPECT_GE(s, 0.0);
      EXPECT_TRUE(std::isfinite(s));
    }
  }
}

}  // namespace
}  // namespace navarchos::detect
