// Cross-detector behavioural contracts, parameterised over all four
// techniques: every detector must score an out-of-distribution sample above
// its in-distribution baseline after fitting the same reference.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "detect/factory.h"
#include "detect/tranad_detector.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos::detect {
namespace {

std::vector<std::vector<double>> CoupledRef(int n, util::Rng& rng) {
  // Three features: f1 = 0.9 f0 + noise, f2 independent.
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    ref.push_back({x, 0.9 * x + 0.1 * rng.Gaussian(), rng.Gaussian()});
  }
  return ref;
}

class DetectorContractTest : public ::testing::TestWithParam<DetectorKind> {
 protected:
  std::unique_ptr<Detector> MakeFast() {
    DetectorOptions options;
    options.tranad.epochs = 6;
    options.tranad.window = 5;
    options.tranad.d_model = 16;
    options.gbt.num_trees = 40;
    options.mlp.epochs = 8;
    return MakeDetector(GetParam(), options);
  }
};

TEST_P(DetectorContractTest, ConstructsWithName) {
  const auto detector = MakeFast();
  EXPECT_EQ(detector->Name(), DetectorKindName(GetParam()));
}

TEST_P(DetectorContractTest, ScoreChannelCountStable) {
  const auto detector = MakeFast();
  util::Rng rng(1);
  detector->Fit(CoupledRef(80, rng));
  const auto scores = detector->Score({0.0, 0.0, 0.0});
  EXPECT_EQ(scores.size(), detector->ScoreChannels());
  EXPECT_EQ(detector->ChannelNames().size(), detector->ScoreChannels());
}

TEST_P(DetectorContractTest, ScoresAreNonNegativeAndFinite) {
  const auto detector = MakeFast();
  util::Rng rng(2);
  detector->Fit(CoupledRef(80, rng));
  for (int i = 0; i < 30; ++i) {
    for (double s : detector->Score({rng.Gaussian(), rng.Gaussian(), rng.Gaussian()})) {
      EXPECT_GE(s, 0.0);
      EXPECT_TRUE(std::isfinite(s));
    }
  }
}

TEST_P(DetectorContractTest, OutOfDistributionScoresAboveBaseline) {
  const auto detector = MakeFast();
  util::Rng rng(3);
  detector->Fit(CoupledRef(120, rng));

  // Baseline: max channel score over healthy samples (skipping the first few
  // so windowed detectors fill their buffers).
  double healthy_peak = 0.0;
  std::vector<double> last_healthy;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.Gaussian();
    last_healthy = detector->Score({x, 0.9 * x + 0.1 * rng.Gaussian(), rng.Gaussian()});
    if (i >= 10) healthy_peak = std::max(healthy_peak, util::Max(last_healthy));
  }
  // Sustained broken coupling far outside the reference envelope.
  double anomalous_peak = 0.0;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.Gaussian();
    const auto scores = detector->Score({x + 6.0, -0.9 * x - 6.0, rng.Gaussian()});
    anomalous_peak = std::max(anomalous_peak, util::Max(scores));
  }
  EXPECT_GT(anomalous_peak, healthy_peak);
}

TEST_P(DetectorContractTest, RefitIsClean) {
  const auto detector = MakeFast();
  util::Rng rng(4);
  detector->Fit(CoupledRef(80, rng));
  for (int i = 0; i < 20; ++i) detector->Score({9.0, -9.0, 9.0});
  // Refit on fresh data must not be poisoned by the anomalous history.
  detector->Fit(CoupledRef(80, rng));
  const double x = rng.Gaussian();
  for (double s : detector->Score({x, 0.9 * x, rng.Gaussian()}))
    EXPECT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorContractTest,
                         ::testing::Values(DetectorKind::kClosestPair,
                                           DetectorKind::kGrand,
                                           DetectorKind::kTranAd,
                                           DetectorKind::kXgBoost,
                                           DetectorKind::kIsolationForest,
                                           DetectorKind::kMlp),
                         [](const auto& info) { return DetectorKindName(info.param); });

TEST(TranAdDetectorTest, NeedsFullWindowBeforeScoring) {
  nn::TranAdParams params;
  params.window = 5;
  params.epochs = 2;
  params.d_model = 8;
  TranAdDetector detector(params);
  util::Rng rng(5);
  detector.Fit(CoupledRef(40, rng));
  // First window-1 scores are the no-evidence value 0.
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(detector.Score({0.0, 0.0, 0.0})[0], 0.0);
  EXPECT_GE(detector.Score({0.0, 0.0, 0.0})[0], 0.0);
}

}  // namespace
}  // namespace navarchos::detect
