#include "detect/grand.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos::detect {
namespace {

std::vector<std::vector<double>> GaussianRef(int n, util::Rng& rng) {
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < n; ++i) ref.push_back({rng.Gaussian(), rng.Gaussian()});
  return ref;
}

class GrandNcmTest : public ::testing::TestWithParam<GrandNcm> {};

TEST_P(GrandNcmTest, ScoresAreProbabilities) {
  GrandConfig config;
  config.ncm = GetParam();
  GrandDetector detector(config);
  util::Rng rng(1);
  detector.Fit(GaussianRef(80, rng));
  for (int i = 0; i < 50; ++i) {
    const auto scores = detector.Score({rng.Gaussian(), rng.Gaussian()});
    ASSERT_EQ(scores.size(), 1u);
    EXPECT_GE(scores[0], 0.0);
    EXPECT_LT(scores[0], 1.0);
  }
}

TEST_P(GrandNcmTest, SustainedOutliersDriveScoreTowardOne) {
  GrandConfig config;
  config.ncm = GetParam();
  GrandDetector detector(config);
  util::Rng rng(2);
  detector.Fit(GaussianRef(80, rng));
  double final_score = 0.0;
  for (int i = 0; i < 40; ++i)
    final_score = detector.Score({8.0 + rng.Uniform(), 8.0 + rng.Uniform()})[0];
  EXPECT_GT(final_score, 0.95);
}

TEST_P(GrandNcmTest, HealthyStreamStaysLow) {
  GrandConfig config;
  config.ncm = GetParam();
  GrandDetector detector(config);
  util::Rng rng(3);
  detector.Fit(GaussianRef(100, rng));
  double max_score = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double s = detector.Score({rng.Gaussian(), rng.Gaussian()})[0];
    max_score = std::max(max_score, s);
  }
  // The clamped martingale can wander but should not saturate on iid
  // healthy data.
  EXPECT_LT(max_score, 0.9999);
}

TEST_P(GrandNcmTest, RefitResetsMartingale) {
  GrandConfig config;
  config.ncm = GetParam();
  GrandDetector detector(config);
  util::Rng rng(4);
  auto ref = GaussianRef(80, rng);
  detector.Fit(ref);
  for (int i = 0; i < 30; ++i) detector.Score({9.0, 9.0});
  detector.Fit(ref);
  // Right after a refit the martingale is neutral: score = 1/(1+1) = 0.5.
  EXPECT_NEAR(detector.Score({rng.Gaussian(), rng.Gaussian()})[0], 0.5, 0.25);
}

INSTANTIATE_TEST_SUITE_P(AllNcms, GrandNcmTest,
                         ::testing::Values(GrandNcm::kMedian, GrandNcm::kKnn,
                                           GrandNcm::kLof),
                         [](const auto& info) { return GrandNcmName(info.param); });

TEST(GrandTest, PValuesRoughlyUniformOnExchangeableData) {
  GrandConfig config;
  config.ncm = GrandNcm::kKnn;
  GrandDetector detector(config);
  util::Rng rng(5);
  detector.Fit(GaussianRef(200, rng));
  std::vector<double> p_values;
  for (int i = 0; i < 500; ++i) {
    detector.Score({rng.Gaussian(), rng.Gaussian()});
    p_values.push_back(detector.last_p_value());
  }
  // Mean of uniform p-values is 0.5; allow generous tolerance.
  EXPECT_NEAR(util::Mean(p_values), 0.5, 0.08);
  EXPECT_GT(util::Quantile(p_values, 0.9), 0.7);
  EXPECT_LT(util::Quantile(p_values, 0.1), 0.3);
}

TEST(GrandTest, MinReferenceDependsOnK) {
  GrandConfig config;
  config.k = 25;
  GrandDetector detector(config);
  EXPECT_EQ(detector.MinReferenceSize(), 27u);
}

TEST(GrandTest, ReportsProbabilityScores) {
  GrandDetector detector;
  EXPECT_TRUE(detector.ScoresAreProbabilities());
  EXPECT_EQ(detector.ScoreChannels(), 1u);
  EXPECT_EQ(detector.Name(), "grand");
}

}  // namespace
}  // namespace navarchos::detect
