// Property test: the ring-buffer PersistenceTracker must agree with a naive
// count-the-last-N implementation on random violation streams.
#include <deque>

#include <gtest/gtest.h>

#include "detect/threshold.h"
#include "util/rng.h"

namespace navarchos::detect {
namespace {

class NaivePersistence {
 public:
  NaivePersistence(int window, int min_count, std::size_t channels)
      : window_(window), min_count_(min_count), history_(channels) {}

  std::vector<bool> Update(const std::vector<bool>& violations) {
    std::vector<bool> fires(history_.size(), false);
    for (std::size_t c = 0; c < history_.size(); ++c) {
      history_[c].push_back(violations[c]);
      if (static_cast<int>(history_[c].size()) > window_) history_[c].pop_front();
      int count = 0;
      for (bool violated : history_[c]) count += violated ? 1 : 0;
      fires[c] = count >= min_count_;
    }
    return fires;
  }

 private:
  int window_;
  int min_count_;
  std::vector<std::deque<bool>> history_;
};

struct Case {
  int window;
  int min_count;
  std::size_t channels;
  double violation_rate;
};

class PersistencePropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(PersistencePropertyTest, MatchesNaiveOnRandomStreams) {
  const Case test_case = GetParam();
  PersistenceTracker tracker(test_case.window, test_case.min_count,
                             test_case.channels);
  NaivePersistence naive(test_case.window, test_case.min_count, test_case.channels);
  util::Rng rng(static_cast<std::uint64_t>(test_case.window * 1000 +
                                           test_case.min_count));
  for (int step = 0; step < 500; ++step) {
    std::vector<bool> violations(test_case.channels);
    for (std::size_t c = 0; c < test_case.channels; ++c)
      violations[c] = rng.Bernoulli(test_case.violation_rate);
    EXPECT_EQ(tracker.Update(violations), naive.Update(violations)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PersistencePropertyTest,
    ::testing::Values(Case{1, 1, 1, 0.5}, Case{5, 3, 2, 0.3}, Case{20, 14, 15, 0.6},
                      Case{7, 7, 3, 0.8}, Case{50, 10, 1, 0.15}),
    [](const auto& info) {
      return "w" + std::to_string(info.param.window) + "m" +
             std::to_string(info.param.min_count) + "c" +
             std::to_string(info.param.channels);
    });

TEST(PersistenceResetPropertyTest, ResetEquivalentToFreshTracker) {
  util::Rng rng(9);
  PersistenceTracker reused(10, 6, 4);
  for (int step = 0; step < 100; ++step) {
    std::vector<bool> violations(4);
    for (std::size_t c = 0; c < 4; ++c) violations[c] = rng.Bernoulli(0.5);
    reused.Update(violations);
  }
  reused.Reset();
  PersistenceTracker fresh(10, 6, 4);
  for (int step = 0; step < 100; ++step) {
    std::vector<bool> violations(4);
    for (std::size_t c = 0; c < 4; ++c) violations[c] = rng.Bernoulli(0.5);
    EXPECT_EQ(reused.Update(violations), fresh.Update(violations));
  }
}

}  // namespace
}  // namespace navarchos::detect
