#include <cmath>

#include <gtest/gtest.h>

#include "detect/nn/layers.h"
#include "detect/nn/tranad.h"
#include "util/rng.h"

namespace navarchos::detect::nn {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (double& value : m.Data()) value = rng.Gaussian();
  return m;
}

/// Scalar objective L = sum_ij c_ij * layer(x)_ij for a fixed random c.
/// Checks the layer's input gradient against central finite differences.
template <typename Layer>
void CheckInputGradient(Layer& layer, Matrix x, util::Rng& rng,
                        double tolerance = 1e-5) {
  Matrix y = layer.Forward(x);
  Matrix weights = RandomMatrix(y.rows(), y.cols(), rng);
  const Matrix grad_in = layer.Backward(weights);

  const double eps = 1e-5;
  int checked = 0;
  for (std::size_t r = 0; r < x.rows() && checked < 12; ++r) {
    for (std::size_t c = 0; c < x.cols() && checked < 12; ++c, ++checked) {
      Matrix x_plus = x, x_minus = x;
      x_plus.At(r, c) += eps;
      x_minus.At(r, c) -= eps;
      const Matrix y_plus = layer.Forward(x_plus);
      const Matrix y_minus = layer.Forward(x_minus);
      double l_plus = 0.0, l_minus = 0.0;
      for (std::size_t i = 0; i < y.Data().size(); ++i) {
        l_plus += weights.Data()[i] * y_plus.Data()[i];
        l_minus += weights.Data()[i] * y_minus.Data()[i];
      }
      const double numeric = (l_plus - l_minus) / (2.0 * eps);
      EXPECT_NEAR(grad_in.At(r, c), numeric, tolerance)
          << "entry (" << r << "," << c << ")";
    }
  }
}

TEST(NnGradientTest, LinearInputGradientMatchesFiniteDifference) {
  util::Rng rng(1);
  Linear layer(5, 7, rng);
  CheckInputGradient(layer, RandomMatrix(4, 5, rng), rng);
}

TEST(NnGradientTest, ReluInputGradientMatchesFiniteDifference) {
  util::Rng rng(2);
  Relu layer;
  // Keep activations away from the kink for a clean finite difference.
  Matrix x = RandomMatrix(4, 6, rng);
  for (double& value : x.Data())
    if (std::fabs(value) < 0.05) value = 0.2;
  CheckInputGradient(layer, x, rng);
}

TEST(NnGradientTest, LayerNormInputGradientMatchesFiniteDifference) {
  util::Rng rng(3);
  LayerNorm layer(6);
  CheckInputGradient(layer, RandomMatrix(3, 6, rng), rng, 1e-4);
}

TEST(NnGradientTest, SelfAttentionInputGradientMatchesFiniteDifference) {
  util::Rng rng(4);
  SelfAttention layer(4, rng);
  CheckInputGradient(layer, RandomMatrix(5, 4, rng), rng, 1e-4);
}

TEST(NnLayersTest, LinearForwardShape) {
  util::Rng rng(5);
  Linear layer(3, 8, rng);
  const Matrix y = layer.Forward(RandomMatrix(6, 3, rng));
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 8u);
}

TEST(NnLayersTest, ReluClampsNegatives) {
  Relu layer;
  Matrix x = Matrix::FromRows({{-1.0, 2.0, -0.5, 0.0}});
  const Matrix y = layer.Forward(x);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(y.At(0, 2), 0.0);
}

TEST(NnLayersTest, LayerNormRowsHaveZeroMeanUnitVariance) {
  util::Rng rng(6);
  LayerNorm layer(10);
  const Matrix y = layer.Forward(RandomMatrix(4, 10, rng));
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (double value : y.Row(r)) mean += value;
    mean /= 10.0;
    for (double value : y.Row(r)) var += (value - mean) * (value - mean);
    var /= 10.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(NnLayersTest, AttentionRowsAreConvexCombinations) {
  // Attention output is bounded by the value range (convexity), checked
  // indirectly: a constant input must map to a constant context.
  util::Rng rng(7);
  SelfAttention layer(4, rng);
  Matrix x(5, 4, 1.0);
  const Matrix y = layer.Forward(x);
  for (std::size_t r = 1; r < y.rows(); ++r)
    for (std::size_t c = 0; c < y.cols(); ++c)
      EXPECT_NEAR(y.At(r, c), y.At(0, c), 1e-9);
}

TEST(NnLayersTest, PositionalEncodingBoundedAndDistinct) {
  const Matrix pe = SinusoidalPositionalEncoding(10, 8);
  for (double value : pe.Data()) {
    EXPECT_GE(value, -1.0);
    EXPECT_LE(value, 1.0);
  }
  // Different positions get different encodings.
  bool differ = false;
  for (std::size_t c = 0; c < 8; ++c)
    if (pe.At(0, c) != pe.At(5, c)) differ = true;
  EXPECT_TRUE(differ);
}

TEST(NnLayersTest, MseLossAndGradConsistent) {
  Matrix prediction = Matrix::FromRows({{1.0, 2.0}});
  Matrix target = Matrix::FromRows({{0.0, 4.0}});
  EXPECT_DOUBLE_EQ(MseLoss(prediction, target), (1.0 + 4.0) / 2.0);
  const Matrix grad = MseGrad(prediction, target, 1.0);
  EXPECT_DOUBLE_EQ(grad.At(0, 0), 1.0);   // 2 * (1-0) / 2
  EXPECT_DOUBLE_EQ(grad.At(0, 1), -2.0);  // 2 * (2-4) / 2
}

TEST(NnLayersTest, AdamMovesParametersAgainstGradient) {
  std::vector<double> params{1.0, -1.0};
  std::vector<double> grads{0.5, -0.5};
  AdamBuffers buffers;
  AdamUpdate(params, grads, buffers, 1, 0.1);
  EXPECT_LT(params[0], 1.0);
  EXPECT_GT(params[1], -1.0);
}

TEST(TranAdModelTest, TrainingReducesReconstructionError) {
  util::Rng rng(8);
  TranAdParams params;
  params.window = 6;
  params.d_model = 16;
  params.d_ff = 32;
  params.epochs = 10;
  std::vector<Matrix> windows;
  for (int i = 0; i < 60; ++i) {
    Matrix w(6, 3);
    for (std::size_t r = 0; r < 6; ++r) {
      const double x = rng.Gaussian();
      w.At(r, 0) = x;
      w.At(r, 1) = 0.8 * x;
      w.At(r, 2) = -x;
    }
    windows.push_back(std::move(w));
  }
  TranAdModel before(3, params);
  const double untrained = before.Score(windows[0]);
  TranAdModel model(3, params);
  model.Train(windows);
  const double trained = model.Score(windows[0]);
  EXPECT_LT(trained, untrained);
}

TEST(TranAdModelTest, AnomalousWindowScoresHigherThanNormal) {
  util::Rng rng(9);
  TranAdParams params;
  params.window = 6;
  params.d_model = 16;
  params.epochs = 12;
  std::vector<Matrix> windows;
  for (int i = 0; i < 80; ++i) {
    Matrix w(6, 2);
    for (std::size_t r = 0; r < 6; ++r) {
      const double x = rng.Gaussian();
      w.At(r, 0) = x;
      w.At(r, 1) = x;  // strict coupling
    }
    windows.push_back(std::move(w));
  }
  TranAdModel model(2, params);
  model.Train(windows);
  const double normal = model.Score(windows[1]);
  Matrix broken(6, 2);
  for (std::size_t r = 0; r < 6; ++r) {
    const double x = rng.Gaussian();
    broken.At(r, 0) = x;
    broken.At(r, 1) = -x;  // coupling inverted
  }
  EXPECT_GT(model.Score(broken), 2.0 * normal);
}

TEST(TranAdModelTest, DeterministicForSeed) {
  TranAdParams params;
  params.window = 4;
  params.d_model = 8;
  params.epochs = 2;
  util::Rng rng(10);
  std::vector<Matrix> windows;
  for (int i = 0; i < 10; ++i) windows.push_back(RandomMatrix(4, 2, rng));
  TranAdModel a(2, params), b(2, params);
  a.Train(windows);
  b.Train(windows);
  EXPECT_DOUBLE_EQ(a.Score(windows[0]), b.Score(windows[0]));
}

}  // namespace
}  // namespace navarchos::detect::nn
