#include "detect/gbt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "detect/xgb_detector.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos::detect {
namespace {

TEST(GbtTest, LearnsLinearFunction) {
  util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 1.0);
  }
  GbtParams params;
  params.num_trees = 120;
  params.learning_rate = 0.2;
  GbtRegressor model(params);
  model.Fit(x, y);
  double total_error = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.Uniform(-1.5, 1.5), b = rng.Uniform(-1.5, 1.5);
    total_error += std::fabs(model.Predict(std::vector<double>{a, b}) -
                             (3.0 * a - 2.0 * b + 1.0));
  }
  EXPECT_LT(total_error / 100.0, 0.5);
}

TEST(GbtTest, LearnsNonlinearInteraction) {
  util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 600; ++i) {
    const double a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    x.push_back({a, b});
    y.push_back(a * b);
  }
  GbtParams params;
  params.num_trees = 150;
  params.max_depth = 5;
  params.learning_rate = 0.15;
  GbtRegressor model(params);
  model.Fit(x, y);
  double total_error = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.Uniform(-1.5, 1.5), b = rng.Uniform(-1.5, 1.5);
    total_error += std::fabs(model.Predict(std::vector<double>{a, b}) - a * b);
  }
  EXPECT_LT(total_error / 100.0, 0.4);
}

TEST(GbtTest, ConstantTargetPredictsConstant) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    x.push_back({rng.Gaussian()});
    y.push_back(7.5);
  }
  GbtRegressor model;
  model.Fit(x, y);
  EXPECT_NEAR(model.Predict(std::vector<double>{0.0}), 7.5, 1e-6);
}

TEST(GbtTest, BoostingReducesTrainingError) {
  util::Rng rng(4);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(-3, 3);
    x.push_back({a});
    y.push_back(std::sin(a));
  }
  auto train_mse = [&](int trees) {
    GbtParams params;
    params.num_trees = trees;
    params.subsample = 1.0;
    GbtRegressor model(params);
    model.Fit(x, y);
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = model.Predict(x[i]) - y[i];
      total += d * d;
    }
    return total / static_cast<double>(x.size());
  };
  EXPECT_LT(train_mse(60), train_mse(5));
}

TEST(GbtTest, DeterministicForSameSeed) {
  util::Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({rng.Gaussian(), rng.Gaussian()});
    y.push_back(x.back()[0] + rng.Gaussian(0, 0.1));
  }
  GbtRegressor a, b;
  a.Fit(x, y);
  b.Fit(x, y);
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> q{rng.Gaussian(), rng.Gaussian()};
    EXPECT_DOUBLE_EQ(a.Predict(q), b.Predict(q));
  }
}

TEST(GbtTest, RespectsMaxDepthViaTreeCount) {
  GbtParams params;
  params.num_trees = 10;
  GbtRegressor model(params);
  util::Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back({rng.Gaussian()});
    y.push_back(rng.Gaussian());
  }
  model.Fit(x, y);
  EXPECT_EQ(model.tree_count(), 10u);
  EXPECT_TRUE(model.fitted());
}

TEST(XgbDetectorTest, OneChannelPerFeature) {
  util::Rng rng(7);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.Gaussian();
    ref.push_back({x, 2.0 * x + rng.Gaussian(0, 0.05), rng.Gaussian()});
  }
  XgbDetector detector;
  detector.Fit(ref);
  EXPECT_EQ(detector.ScoreChannels(), 3u);
}

TEST(XgbDetectorTest, BrokenRelationshipScoresHigh) {
  util::Rng rng(8);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(-2, 2);
    ref.push_back({x, 2.0 * x + rng.Gaussian(0, 0.05)});
  }
  XgbDetector detector;
  detector.Fit(ref);
  // Consistent sample: low scores.
  const auto consistent = detector.Score({1.0, 2.0});
  // Broken coupling: feature 1 no longer 2 * feature 0.
  const auto broken = detector.Score({1.0, -2.0});
  EXPECT_LT(consistent[1], 0.5);
  EXPECT_GT(broken[1], 4.0 * std::max(consistent[1], 0.05));
}

TEST(XgbDetectorTest, ChannelNamesPropagate) {
  XgbDetector detector(GbtParams{}, {"x", "y"});
  util::Rng rng(9);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 30; ++i) ref.push_back({rng.Gaussian(), rng.Gaussian()});
  detector.Fit(ref);
  EXPECT_EQ(detector.ChannelNames(), (std::vector<std::string>{"x", "y"}));
}

}  // namespace
}  // namespace navarchos::detect
