#include "detect/knn_distance.h"

#include <gtest/gtest.h>

#include "detect/grand.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace navarchos::detect {
namespace {

std::vector<std::vector<double>> BlobRef(int n, util::Rng& rng) {
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < n; ++i) ref.push_back({rng.Gaussian(), rng.Gaussian()});
  return ref;
}

TEST(KnnDistanceTest, InlierScoresLowOutlierHigh) {
  KnnDistanceDetector detector(5);
  util::Rng rng(1);
  detector.Fit(BlobRef(100, rng));
  const double inlier = detector.Score({0.0, 0.0})[0];
  const double outlier = detector.Score({10.0, 10.0})[0];
  EXPECT_GT(outlier, 5.0 * inlier);
}

TEST(KnnDistanceTest, ScoreIsMeanOfKNearest) {
  // Reference on a line: query at origin has neighbours at 1, 2, 3 (after
  // standardisation the ordering and ratios of distances are preserved).
  KnnDistanceDetector detector(2);
  std::vector<std::vector<double>> ref;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) ref.push_back({v});
  detector.Fit(ref);
  // Query outside the range: neighbours 1 and 2 -> mean distance 1.5 units.
  // Query between 4 and 5: both 0.5 away -> mean 0.5 units. Ratio 3 exactly
  // (standardisation scales both identically).
  const double outside = detector.Score({0.0})[0];
  const double between = detector.Score({4.5})[0];
  EXPECT_NEAR(outside / between, 3.0, 1e-9);
}

TEST(KnnDistanceTest, SelfCalibrationExcludesTemporalWindow) {
  KnnDistanceDetector detector(1);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 20; ++i) ref.push_back({static_cast<double>(i)});
  detector.Fit(ref);
  const auto tight = detector.SelfCalibrationScores(0);
  const auto spaced = detector.SelfCalibrationScores(4);
  ASSERT_EQ(tight.size(), 20u);
  // Interior points: nearest non-excluded neighbour is 1 step vs 5 steps
  // away; in standardised units the ratio must be exactly 5.
  EXPECT_NEAR(spaced[10][0] / tight[10][0], 5.0, 1e-9);
}

TEST(KnnDistanceTest, SingleChannelContract) {
  KnnDistanceDetector detector;
  util::Rng rng(2);
  detector.Fit(BlobRef(50, rng));
  EXPECT_EQ(detector.ScoreChannels(), 1u);
  EXPECT_EQ(detector.Name(), "knn_distance");
  EXPECT_FALSE(detector.ScoresAreProbabilities());
}

TEST(GrandMixtureMartingaleTest, GrowsUnderSustainedAnomalies) {
  GrandConfig config;
  config.martingale = GrandMartingale::kMixture;
  GrandDetector detector(config);
  util::Rng rng(3);
  detector.Fit(BlobRef(80, rng));
  double final_score = 0.0;
  for (int i = 0; i < 40; ++i) final_score = detector.Score({9.0, 9.0})[0];
  EXPECT_GT(final_score, 0.95);
}

TEST(GrandMixtureMartingaleTest, StaysCalmOnHealthyData) {
  GrandConfig config;
  config.martingale = GrandMartingale::kMixture;
  GrandDetector detector(config);
  util::Rng rng(4);
  detector.Fit(BlobRef(120, rng));
  double max_score = 0.0;
  for (int i = 0; i < 300; ++i)
    max_score = std::max(max_score, detector.Score({rng.Gaussian(), rng.Gaussian()})[0]);
  EXPECT_LT(max_score, 0.9999);
}

TEST(GrandMixtureMartingaleTest, MixtureBetIsNeutralOnUniformP) {
  // The mixture bet integrates e * p^(e-1) over e: at p = 1 the bet is the
  // mean of e over (0,1) = 0.5 < 1, so clean data shrinks the martingale
  // (and the clamp keeps it at 1). Indirect check: score stays at the
  // neutral 0.5 after a perfectly typical sample stream.
  GrandConfig config;
  config.martingale = GrandMartingale::kMixture;
  GrandDetector detector(config);
  util::Rng rng(5);
  const auto ref = BlobRef(150, rng);
  detector.Fit(ref);
  double score = 0.0;
  for (int i = 0; i < 50; ++i) score = detector.Score(ref[static_cast<std::size_t>(i)])[0];
  EXPECT_NEAR(score, 0.5, 0.2);
}

}  // namespace
}  // namespace navarchos::detect
