// Tests of the thresholding-rule variants (kSelfTuning, kMedianMad,
// kMaxHealthy) through CalibrationStats::ThresholdOf and the replay path.
#include <gtest/gtest.h>

#include "core/monitor.h"
#include "util/rng.h"

namespace navarchos::core {
namespace {

using Kind = detect::ThresholdConfig::Kind;

CalibrationStats MakeStats() {
  CalibrationStats stats;
  stats.mean = {1.0};
  stats.stddev = {0.5};
  stats.median = {0.9};
  stats.mad = {0.3};
  stats.max = {2.0};
  return stats;
}

TEST(ThresholdOfTest, SelfTuningIsMeanPlusFactorStd) {
  const CalibrationStats stats = MakeStats();
  EXPECT_DOUBLE_EQ(stats.ThresholdOf(0, Kind::kSelfTuning, 4.0), 1.0 + 4.0 * 0.5);
}

TEST(ThresholdOfTest, MedianMadUsesConsistencyConstant) {
  const CalibrationStats stats = MakeStats();
  EXPECT_DOUBLE_EQ(stats.ThresholdOf(0, Kind::kMedianMad, 2.0),
                   0.9 + 2.0 * 1.4826 * 0.3);
}

TEST(ThresholdOfTest, MaxHealthyScalesTheMax) {
  const CalibrationStats stats = MakeStats();
  EXPECT_DOUBLE_EQ(stats.ThresholdOf(0, Kind::kMaxHealthy, 1.5), 3.0);
}

TEST(ThresholdOfTest, ConstantDetectorIgnoresRule) {
  CalibrationStats stats = MakeStats();
  stats.constant_threshold = true;
  for (Kind kind : {Kind::kSelfTuning, Kind::kMedianMad, Kind::kMaxHealthy}) {
    EXPECT_DOUBLE_EQ(stats.ThresholdOf(0, kind, 0.77), 0.77);
  }
}

TEST(ThresholdOfTest, MadRobustToCalibrationOutlier) {
  // Same scores, one wild outlier: the std-based threshold balloons, the
  // MAD-based one barely moves.
  CalibrationStats clean = MakeStats();
  CalibrationStats polluted = MakeStats();
  polluted.mean = {2.0};     // outlier dragged the mean
  polluted.stddev = {3.0};   // ... and exploded the std
  polluted.median = {0.92};  // median almost unchanged
  polluted.mad = {0.32};
  const double clean_self = clean.ThresholdOf(0, Kind::kSelfTuning, 4.0);
  const double polluted_self = polluted.ThresholdOf(0, Kind::kSelfTuning, 4.0);
  const double clean_mad = clean.ThresholdOf(0, Kind::kMedianMad, 4.0);
  const double polluted_mad = polluted.ThresholdOf(0, Kind::kMedianMad, 4.0);
  EXPECT_GT(polluted_self / clean_self, 3.0);
  EXPECT_LT(polluted_mad / clean_mad, 1.2);
}

TEST(AlarmsForThresholdKindTest, KindChangesAlarmSet) {
  std::vector<CalibrationStats> calibrations(1, MakeStats());
  std::vector<ScoredSample> samples;
  for (int i = 0; i < 10; ++i) {
    ScoredSample sample;
    sample.timestamp = i;
    sample.calibration_index = 0;
    sample.scores = {2.5};  // above max(2.0), below mean + 4 * std (3.0)
    samples.push_back(sample);
  }
  const auto self_tuning =
      AlarmsForThreshold(samples, calibrations, 4.0, 4, 3, {}, Kind::kSelfTuning);
  const auto max_healthy =
      AlarmsForThreshold(samples, calibrations, 1.0, 4, 3, {}, Kind::kMaxHealthy);
  EXPECT_TRUE(self_tuning.empty());
  EXPECT_FALSE(max_healthy.empty());
}

TEST(MonitorKindTest, MonitorRunsWithEachRule) {
  for (Kind kind : {Kind::kSelfTuning, Kind::kMedianMad, Kind::kMaxHealthy}) {
    MonitorConfig config;
    config.transform_options.window = 30;
    config.transform_options.stride = 5;
    config.profile_minutes = 150.0;
    config.threshold.burn_in_minutes = 50.0;
    config.threshold.kind = kind;
    VehicleMonitor monitor(0, config);
    util::Rng rng(3);
    for (int i = 0; i < 600; ++i) {
      telemetry::Record record;
      record.timestamp = i;
      const double speed = 50.0 + 10.0 * rng.Uniform();
      record.pids = {speed * 35.0, speed, 90.0, 25.0, 45.0, 15.0};
      monitor.OnRecord(record);
    }
    EXPECT_FALSE(monitor.collecting_reference());
    EXPECT_EQ(monitor.fit_count(), 1);
  }
}

}  // namespace
}  // namespace navarchos::core
