#include "detect/threshold.h"

#include <gtest/gtest.h>

namespace navarchos::detect {
namespace {

TEST(ThresholdPolicyTest, SelfTuningMeanPlusFactorStd) {
  // Channel 0: scores {0, 2} -> mean 1, std 1; channel 1 constant 5.
  const std::vector<std::vector<double>> healthy{{0.0, 5.0}, {2.0, 5.0}};
  const ThresholdPolicy policy = ThresholdPolicy::SelfTuning(healthy, 3.0);
  ASSERT_EQ(policy.thresholds().size(), 2u);
  EXPECT_DOUBLE_EQ(policy.thresholds()[0], 4.0);
  EXPECT_DOUBLE_EQ(policy.thresholds()[1], 5.0);
}

TEST(ThresholdPolicyTest, ConstantSharedAcrossChannels) {
  const ThresholdPolicy policy = ThresholdPolicy::Constant(0.7, 3);
  for (double threshold : policy.thresholds()) EXPECT_DOUBLE_EQ(threshold, 0.7);
}

TEST(ThresholdPolicyTest, ViolationPicksWorstChannel) {
  const ThresholdPolicy policy = ThresholdPolicy::Constant(1.0, 3);
  const auto violation = policy.Violation({1.5, 3.0, 0.5});
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(*violation, 1u);
}

TEST(ThresholdPolicyTest, NoViolationBelowThresholds) {
  const ThresholdPolicy policy = ThresholdPolicy::Constant(1.0, 2);
  EXPECT_FALSE(policy.Violation({0.5, 0.99}).has_value());
}

TEST(PersistenceTrackerTest, FiresOnlyAfterEnoughViolations) {
  PersistenceTracker tracker(4, 3, 1);
  EXPECT_FALSE(tracker.Update({true})[0]);
  EXPECT_FALSE(tracker.Update({true})[0]);
  EXPECT_TRUE(tracker.Update({true})[0]);
}

TEST(PersistenceTrackerTest, ToleratesGapsWithinWindow) {
  PersistenceTracker tracker(4, 3, 1);
  tracker.Update({true});
  tracker.Update({false});
  tracker.Update({true});
  EXPECT_TRUE(tracker.Update({true})[0]);  // 3 of last 4
}

TEST(PersistenceTrackerTest, OldViolationsExpire) {
  PersistenceTracker tracker(3, 2, 1);
  tracker.Update({true});
  tracker.Update({false});
  tracker.Update({false});
  // The single violation has rolled out of the window.
  EXPECT_FALSE(tracker.Update({true})[0]);
}

TEST(PersistenceTrackerTest, ChannelsIndependent) {
  PersistenceTracker tracker(2, 2, 2);
  tracker.Update({true, false});
  const auto fires = tracker.Update({true, true});
  EXPECT_TRUE(fires[0]);
  EXPECT_FALSE(fires[1]);
}

TEST(PersistenceTrackerTest, ResetClearsHistory) {
  PersistenceTracker tracker(2, 2, 1);
  tracker.Update({true});
  tracker.Reset();
  EXPECT_FALSE(tracker.Update({true})[0]);
}

TEST(ThresholdConfigTest, ResolvePersistenceScalesWithStride) {
  ThresholdConfig config;
  config.persistence_minutes = 400.0;
  config.persistence_fraction = 0.7;
  const auto [w20, m20] = config.ResolvePersistence(20);
  EXPECT_EQ(w20, 20);
  EXPECT_EQ(m20, 14);
  const auto [w1, m1] = config.ResolvePersistence(1);
  EXPECT_EQ(w1, 400);
  EXPECT_EQ(m1, 280);
}

TEST(ThresholdConfigTest, ResolvePersistenceClampsTinyWindows) {
  ThresholdConfig config;
  config.persistence_minutes = 10.0;
  const auto [window, min_violations] = config.ResolvePersistence(100);
  EXPECT_GE(window, 4);
  EXPECT_GE(min_violations, 1);
  EXPECT_LE(min_violations, window);
}

}  // namespace
}  // namespace navarchos::detect
