#include "detect/closest_pair.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace navarchos::detect {
namespace {

std::vector<std::vector<double>> GridRef() {
  // Feature 0: values 0..9; feature 1: values 0, 10, 20, ... 90.
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 10; ++i)
    ref.push_back({static_cast<double>(i), static_cast<double>(10 * i)});
  return ref;
}

TEST(ClosestPairTest, ZeroScoreForSeenValues) {
  ClosestPairDetector detector;
  detector.Fit(GridRef());
  const auto scores = detector.Score({5.0, 30.0});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
}

TEST(ClosestPairTest, DistanceToNearestValue) {
  ClosestPairDetector detector;
  detector.Fit(GridRef());
  const auto scores = detector.Score({5.4, 34.0});
  EXPECT_NEAR(scores[0], 0.4, 1e-12);
  EXPECT_NEAR(scores[1], 4.0, 1e-12);
}

TEST(ClosestPairTest, ExtrapolationBeyondRange) {
  ClosestPairDetector detector;
  detector.Fit(GridRef());
  const auto scores = detector.Score({-3.0, 120.0});
  EXPECT_NEAR(scores[0], 3.0, 1e-12);
  EXPECT_NEAR(scores[1], 30.0, 1e-12);
}

TEST(ClosestPairTest, ChannelsAreIndependent) {
  ClosestPairDetector detector;
  detector.Fit(GridRef());
  const auto scores = detector.Score({5.0, 35.0});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_GT(scores[1], 0.0);
}

TEST(ClosestPairTest, RefitReplacesReference) {
  ClosestPairDetector detector;
  detector.Fit(GridRef());
  std::vector<std::vector<double>> shifted;
  for (int i = 0; i < 10; ++i) shifted.push_back({100.0 + i, 0.0});
  detector.Fit(shifted);
  EXPECT_GT(detector.Score({5.0, 0.0})[0], 90.0);
}

TEST(ClosestPairTest, ChannelNamesFromConstructor) {
  ClosestPairDetector detector({"a", "b"});
  detector.Fit(GridRef());
  EXPECT_EQ(detector.ChannelNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(ClosestPairTest, DefaultChannelNames) {
  ClosestPairDetector detector;
  detector.Fit(GridRef());
  EXPECT_EQ(detector.ChannelNames()[0], "f0");
}

TEST(ClosestPairTest, SelfCalibrationExcludesTemporalNeighbours) {
  // A slow ramp: adjacent samples are close, distant samples far. With
  // exclusion radius 0 the LOO distances are tiny; with radius 3 they are
  // at least 4 steps of the ramp.
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 20; ++i) ref.push_back({static_cast<double>(i)});
  ClosestPairDetector detector;
  detector.Fit(ref);
  const auto tight = detector.SelfCalibrationScores(0);
  const auto spaced = detector.SelfCalibrationScores(3);
  ASSERT_EQ(tight.size(), 20u);
  ASSERT_EQ(spaced.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(tight[i][0], 1.0);
    EXPECT_DOUBLE_EQ(spaced[i][0], 4.0);
  }
}

TEST(ClosestPairTest, SelfCalibrationHugeRadiusGivesZeros) {
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 10; ++i) ref.push_back({static_cast<double>(i)});
  ClosestPairDetector detector;
  detector.Fit(ref);
  const auto scores = detector.SelfCalibrationScores(100);
  for (const auto& row : scores) EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(ClosestPairTest, ScoresScaleInvariantPerChannel) {
  // Doubling a channel's values doubles its distances (no cross-channel mix).
  util::Rng rng(1);
  std::vector<std::vector<double>> ref;
  for (int i = 0; i < 30; ++i) ref.push_back({rng.Gaussian(), rng.Gaussian()});
  std::vector<std::vector<double>> scaled = ref;
  for (auto& row : scaled) row[0] *= 2.0;
  ClosestPairDetector a, b;
  a.Fit(ref);
  b.Fit(scaled);
  const auto sa = a.Score({0.5, 0.5});
  const auto sb = b.Score({1.0, 0.5});
  EXPECT_NEAR(sb[0], 2.0 * sa[0], 1e-9);
  EXPECT_NEAR(sb[1], sa[1], 1e-9);
}

}  // namespace
}  // namespace navarchos::detect
