// Determinism of the ensemble-enabled streaming service: with background
// retraining running on the shared pool, the complete output - alarms,
// scores, per-sample consensus votes, ensemble counters - is bit-identical
// at threads=1 and threads=4, across repeated replays, and equal to the
// serial batch runner. The consensus gate must also demonstrably bite
// (suppressed alarms are counted) without breaking any of it.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_runner.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig EnsembleMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  config.ensemble.enabled = true;
  config.ensemble.k = 3;
  config.ensemble.m = 2;
  config.ensemble.retrain_every = 24;
  config.ensemble.activation_lag = 8;
  return config;
}

service::ServiceConfig ServiceConfigWith(int threads) {
  service::ServiceConfig config;
  config.monitor = EnsembleMonitorConfig();
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 32;
  return config;
}

void ExpectRunsIdentical(const core::FleetRunResult& a,
                         const core::FleetRunResult& b) {
  ASSERT_EQ(a.alarms.size(), b.alarms.size());
  for (std::size_t i = 0; i < a.alarms.size(); ++i) {
    ASSERT_EQ(a.alarms[i].vehicle_id, b.alarms[i].vehicle_id);
    ASSERT_EQ(a.alarms[i].timestamp, b.alarms[i].timestamp);
    ASSERT_EQ(a.alarms[i].channel, b.alarms[i].channel);
    ASSERT_EQ(a.alarms[i].score, b.alarms[i].score);
    ASSERT_EQ(a.alarms[i].threshold, b.alarms[i].threshold);
  }

  ASSERT_EQ(a.scored_samples.size(), b.scored_samples.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t s = 0; s < a.scored_samples[v].size(); ++s) {
      ASSERT_EQ(a.scored_samples[v][s].timestamp,
                b.scored_samples[v][s].timestamp);
      ASSERT_EQ(a.scored_samples[v][s].scores, b.scored_samples[v][s].scores);
      // The consensus fields themselves, not just the scores: votes are
      // produced by members fitted on background threads, so any scheduling
      // leak shows up here first.
      ASSERT_EQ(a.scored_samples[v][s].votes, b.scored_samples[v][s].votes);
      ASSERT_EQ(a.scored_samples[v][s].ensemble_live,
                b.scored_samples[v][s].ensemble_live);
    }
  }

  ASSERT_EQ(a.ensemble_stats.size(), b.ensemble_stats.size());
  for (std::size_t v = 0; v < a.ensemble_stats.size(); ++v) {
    ASSERT_EQ(a.ensemble_stats[v].retrains_started,
              b.ensemble_stats[v].retrains_started);
    ASSERT_EQ(a.ensemble_stats[v].retrains_completed,
              b.ensemble_stats[v].retrains_completed);
    ASSERT_EQ(a.ensemble_stats[v].retrains_failed,
              b.ensemble_stats[v].retrains_failed);
    ASSERT_EQ(a.ensemble_stats[v].consensus_suppressed_alarms,
              b.ensemble_stats[v].consensus_suppressed_alarms);
  }
}

TEST(EnsembleDeterminismTest, LiveStreamIsIdenticalAtAnyThreadCount) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  const auto serial = service::RunStream(stream, ids, ServiceConfigWith(1));
  const auto parallel = service::RunStream(stream, ids, ServiceConfigWith(4));
  ExpectRunsIdentical(serial, parallel);

  const auto replay = service::RunStream(stream, ids, ServiceConfigWith(4));
  ExpectRunsIdentical(parallel, replay);

  // The ensemble actually trained in the background - this is not a
  // vacuous pass on an idle subsystem.
  std::uint64_t started = 0;
  for (const auto& stats : parallel.ensemble_stats)
    started += stats.retrains_started;
  ASSERT_GT(started, 0u);
}

TEST(EnsembleDeterminismTest, StreamingMatchesTheSerialBatchRunner) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  const auto streamed = service::RunStream(stream, ids, ServiceConfigWith(4));
  const auto batch = core::RunFleet(fleet, EnsembleMonitorConfig(),
                                    runtime::RuntimeConfig{1});

  // Alarm ordering differs by construction (the stream releases in global
  // admission order, the batch runner concatenates per vehicle), but the
  // per-vehicle content - scores, votes, ensemble counters - must agree.
  ASSERT_EQ(streamed.alarms.size(), batch.alarms.size());
  ASSERT_EQ(streamed.scored_samples.size(), batch.scored_samples.size());
  for (std::size_t v = 0; v < batch.scored_samples.size(); ++v) {
    ASSERT_EQ(streamed.scored_samples[v].size(), batch.scored_samples[v].size());
    for (std::size_t s = 0; s < batch.scored_samples[v].size(); ++s) {
      ASSERT_EQ(streamed.scored_samples[v][s].scores,
                batch.scored_samples[v][s].scores);
      ASSERT_EQ(streamed.scored_samples[v][s].votes,
                batch.scored_samples[v][s].votes);
      ASSERT_EQ(streamed.scored_samples[v][s].ensemble_live,
                batch.scored_samples[v][s].ensemble_live);
    }
    ASSERT_EQ(streamed.ensemble_stats[v].retrains_started,
              batch.ensemble_stats[v].retrains_started);
    ASSERT_EQ(streamed.ensemble_stats[v].retrains_completed,
              batch.ensemble_stats[v].retrains_completed);
    ASSERT_EQ(streamed.ensemble_stats[v].retrains_failed,
              batch.ensemble_stats[v].retrains_failed);
    ASSERT_EQ(streamed.ensemble_stats[v].consensus_suppressed_alarms,
              batch.ensemble_stats[v].consensus_suppressed_alarms);
  }
}

TEST(EnsembleDeterminismTest, ConsensusSuppressionIsDeterministicWhenItBites) {
  // A permissive threshold on the primary detector makes it page often;
  // a strict quorum (m == k) lets the ensemble veto some of those pages.
  // The suppressed count must reproduce exactly across thread counts.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  service::ServiceConfig config = ServiceConfigWith(1);
  config.monitor.threshold.factor = 1.5;
  config.monitor.ensemble.m = 3;

  const auto serial = service::RunStream(stream, ids, config);
  config.runtime = runtime::RuntimeConfig{4};
  const auto parallel = service::RunStream(stream, ids, config);
  ExpectRunsIdentical(serial, parallel);

  std::uint64_t suppressed = 0;
  for (const auto& stats : serial.ensemble_stats)
    suppressed += stats.consensus_suppressed_alarms;
  EXPECT_GT(suppressed, 0u);
}

TEST(EnsembleDeterminismTest, InjectedFitFailuresStayDeterministic) {
  // Failed retrains fall back to the surviving members; the fallback path
  // must be as reproducible as the happy path.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  service::ServiceConfig config = ServiceConfigWith(1);
  config.monitor.ensemble.inject_fit_failures = {1, 3};

  const auto serial = service::RunStream(stream, ids, config);
  config.runtime = runtime::RuntimeConfig{4};
  const auto parallel = service::RunStream(stream, ids, config);
  ExpectRunsIdentical(serial, parallel);

  std::uint64_t failed = 0;
  for (const auto& stats : serial.ensemble_stats)
    failed += stats.retrains_failed;
  EXPECT_GT(failed, 0u);
}

TEST(EnsembleDeterminismTest, ServiceStatsAggregateTheLaneCounters) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  service::FleetService service(ServiceConfigWith(4));
  for (const std::int32_t id : ids) service.RegisterVehicle(id);
  for (const auto& frame : stream) service.Submit(frame);
  service.Drain();

  const service::ServiceStats stats = service.stats();
  const auto result = service.TakeResult();
  std::uint64_t started = 0, completed = 0, failed = 0, suppressed = 0;
  for (const auto& lane : result.ensemble_stats) {
    started += lane.retrains_started;
    completed += lane.retrains_completed;
    failed += lane.retrains_failed;
    suppressed += lane.consensus_suppressed_alarms;
  }
  EXPECT_EQ(stats.retrains_started, started);
  EXPECT_EQ(stats.retrains_completed, completed);
  EXPECT_EQ(stats.retrains_failed, failed);
  EXPECT_EQ(stats.consensus_suppressed_alarms, suppressed);
  EXPECT_GT(started, 0u);
}

}  // namespace
}  // namespace navarchos
