// Checkpoint/restore of the ensemble-enabled service: a snapshot taken
// while ensembles are live (including mid-retrain, between a boundary and
// its activation) must restore into a service whose remaining output is
// bit-identical to the uninterrupted run - members, rolling windows,
// schedule counters, pending fits and the suppressed-alarm counters all
// travel through the versioned snapshot.
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet_runner.h"
#include "core/monitor.h"
#include "persist/codec.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig EnsembleMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  config.ensemble.enabled = true;
  config.ensemble.k = 3;
  config.ensemble.m = 2;
  config.ensemble.retrain_every = 24;
  config.ensemble.activation_lag = 8;
  return config;
}

service::ServiceConfig EnsembleServiceConfig(int threads) {
  service::ServiceConfig config;
  config.monitor = EnsembleMonitorConfig();
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 32;
  return config;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void ExpectRunsIdentical(const core::FleetRunResult& a,
                         const core::FleetRunResult& b) {
  ASSERT_EQ(a.alarms.size(), b.alarms.size());
  for (std::size_t i = 0; i < a.alarms.size(); ++i) {
    ASSERT_EQ(a.alarms[i].vehicle_id, b.alarms[i].vehicle_id);
    ASSERT_EQ(a.alarms[i].timestamp, b.alarms[i].timestamp);
    ASSERT_EQ(a.alarms[i].channel, b.alarms[i].channel);
    ASSERT_EQ(a.alarms[i].score, b.alarms[i].score);
  }
  ASSERT_EQ(a.scored_samples.size(), b.scored_samples.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t s = 0; s < a.scored_samples[v].size(); ++s) {
      ASSERT_EQ(a.scored_samples[v][s].scores, b.scored_samples[v][s].scores);
      ASSERT_EQ(a.scored_samples[v][s].votes, b.scored_samples[v][s].votes);
      ASSERT_EQ(a.scored_samples[v][s].ensemble_live,
                b.scored_samples[v][s].ensemble_live);
    }
  }
  ASSERT_EQ(a.ensemble_stats.size(), b.ensemble_stats.size());
  for (std::size_t v = 0; v < a.ensemble_stats.size(); ++v) {
    ASSERT_EQ(a.ensemble_stats[v].retrains_started,
              b.ensemble_stats[v].retrains_started);
    ASSERT_EQ(a.ensemble_stats[v].retrains_completed,
              b.ensemble_stats[v].retrains_completed);
    ASSERT_EQ(a.ensemble_stats[v].retrains_failed,
              b.ensemble_stats[v].retrains_failed);
    ASSERT_EQ(a.ensemble_stats[v].consensus_suppressed_alarms,
              b.ensemble_stats[v].consensus_suppressed_alarms);
  }
}

TEST(EnsembleSnapshotTest, CheckpointedRunEqualsUninterruptedRun) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto config = EnsembleServiceConfig(4);

  const auto uninterrupted = service::RunStream(stream, ids, config);

  // Several cuts, so checkpoints land at different phases of the lanes'
  // retrain schedules - before the first fit, mid-ring, and late.
  for (const double fraction : {0.25, 0.5, 0.8}) {
    const std::size_t cut =
        static_cast<std::size_t>(static_cast<double>(stream.size()) * fraction);
    const std::string path =
        TempPath("ensemble_snapshot_" + std::to_string(cut) + ".snap");
    {
      service::FleetService first(config);
      for (const std::int32_t id : ids) first.RegisterVehicle(id);
      for (std::size_t i = 0; i < cut; ++i) first.Submit(stream[i]);
      ASSERT_TRUE(first.Checkpoint(path).ok());
      // The first service is discarded here, mid-run: the snapshot is all
      // that survives, exactly like a crash after a durable checkpoint.
    }
    service::FleetService second(config);
    ASSERT_TRUE(second.RestoreFromFile(path).ok());
    for (std::size_t i = cut; i < stream.size(); ++i) second.Submit(stream[i]);
    second.Drain();
    const auto restored = second.TakeResult();
    ExpectRunsIdentical(uninterrupted, restored);
    std::filesystem::remove(path);
  }
}

TEST(EnsembleSnapshotTest, MonitorCheckpointMidRetrainRestoresBitIdentically) {
  // Drive a single monitor to a frame where its ensemble has a fit in
  // flight (posted at a boundary, not yet activated), snapshot exactly
  // there, and check the restored monitor's remaining alarm/score/vote
  // stream is bit-identical. This pins the hardest case: the snapshot must
  // carry the training window of the unfinished fit so the restore can
  // re-run it deterministically.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto& vehicle = fleet.vehicles.front();
  const auto frames = telemetry::MakeVehicleStream(vehicle);
  const core::MonitorConfig config = EnsembleMonitorConfig();

  core::VehicleMonitor original(vehicle.spec.id, config);
  std::vector<core::Alarm> original_alarms;
  std::size_t cut = frames.size();
  std::size_t pending_checkpoints = 0;
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    for (auto& alarm : original.OnFrame(frames[i]))
      original_alarms.push_back(std::move(alarm));
    // Snapshot at the *first* frame that leaves a retrain pending.
    if (bytes.empty() && original.consensus() != nullptr &&
        original.consensus()->retrain_pending()) {
      persist::Encoder encoder;
      original.Save(encoder);
      bytes = encoder.bytes();
      cut = i + 1;
      ++pending_checkpoints;
    }
  }
  for (auto& alarm : original.Flush()) original_alarms.push_back(std::move(alarm));
  ASSERT_EQ(pending_checkpoints, 1u);
  ASSERT_FALSE(bytes.empty());

  core::VehicleMonitor restored(vehicle.spec.id, config);
  persist::Decoder decoder(bytes.data(), bytes.size());
  ASSERT_TRUE(restored.Restore(decoder));
  ASSERT_NE(restored.consensus(), nullptr);
  ASSERT_TRUE(restored.consensus()->retrain_pending());

  std::vector<core::Alarm> restored_alarms;
  for (std::size_t i = cut; i < frames.size(); ++i)
    for (auto& alarm : restored.OnFrame(frames[i]))
      restored_alarms.push_back(std::move(alarm));
  for (auto& alarm : restored.Flush()) restored_alarms.push_back(std::move(alarm));

  const auto& original_samples = original.scored_samples();
  const auto& restored_samples = restored.scored_samples();
  ASSERT_EQ(original_samples.size(), restored_samples.size());
  for (std::size_t s = 0; s < original_samples.size(); ++s) {
    ASSERT_EQ(original_samples[s].scores, restored_samples[s].scores);
    ASSERT_EQ(original_samples[s].votes, restored_samples[s].votes);
    ASSERT_EQ(original_samples[s].ensemble_live,
              restored_samples[s].ensemble_live);
  }

  // The alarms emitted after the cut must agree; the original's prefix is
  // whatever it was (the restored run never saw those frames live, but its
  // restored monitor state already accounts for them).
  ASSERT_LE(restored_alarms.size(), original_alarms.size());
  const std::size_t offset = original_alarms.size() - restored_alarms.size();
  for (std::size_t i = 0; i < restored_alarms.size(); ++i) {
    ASSERT_EQ(original_alarms[offset + i].timestamp, restored_alarms[i].timestamp);
    ASSERT_EQ(original_alarms[offset + i].score, restored_alarms[i].score);
  }

  // And the two monitors end in byte-identical ensemble state.
  persist::Encoder end_a, end_b;
  original.consensus()->Save(end_a);
  restored.consensus()->Save(end_b);
  EXPECT_EQ(end_a.bytes(), end_b.bytes());
}

TEST(EnsembleSnapshotTest, RestoreRefusesAnEnsembleMismatch) {
  // A snapshot written with the ensemble enabled must not restore into a
  // service configured without it (and vice versa): silently dropping the
  // members would silently change the alarm stream.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const std::string path = TempPath("ensemble_mismatch.snap");
  {
    service::FleetService service(EnsembleServiceConfig(2));
    for (const std::int32_t id : ids) service.RegisterVehicle(id);
    for (std::size_t i = 0; i < stream.size() / 2; ++i)
      service.Submit(stream[i]);
    ASSERT_TRUE(service.Checkpoint(path).ok());
  }
  service::ServiceConfig plain = EnsembleServiceConfig(2);
  plain.monitor.ensemble.enabled = false;
  service::FleetService mismatched(plain);
  EXPECT_FALSE(mismatched.RestoreFromFile(path).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace navarchos
