// Unit tests of the RollingEnsemble itself: the sample-count retrain
// schedule, ring replacement, M-of-K voting, deterministic fit-failure
// fallback, pool-vs-inline equivalence, and the save/restore round trip
// including a retrain captured between its boundary and its activation.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "ensemble/ensemble.h"
#include "persist/codec.h"
#include "runtime/thread_pool.h"

namespace navarchos::ensemble {
namespace {

constexpr int kDims = 3;

// Deterministic pseudo-random healthy sample: bounded, smooth-ish, no
// global state. `outlier` pushes every channel far outside the cloud.
std::vector<double> MakeSample(std::uint64_t i, bool outlier = false) {
  std::vector<double> features(kDims);
  std::uint64_t x = i * 6364136223846793005ULL + 1442695040888963407ULL;
  for (int d = 0; d < kDims; ++d) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    const double noise =
        static_cast<double>(x % 10007) / 10007.0 - 0.5;  // [-0.5, 0.5)
    features[d] = static_cast<double>(d) + noise + (outlier ? 100.0 : 0.0);
  }
  return features;
}

EnsembleConfig TestConfig() {
  EnsembleConfig config;
  config.enabled = true;
  config.k = 3;
  config.m = 2;
  config.retrain_every = 16;
  config.activation_lag = 8;
  return config;
}

EnsembleRuntime TestRuntime() {
  EnsembleRuntime runtime;
  runtime.detector = detect::DetectorKind::kClosestPair;
  runtime.threshold.kind = detect::ThresholdConfig::Kind::kSelfTuning;
  runtime.threshold.factor = 4.0;
  runtime.exclusion_radius = 1;
  runtime.window = 32;
  return runtime;
}

std::vector<std::uint8_t> Encoded(const RollingEnsemble& ensemble) {
  persist::Encoder encoder;
  ensemble.Save(encoder);
  return encoder.bytes();
}

TEST(RollingEnsembleTest, ScheduleFillsTheRingAndCapsAtK) {
  RollingEnsemble ensemble(TestConfig(), TestRuntime());
  for (std::uint64_t i = 0; i < 200; ++i) {
    ensemble.OnSample(MakeSample(i));
    ASSERT_LE(ensemble.live_members(), 3);
  }
  EXPECT_EQ(ensemble.live_members(), 3);

  const EnsembleStats stats = ensemble.stats();
  // Boundaries at 16, 32, ..., 192: twelve retrains started. The last one
  // (boundary 192, activation 200) may still be pending.
  EXPECT_EQ(stats.retrains_started, 12u);
  EXPECT_EQ(stats.retrains_failed, 0u);
  EXPECT_EQ(stats.retrains_completed,
            stats.retrains_started - (ensemble.retrain_pending() ? 1u : 0u));
}

TEST(RollingEnsembleTest, ConsensusVotesSeparateOutliersFromHealthy) {
  RollingEnsemble ensemble(TestConfig(), TestRuntime());
  for (std::uint64_t i = 0; i < 120; ++i) ensemble.OnSample(MakeSample(i));
  ASSERT_EQ(ensemble.live_members(), 3);

  const Verdict healthy = ensemble.OnSample(MakeSample(1000));
  EXPECT_EQ(healthy.live, 3);
  EXPECT_LT(healthy.votes, 2);
  EXPECT_FALSE(healthy.pass);  // fewer than m = 2 members agree: vetoed

  const Verdict outlier = ensemble.OnSample(MakeSample(1001, /*outlier=*/true));
  EXPECT_EQ(outlier.live, 3);
  EXPECT_EQ(outlier.votes, 3);
  EXPECT_TRUE(outlier.pass);
}

TEST(RollingEnsembleTest, BootstrapPassesEverythingUntilMembersExist) {
  RollingEnsemble ensemble(TestConfig(), TestRuntime());
  const Verdict verdict = ensemble.OnSample(MakeSample(0));
  EXPECT_EQ(verdict.live, 0);
  EXPECT_TRUE(verdict.pass);  // no members yet: the single *Ref* decides
}

TEST(RollingEnsembleTest, InjectedFitFailureKeepsTheSurvivors) {
  EnsembleConfig config = TestConfig();
  config.inject_fit_failures = {2};  // the second retrain fails
  RollingEnsemble ensemble(config, TestRuntime());
  for (std::uint64_t i = 0; i < 200; ++i) ensemble.OnSample(MakeSample(i));

  const EnsembleStats stats = ensemble.stats();
  EXPECT_EQ(stats.retrains_started, 12u);
  EXPECT_EQ(stats.retrains_failed, 1u);
  EXPECT_EQ(stats.retrains_completed,
            stats.retrains_started - 1u -
                (ensemble.retrain_pending() ? 1u : 0u));
  // The ring still fills from the surviving fits.
  EXPECT_EQ(ensemble.live_members(), 3);
}

TEST(RollingEnsembleTest, PoolAndInlineFitsProduceIdenticalVerdicts) {
  runtime::ThreadPool pool(4);
  RollingEnsemble with_pool(TestConfig(), TestRuntime());
  with_pool.set_pool(&pool);
  RollingEnsemble inline_only(TestConfig(), TestRuntime());

  for (std::uint64_t i = 0; i < 300; ++i) {
    const std::vector<double> sample = MakeSample(i);
    const Verdict a = with_pool.OnSample(sample);
    const Verdict b = inline_only.OnSample(sample);
    ASSERT_EQ(a.votes, b.votes) << "sample " << i;
    ASSERT_EQ(a.live, b.live) << "sample " << i;
    ASSERT_EQ(a.pass, b.pass) << "sample " << i;
  }
  // Same verdicts, same bytes: background training is invisible to state.
  EXPECT_EQ(Encoded(with_pool), Encoded(inline_only));
}

TEST(RollingEnsembleTest, SaveRestoreMidRetrainIsBitIdentical) {
  // Run to a point where a retrain is in flight (between its boundary and
  // its activation), snapshot there, and check the restored ensemble
  // continues exactly like the uninterrupted one - the checkpoint-during-
  // retrain guarantee at its smallest scale.
  RollingEnsemble original(TestConfig(), TestRuntime());
  std::uint64_t i = 0;
  for (; i < 196; ++i) original.OnSample(MakeSample(i));
  ASSERT_TRUE(original.retrain_pending());  // boundary 192, activation 200

  persist::Encoder encoder;
  original.Save(encoder);
  const std::vector<std::uint8_t> bytes = encoder.bytes();

  RollingEnsemble restored(TestConfig(), TestRuntime());
  persist::Decoder decoder(bytes.data(), bytes.size());
  ASSERT_TRUE(restored.Restore(decoder));
  ASSERT_TRUE(restored.retrain_pending());
  EXPECT_EQ(restored.live_members(), original.live_members());

  for (; i < 320; ++i) {
    const std::vector<double> sample = MakeSample(i);
    const Verdict a = original.OnSample(sample);
    const Verdict b = restored.OnSample(sample);
    ASSERT_EQ(a.votes, b.votes) << "sample " << i;
    ASSERT_EQ(a.live, b.live) << "sample " << i;
    ASSERT_EQ(a.pass, b.pass) << "sample " << i;
  }
  EXPECT_EQ(Encoded(original), Encoded(restored));
}

TEST(RollingEnsembleTest, RestoreRejectsAForeignFingerprint) {
  RollingEnsemble original(TestConfig(), TestRuntime());
  for (std::uint64_t i = 0; i < 100; ++i) original.OnSample(MakeSample(i));
  const std::vector<std::uint8_t> bytes = Encoded(original);

  EnsembleConfig other = TestConfig();
  other.k = 4;  // different schedule: the snapshot must be refused
  RollingEnsemble mismatched(other, TestRuntime());
  persist::Decoder decoder(bytes.data(), bytes.size());
  EXPECT_FALSE(mismatched.Restore(decoder));
}

TEST(RollingEnsembleTest, ResetDropsMembersWindowAndPendingRetrain) {
  runtime::ThreadPool pool(2);
  RollingEnsemble ensemble(TestConfig(), TestRuntime());
  ensemble.set_pool(&pool);
  for (std::uint64_t i = 0; i < 196; ++i) ensemble.OnSample(MakeSample(i));
  ASSERT_GT(ensemble.live_members(), 0);
  ASSERT_TRUE(ensemble.retrain_pending());

  ensemble.Reset();
  EXPECT_EQ(ensemble.live_members(), 0);
  EXPECT_FALSE(ensemble.retrain_pending());
  const Verdict verdict = ensemble.OnSample(MakeSample(0));
  EXPECT_EQ(verdict.live, 0);
  EXPECT_TRUE(verdict.pass);
}

TEST(RollingEnsembleTest, SuppressedAlarmCounterTravelsThroughSnapshots) {
  RollingEnsemble ensemble(TestConfig(), TestRuntime());
  for (std::uint64_t i = 0; i < 50; ++i) ensemble.OnSample(MakeSample(i));
  ensemble.RecordSuppressedAlarm();
  ensemble.RecordSuppressedAlarm();
  EXPECT_EQ(ensemble.stats().consensus_suppressed_alarms, 2u);

  const std::vector<std::uint8_t> bytes = Encoded(ensemble);
  RollingEnsemble restored(TestConfig(), TestRuntime());
  persist::Decoder decoder(bytes.data(), bytes.size());
  ASSERT_TRUE(restored.Restore(decoder));
  EXPECT_EQ(restored.stats().consensus_suppressed_alarms, 2u);
}

}  // namespace
}  // namespace navarchos::ensemble
