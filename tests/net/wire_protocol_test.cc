// The wire protocol under the network ingest front end: every message type
// round-trips exactly, and no malformed input - every-byte-flip,
// every-prefix-truncation, oversized length claims, CRC mismatches - may
// crash the reader, trigger an unbounded allocation, or be accepted as a
// valid message. Mirrors the tests/persist corruption suites one layer up.
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"

namespace navarchos::net {
namespace {

telemetry::SensorFrame RecordFrame(std::int32_t vehicle, std::int64_t minute) {
  telemetry::Record record;
  record.vehicle_id = vehicle;
  record.timestamp = minute;
  for (int i = 0; i < telemetry::kNumPids; ++i)
    record.pids[static_cast<std::size_t>(i)] = 100.0 * vehicle + i + 0.25;
  return telemetry::SensorFrame::OfRecord(record);
}

telemetry::SensorFrame EventFrame(std::int32_t vehicle, std::int64_t minute) {
  telemetry::FleetEvent event;
  event.vehicle_id = vehicle;
  event.timestamp = minute;
  event.type = telemetry::EventType::kRepair;
  event.code = "P0300";
  event.recorded = true;
  event.fault_id = 3;
  return telemetry::SensorFrame::OfEvent(event);
}

/// Feeds `bytes` through a fresh reader and returns the first result.
MessageReader::Result ReadOne(const std::vector<std::uint8_t>& bytes,
                              WireMessage* out) {
  MessageReader reader;
  reader.Append(bytes.data(), bytes.size());
  return reader.Next(out);
}

TEST(WireProtocolTest, HelloRoundTrips) {
  HelloMessage hello;
  hello.session_id = "fleet-gateway-7";
  hello.resume = true;
  hello.vehicle_ids = {4, 8, 15, 16, 23, 42};
  const auto bytes = EncodeHello(hello);

  WireMessage message;
  ASSERT_EQ(ReadOne(bytes, &message), MessageReader::Result::kMessage);
  ASSERT_EQ(message.type, MessageType::kHello);
  HelloMessage decoded;
  ASSERT_TRUE(DecodeHello(message.payload, &decoded).ok());
  EXPECT_EQ(decoded.protocol_version, kProtocolVersion);
  EXPECT_EQ(decoded.session_id, hello.session_id);
  EXPECT_EQ(decoded.resume, hello.resume);
  EXPECT_EQ(decoded.vehicle_ids, hello.vehicle_ids);
}

TEST(WireProtocolTest, FramesRoundTripBitExactly) {
  FramesMessage frames;
  frames.first_seq = 0xDEADBEEF01234567ull;
  frames.frames.push_back(RecordFrame(7, 1234));
  frames.frames.push_back(EventFrame(7, 1235));
  // Doubles must survive bit-exactly, NaN and negative zero included.
  telemetry::SensorFrame nan_frame = RecordFrame(9, 99);
  nan_frame.record.pids[0] = std::numeric_limits<double>::quiet_NaN();
  nan_frame.record.pids[1] = -0.0;
  nan_frame.record.pids[2] = std::numeric_limits<double>::infinity();
  frames.frames.push_back(nan_frame);
  const auto bytes = EncodeFrames(frames);

  WireMessage message;
  ASSERT_EQ(ReadOne(bytes, &message), MessageReader::Result::kMessage);
  ASSERT_EQ(message.type, MessageType::kFrames);
  FramesMessage decoded;
  ASSERT_TRUE(DecodeFrames(message.payload, &decoded).ok());
  EXPECT_EQ(decoded.first_seq, frames.first_seq);
  ASSERT_EQ(decoded.frames.size(), frames.frames.size());

  EXPECT_EQ(decoded.frames[0].kind, telemetry::SensorFrame::Kind::kRecord);
  EXPECT_EQ(decoded.frames[0].record.vehicle_id, 7);
  EXPECT_EQ(decoded.frames[0].record.timestamp, 1234);
  EXPECT_EQ(decoded.frames[0].record.pids, frames.frames[0].record.pids);

  EXPECT_EQ(decoded.frames[1].kind, telemetry::SensorFrame::Kind::kEvent);
  EXPECT_EQ(decoded.frames[1].event.type, telemetry::EventType::kRepair);
  EXPECT_EQ(decoded.frames[1].event.code, "P0300");
  EXPECT_TRUE(decoded.frames[1].event.recorded);
  EXPECT_EQ(decoded.frames[1].event.fault_id, 3);

  EXPECT_TRUE(std::isnan(decoded.frames[2].record.pids[0]));
  EXPECT_TRUE(std::signbit(decoded.frames[2].record.pids[1]));
  EXPECT_TRUE(std::isinf(decoded.frames[2].record.pids[2]));
}

TEST(WireProtocolTest, ControlMessagesRoundTrip) {
  WireMessage message;

  const auto welcome_bytes = EncodeWelcome(WelcomeMessage{987654321, {}});
  ASSERT_EQ(ReadOne(welcome_bytes, &message), MessageReader::Result::kMessage);
  WelcomeMessage welcome;
  ASSERT_TRUE(DecodeWelcome(message.payload, &welcome).ok());
  EXPECT_EQ(welcome.next_seq, 987654321u);

  const auto ack_bytes = EncodeAck(AckMessage{1000, 17});
  ASSERT_EQ(ReadOne(ack_bytes, &message), MessageReader::Result::kMessage);
  AckMessage ack;
  ASSERT_TRUE(DecodeAck(message.payload, &ack).ok());
  EXPECT_EQ(ack.through_seq, 1000u);
  EXPECT_EQ(ack.sheds, 17u);

  const auto nack_bytes = EncodeNack(NackMessage{55, 3, NackCode::kQueueFull});
  ASSERT_EQ(ReadOne(nack_bytes, &message), MessageReader::Result::kMessage);
  NackMessage nack;
  ASSERT_TRUE(DecodeNack(message.payload, &nack).ok());
  EXPECT_EQ(nack.seq, 55u);
  EXPECT_EQ(nack.vehicle_id, 3);
  EXPECT_EQ(nack.code, NackCode::kQueueFull);

  const auto fin_bytes = EncodeFin(FinMessage{424242});
  ASSERT_EQ(ReadOne(fin_bytes, &message), MessageReader::Result::kMessage);
  FinMessage fin;
  ASSERT_TRUE(DecodeFin(message.payload, &fin).ok());
  EXPECT_EQ(fin.total_seq, 424242u);

  const auto error_bytes = EncodeError(ErrorMessage{"lane 3 on fire"});
  ASSERT_EQ(ReadOne(error_bytes, &message), MessageReader::Result::kMessage);
  ErrorMessage error;
  ASSERT_TRUE(DecodeError(message.payload, &error).ok());
  EXPECT_EQ(error.message, "lane 3 on fire");
}

TEST(WireProtocolTest, MessagesReassembleAcrossArbitrarySplits) {
  // TCP delivers byte runs, not messages: two messages fed one byte at a
  // time must still come out whole and in order.
  FramesMessage frames;
  frames.first_seq = 5;
  frames.frames.push_back(RecordFrame(1, 10));
  std::vector<std::uint8_t> stream = EncodeFrames(frames);
  const auto ack = EncodeAck(AckMessage{6, 0});
  stream.insert(stream.end(), ack.begin(), ack.end());

  MessageReader reader;
  std::vector<WireMessage> messages;
  for (const std::uint8_t byte : stream) {
    reader.Append(&byte, 1);
    WireMessage message;
    while (reader.Next(&message) == MessageReader::Result::kMessage)
      messages.push_back(message);
  }
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].type, MessageType::kFrames);
  EXPECT_EQ(messages[1].type, MessageType::kAck);
}

// Every single-byte corruption of a valid message must be rejected: flips
// inside the CRC-covered region (type, length, payload) by the checksum,
// flips in the magic by the desync check, flips in the CRC field itself by
// the comparison. Two masks, like the snapshot corruption suite.
TEST(WireProtocolTest, EveryByteFlipIsRejected) {
  FramesMessage frames;
  frames.first_seq = 3;
  frames.frames.push_back(RecordFrame(2, 20));
  frames.frames.push_back(EventFrame(2, 21));
  const std::vector<std::vector<std::uint8_t>> originals = {
      EncodeFrames(frames),
      EncodeHello(HelloMessage{kProtocolVersion, "s", false, {1, 2}, {}}),
      EncodeAck(AckMessage{9, 1}),
  };
  for (const auto& original : originals) {
    for (std::size_t i = 0; i < original.size(); ++i) {
      for (const std::uint8_t mask : {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
        std::vector<std::uint8_t> corrupt = original;
        corrupt[i] ^= mask;
        WireMessage message;
        const MessageReader::Result result = ReadOne(corrupt, &message);
        // A flip may leave the frame structurally incomplete (a shrunken
        // length field keeps trailing garbage); any outcome but a clean
        // kMessage acceptance is a correct rejection. If the reader does
        // emit a message, it must fail the CRC... which it cannot, so a
        // kMessage here is always a verification bug.
        EXPECT_NE(result, MessageReader::Result::kMessage)
            << "byte " << i << " mask " << int(mask)
            << " slipped through frame verification";
      }
    }
  }
}

TEST(WireProtocolTest, EveryPrefixTruncationYieldsNoMessage) {
  FramesMessage frames;
  frames.first_seq = 0;
  frames.frames.push_back(RecordFrame(1, 1));
  const auto bytes = EncodeFrames(frames);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    MessageReader reader;
    reader.Append(bytes.data(), len);
    WireMessage message;
    const MessageReader::Result result = reader.Next(&message);
    // A truncated frame is either visibly incomplete (kNeedMore - the
    // reader waits for the rest) but never a complete message.
    EXPECT_NE(result, MessageReader::Result::kMessage) << "prefix " << len;
  }
}

TEST(WireProtocolTest, OversizedLengthClaimIsRejectedBeforeAllocating) {
  // Hand-craft a header claiming a payload far above kMaxPayloadBytes: the
  // reader must reject on the bound, never wait for (or reserve) the bytes.
  std::vector<std::uint8_t> bytes = EncodeAck(AckMessage{1, 0});
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 5, &huge, sizeof(huge));
  WireMessage message;
  MessageReader reader;
  reader.Append(bytes.data(), bytes.size());
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kError);
  EXPECT_NE(reader.error().find("exceeds the protocol maximum"),
            std::string::npos);
}

TEST(WireProtocolTest, CrcMismatchNamesTheMessageType) {
  auto bytes = EncodeFin(FinMessage{77});
  bytes[bytes.size() - 1] ^= 0x10;  // corrupt the stored CRC
  WireMessage message;
  MessageReader reader;
  reader.Append(bytes.data(), bytes.size());
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kError);
  EXPECT_NE(reader.error().find("CRC mismatch"), std::string::npos);
  EXPECT_NE(reader.error().find("FIN"), std::string::npos);
  // The error latches: further reads keep failing.
  EXPECT_EQ(reader.Next(&message), MessageReader::Result::kError);
}

TEST(WireProtocolTest, FrameCountClaimBeyondPayloadFailsCleanly) {
  // A FRAMES payload whose count prefix claims more frames than its bytes
  // could hold must fail the bound check inside DecodeFrames.
  persist::Encoder encoder;
  encoder.PutU64(0);            // first_seq
  encoder.PutU32(0xFFFFFFFFu);  // absurd frame count
  const auto framed = EncodeFrame(MessageType::kFrames, encoder.bytes());
  WireMessage message;
  ASSERT_EQ(ReadOne(framed, &message), MessageReader::Result::kMessage);
  FramesMessage decoded;
  EXPECT_FALSE(DecodeFrames(message.payload, &decoded).ok());
}

TEST(WireProtocolTest, UnknownEventTypeAndFrameKindAreRejected) {
  persist::Encoder kind_encoder;
  kind_encoder.PutU8(7);  // neither kRecord nor kEvent
  {
    persist::Decoder decoder(kind_encoder.bytes());
    telemetry::SensorFrame frame;
    EXPECT_FALSE(DecodeSensorFrame(decoder, &frame));
  }

  telemetry::SensorFrame event = EventFrame(1, 1);
  persist::Encoder event_encoder;
  EncodeSensorFrame(event_encoder, event);
  auto bytes = event_encoder.TakeBytes();
  bytes[1 + 4 + 8] = 200;  // the event-type byte, out of range
  {
    persist::Decoder decoder(bytes);
    telemetry::SensorFrame frame;
    EXPECT_FALSE(DecodeSensorFrame(decoder, &frame));
  }
}

TEST(WireProtocolTest, GarbageStreamIsRejectedNotCrashed) {
  // 4 KiB of deterministic pseudo-garbage: whatever it decodes to, the
  // reader must latch an error or ask for more - never emit a message.
  std::vector<std::uint8_t> garbage(4096);
  std::uint32_t state = 0x12345678u;
  for (auto& byte : garbage) {
    state = state * 1664525u + 1013904223u;
    byte = static_cast<std::uint8_t>(state >> 24);
  }
  MessageReader reader;
  reader.Append(garbage.data(), garbage.size());
  WireMessage message;
  EXPECT_NE(reader.Next(&message), MessageReader::Result::kMessage);
}

}  // namespace
}  // namespace navarchos::net
