// Chaos invariant of the network ingest front end: under every scripted
// transport fault schedule - connection resets at arbitrary byte offsets,
// short-read/short-write regimes, EINTR storms, stalls, silent half-open
// death - the self-healing client plus hardened server still admit every
// frame exactly once, and the served result is bit-identical to the
// in-process FleetService run at worker thread counts 1 and 4. Faults are
// deterministic and manifest-recorded (the transport-layer mirror of
// telemetry::CorruptionModel), so every run is attributable: which
// connection, which fault, at which cumulative byte offset.
#include <poll.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_injection.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/socket.h"
#include "net/transport.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

// ---------------------------------------------------------------- helpers

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

service::ServiceConfig ServiceConfigWith(int threads) {
  service::ServiceConfig config;
  config.monitor = FastMonitorConfig();
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 32;
  return config;
}

void ExpectRunsIdentical(const core::FleetRunResult& a,
                         const core::FleetRunResult& b) {
  ASSERT_EQ(a.alarms.size(), b.alarms.size());
  for (std::size_t i = 0; i < a.alarms.size(); ++i) {
    ASSERT_EQ(a.alarms[i].vehicle_id, b.alarms[i].vehicle_id);
    ASSERT_EQ(a.alarms[i].timestamp, b.alarms[i].timestamp);
    ASSERT_EQ(a.alarms[i].channel, b.alarms[i].channel);
    ASSERT_EQ(a.alarms[i].score, b.alarms[i].score);
    ASSERT_EQ(a.alarms[i].threshold, b.alarms[i].threshold);
  }
  ASSERT_EQ(a.scored_samples.size(), b.scored_samples.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t s = 0; s < a.scored_samples[v].size(); ++s)
      ASSERT_EQ(a.scored_samples[v][s].scores, b.scored_samples[v][s].scores);
  }
  ASSERT_EQ(a.quality.size(), b.quality.size());
  for (std::size_t v = 0; v < a.quality.size(); ++v) {
    ASSERT_EQ(a.quality[v].records_seen, b.quality[v].records_seen);
    ASSERT_EQ(a.quality[v].RecordsDropped(), b.quality[v].RecordsDropped());
  }
}

/// Outcome of one chaos run: the served result plus everything needed to
/// check the exactly-once and attribution invariants.
struct ChaosOutcome {
  core::FleetRunResult result;
  net::ServerStats stats;
  net::FaultManifest manifest;
  net::ClientStats client_stats;
  std::size_t client_nacks = 0;
};

/// Streams `stream` through an IngestServer whose accepted connections are
/// wrapped in FaultySockets executing `scripts` (connection n runs script
/// n; connections beyond the list are clean, so every run terminates). The
/// self-healing client must absorb every fault; any surfaced error fails
/// the calling test.
ChaosOutcome RunUnderChaos(const std::vector<telemetry::SensorFrame>& stream,
                           const std::vector<std::int32_t>& ids,
                           const service::ServiceConfig& config,
                           const std::vector<net::FaultScript>& scripts) {
  service::FleetService svc(config);
  net::FaultInjector injector(scripts);

  net::ServerConfig server_config;
  server_config.transport_factory = injector.Factory();
  // The only defence against a half-open peer: reap it well before the
  // client's per-op deadline triggers the healing reconnect, so the
  // session is unbound by the time the resume HELLO arrives.
  server_config.idle_timeout_ms = 250;
  net::IngestServer server(&svc, server_config);
  EXPECT_TRUE(server.Start().ok());

  net::ClientConfig client_config;
  client_config.port = server.port();
  client_config.session_id = "chaos";
  client_config.batch_frames = 64;
  client_config.backoff_ms = 1;
  client_config.max_backoff_ms = 8;
  client_config.jitter_seed = 7;
  client_config.connect_timeout_ms = 5000;
  client_config.op_deadline_ms = 1000;
  client_config.connect_attempts = static_cast<int>(scripts.size()) + 8;
  client_config.max_reconnects = static_cast<int>(scripts.size()) + 8;

  net::IngestClient client(client_config);
  EXPECT_TRUE(client.Connect(ids).ok());
  for (std::size_t i = client.next_seq(); i < stream.size(); ++i)
    EXPECT_TRUE(client.Send(stream[i]).ok());
  EXPECT_TRUE(client.Finish().ok());

  EXPECT_TRUE(server.WaitForFinishedSessions(1, 60000));
  server.Stop();
  svc.Drain();

  ChaosOutcome outcome;
  outcome.stats = server.stats();
  outcome.manifest = injector.manifest();
  outcome.client_stats = client.stats();
  outcome.client_nacks = client.nacks().size();
  outcome.result = svc.TakeResult();
  return outcome;
}

/// The exactly-once invariant: every frame of the stream admitted once,
/// no duplicates (the healing client rewinds to the WELCOME cursor instead
/// of blindly replaying), no sheds under kBlock.
void ExpectExactlyOnce(const ChaosOutcome& outcome, std::size_t frames) {
  EXPECT_EQ(outcome.stats.frames_admitted, frames);
  EXPECT_EQ(outcome.stats.duplicates_skipped, 0u);
  EXPECT_EQ(outcome.stats.frames_shed, 0u);
  EXPECT_EQ(outcome.client_nacks, 0u);
}

// ------------------------------------------------- FaultySocket unit tests

/// One loopback TCP connection: `faulty` is the accepted side wrapped by
/// `injector`'s factory, `peer` the raw connecting side.
struct FaultyPair {
  std::unique_ptr<net::Transport> faulty;
  net::Socket peer;
};

FaultyPair MakeFaultyPair(net::FaultInjector* injector) {
  FaultyPair pair;
  net::Listener listener;
  EXPECT_TRUE(listener.Bind("127.0.0.1", 0).ok());
  EXPECT_TRUE(net::ConnectTcp("127.0.0.1", listener.port(), &pair.peer).ok());
  net::Socket served;
  EXPECT_TRUE(listener.Accept(&served).ok());
  pair.faulty = injector->Factory()(std::move(served));
  return pair;
}

/// Reads one chunk through a (possibly faulty) non-blocking transport,
/// waiting out would-block stalls. Returns the final IoStatus.
net::IoStatus ReadChunk(net::Transport* transport, std::uint8_t* buffer,
                        std::size_t capacity, std::size_t* received) {
  for (int spins = 0; spins < 10000; ++spins) {
    std::string error;
    const net::IoStatus status =
        transport->Read(buffer, capacity, received, &error);
    if (status != net::IoStatus::kWouldBlock) return status;
    net::WaitReady(*transport, /*for_write=*/false, 10);
  }
  return net::IoStatus::kError;
}

TEST(FaultInjectionTest, ShortReadsAreCappedAtTheScriptedChunk) {
  net::FaultScript script;
  script.read_chunk = 3;
  net::FaultInjector injector({script});
  FaultyPair pair = MakeFaultyPair(&injector);

  const std::vector<std::uint8_t> payload(10, 0x5A);
  ASSERT_TRUE(pair.peer.SendAll(payload.data(), payload.size()).ok());

  std::uint8_t buffer[64];
  std::size_t total = 0;
  while (total < payload.size()) {
    std::size_t received = 0;
    ASSERT_EQ(ReadChunk(pair.faulty.get(), buffer, sizeof(buffer), &received),
              net::IoStatus::kOk);
    EXPECT_LE(received, script.read_chunk);  // never more than the chunk
    total += received;
  }
  EXPECT_EQ(total, payload.size());  // chunking loses nothing
  EXPECT_EQ(injector.manifest().CountOf(net::FaultKind::kShortRead), 1u);
}

TEST(FaultInjectionTest, ResetFiresAtTheExactCumulativeByteOffset) {
  net::FaultScript script;
  script.reset_after_bytes = 5;
  net::FaultInjector injector({script});
  FaultyPair pair = MakeFaultyPair(&injector);

  const std::vector<std::uint8_t> payload(10, 0xC3);
  ASSERT_TRUE(pair.peer.SendAll(payload.data(), payload.size()).ok());

  // Reads are capped so the boundary lands exactly: 5 bytes arrive, then
  // the reset - regardless of how the kernel chunked the arrival.
  std::uint8_t buffer[64];
  std::size_t total = 0;
  while (true) {
    std::size_t received = 0;
    const net::IoStatus status =
        ReadChunk(pair.faulty.get(), buffer, sizeof(buffer), &received);
    if (status != net::IoStatus::kOk) {
      EXPECT_EQ(status, net::IoStatus::kError);
      break;
    }
    total += received;
  }
  EXPECT_EQ(total, 5u);
  ASSERT_EQ(injector.manifest().CountOf(net::FaultKind::kReset), 1u);
  for (const net::FaultEvent& event : injector.manifest().events) {
    if (event.kind == net::FaultKind::kReset) {
      EXPECT_EQ(event.offset, 5u);
    }
  }

  // The reset replays: the transport stays dead, it does not heal itself.
  std::size_t received = 0;
  std::string error;
  EXPECT_EQ(pair.faulty->Read(buffer, sizeof(buffer), &received, &error),
            net::IoStatus::kError);
}

TEST(FaultInjectionTest, HalfOpenSwallowsWritesAndStarvesReads) {
  net::FaultScript script;
  script.half_open_after_bytes = 4;
  net::FaultInjector injector({script});
  FaultyPair pair = MakeFaultyPair(&injector);

  const std::vector<std::uint8_t> payload(4, 0x11);
  ASSERT_TRUE(pair.peer.SendAll(payload.data(), payload.size()).ok());
  std::uint8_t buffer[64];
  std::size_t total = 0;
  while (total < payload.size()) {
    std::size_t received = 0;
    ASSERT_EQ(ReadChunk(pair.faulty.get(), buffer, sizeof(buffer), &received),
              net::IoStatus::kOk);
    total += received;
  }

  // Past the threshold the link is silently dead: writes pretend success
  // (nothing reaches the peer), reads never progress and never EOF.
  std::size_t written = 0;
  std::string error;
  ASSERT_EQ(pair.faulty->Write(payload.data(), payload.size(), &written, &error),
            net::IoStatus::kOk);
  EXPECT_EQ(written, payload.size());
  std::size_t received = 0;
  EXPECT_EQ(pair.faulty->Read(buffer, sizeof(buffer), &received, &error),
            net::IoStatus::kWouldBlock);

  // The peer sees none of the swallowed bytes.
  pollfd pfd{pair.peer.fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&pfd, 1, 50), 0);
  EXPECT_EQ(injector.manifest().CountOf(net::FaultKind::kHalfOpen), 1u);
}

TEST(FaultInjectionTest, InterruptStormYieldsSpuriousWouldBlock) {
  net::FaultScript script;
  script.interrupt_every = 2;  // every second operation is interrupted
  net::FaultInjector injector({script});
  FaultyPair pair = MakeFaultyPair(&injector);

  const std::uint8_t byte = 0x7F;
  int ok = 0;
  int interrupted = 0;
  for (int op = 0; op < 6; ++op) {
    std::size_t written = 0;
    std::string error;
    const net::IoStatus status =
        pair.faulty->Write(&byte, 1, &written, &error);
    if (status == net::IoStatus::kOk)
      ++ok;
    else if (status == net::IoStatus::kWouldBlock)
      ++interrupted;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(interrupted, 3);
  EXPECT_EQ(injector.manifest().CountOf(net::FaultKind::kInterrupt), 3u);
}

TEST(FaultInjectionTest, SeededScriptsAreReproducible) {
  const auto a = net::SeededFaultScripts(42, 8);
  const auto b = net::SeededFaultScripts(42, 8);
  ASSERT_EQ(a.size(), b.size());
  bool any_active = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Describe(), b[i].Describe());
    any_active = any_active || !a[i].Inactive();
  }
  EXPECT_TRUE(any_active);

  const auto c = net::SeededFaultScripts(43, 8);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    differs = differs || a[i].Describe() != c[i].Describe();
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------- chaos invariants

TEST(ChaosDeterminismTest, SeededScheduleCorpusPreservesResultsAtBothThreadCounts) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto in_process = service::RunStream(stream, ids, ServiceConfigWith(1));

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    const auto scripts = net::SeededFaultScripts(seed, 6);

    const ChaosOutcome serial =
        RunUnderChaos(stream, ids, ServiceConfigWith(1), scripts);
    const ChaosOutcome parallel =
        RunUnderChaos(stream, ids, ServiceConfigWith(4), scripts);

    ExpectExactlyOnce(serial, stream.size());
    ExpectExactlyOnce(parallel, stream.size());
    ExpectRunsIdentical(in_process, serial.result);
    ExpectRunsIdentical(in_process, parallel.result);
    // The same schedule injects the same faults in both runs: the corpus
    // actually exercised the transport, and deterministically so.
    EXPECT_GT(serial.manifest.Total(), 0u);
    EXPECT_EQ(serial.manifest.Total(), parallel.manifest.Total());
  }
}

TEST(ChaosDeterminismTest, ResetAtEveryHandshakeByteOffsetStillAdmitsExactlyOnce) {
  // Kill the first 48 connections at byte offsets 1..48 - a sweep across
  // every position of the HELLO/WELCOME handshake - and let the healing
  // client grind through them. The 49th connection onward is clean.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto in_process = service::RunStream(stream, ids, ServiceConfigWith(1));

  std::vector<net::FaultScript> scripts(48);
  for (std::size_t i = 0; i < scripts.size(); ++i)
    scripts[i].reset_after_bytes = i + 1;

  const ChaosOutcome outcome =
      RunUnderChaos(stream, ids, ServiceConfigWith(4), scripts);
  ExpectExactlyOnce(outcome, stream.size());
  ExpectRunsIdentical(in_process, outcome.result);
  EXPECT_EQ(outcome.manifest.CountOf(net::FaultKind::kReset), scripts.size());
}

TEST(ChaosDeterminismTest, HalfOpenDeathIsReapedAndTheClientHealsThrough) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);
  const auto in_process = service::RunStream(stream, ids, ServiceConfigWith(1));

  // The first connection dies silently mid-stream: no FIN, no RST. Only
  // the server's idle reaping frees the session binding; only the client's
  // per-op deadline detects the missing ACK and triggers the heal.
  net::FaultScript half_open;
  half_open.half_open_after_bytes = 20000;
  const ChaosOutcome outcome =
      RunUnderChaos(stream, ids, ServiceConfigWith(4), {half_open});
  ExpectExactlyOnce(outcome, stream.size());
  ExpectRunsIdentical(in_process, outcome.result);
  EXPECT_EQ(outcome.manifest.CountOf(net::FaultKind::kHalfOpen), 1u);
  EXPECT_GE(outcome.stats.idle_reaps, 1u);
  EXPECT_GE(outcome.client_stats.reconnects, 1u);
}

}  // namespace
}  // namespace navarchos
