// Behaviour of the ingest server/client pair and the per-frame Admission
// API it is built on: sequence-number assignment, shed attribution (NACKs
// over the wire, Admission codes in process), exactly-once duplicate
// skipping on resume, and protocol violations failing the connection
// instead of the service.
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/stream.h"

namespace navarchos::net {
namespace {

telemetry::SensorFrame RecordFrame(std::int32_t vehicle, std::int64_t minute) {
  telemetry::Record record;
  record.vehicle_id = vehicle;
  record.timestamp = minute;
  record.pids.fill(static_cast<double>(minute) * 0.5);
  return telemetry::SensorFrame::OfRecord(record);
}

service::ServiceConfig TinyServiceConfig(
    service::BackpressurePolicy policy = service::BackpressurePolicy::kBlock) {
  service::ServiceConfig config;
  config.runtime = runtime::RuntimeConfig{1};
  config.queue_capacity = 2;
  config.backpressure = policy;
  return config;
}

/// A protocol-level test client: raw socket plus reassembly, so tests can
/// send exactly the bytes they mean to (including protocol violations the
/// real IngestClient refuses to produce).
class RawClient {
 public:
  bool Connect(std::uint16_t port) {
    return ConnectTcp("127.0.0.1", port, &socket_).ok();
  }

  bool SendBytes(const std::vector<std::uint8_t>& bytes) {
    return socket_.SendAll(bytes.data(), bytes.size()).ok();
  }

  /// Reads until one message is reassembled; returns false on EOF or
  /// transport/protocol error.
  bool ReadMessage(WireMessage* out) {
    std::vector<std::uint8_t> buffer(4096);
    while (true) {
      const MessageReader::Result result = reader_.Next(out);
      if (result == MessageReader::Result::kMessage) return true;
      if (result == MessageReader::Result::kError) return false;
      std::size_t received = 0;
      std::string error;
      const Socket::RecvResult recv =
          socket_.Recv(buffer.data(), buffer.size(), &received, &error);
      if (recv != Socket::RecvResult::kData) return false;
      reader_.Append(buffer.data(), received);
    }
  }

  /// Sends HELLO and expects WELCOME; returns the cursor (or -1 on refusal).
  std::int64_t Hello(const std::string& session_id, bool resume,
                     const std::vector<std::int32_t>& ids) {
    HelloMessage hello;
    hello.session_id = session_id;
    hello.resume = resume;
    hello.vehicle_ids = ids;
    if (!SendBytes(EncodeHello(hello))) return -1;
    WireMessage message;
    if (!ReadMessage(&message) || message.type != MessageType::kWelcome)
      return -1;
    WelcomeMessage welcome;
    if (!DecodeWelcome(message.payload, &welcome).ok()) return -1;
    return static_cast<std::int64_t>(welcome.next_seq);
  }

  void Close() { socket_.Close(); }

 private:
  Socket socket_;
  MessageReader reader_;
};

TEST(AdmissionTest, AcceptedFramesCarryTheirSequenceNumbers) {
  service::FleetService svc(TinyServiceConfig());
  svc.RegisterVehicle(7);
  svc.RegisterVehicle(9);

  const service::Admission a = svc.Ingest(RecordFrame(7, 10));
  const service::Admission b = svc.Ingest(RecordFrame(9, 10));
  const service::Admission c = svc.Ingest(RecordFrame(7, 11));

  EXPECT_EQ(a.code, service::AdmissionCode::kAccepted);
  EXPECT_TRUE(a.accepted());
  EXPECT_EQ(a.vehicle_id, 7);
  EXPECT_EQ(a.lane, 0);
  EXPECT_EQ(a.vehicle_seq, 0u);

  EXPECT_EQ(b.vehicle_id, 9);
  EXPECT_EQ(b.lane, 1);
  EXPECT_EQ(b.vehicle_seq, 0u);

  EXPECT_EQ(c.lane, 0);
  EXPECT_EQ(c.vehicle_seq, 1u);  // second frame of vehicle 7

  // Global sequence numbers follow admission order.
  EXPECT_EQ(b.global_seq, a.global_seq + 1);
  EXPECT_EQ(c.global_seq, b.global_seq + 1);

  svc.Drain();
  (void)svc.TakeResult();
}

TEST(AdmissionTest, DrainingServiceShedsDeterministically) {
  service::FleetService svc(TinyServiceConfig());
  svc.RegisterVehicle(1);
  ASSERT_TRUE(svc.Ingest(RecordFrame(1, 0)).accepted());
  svc.Drain();

  const service::Admission shed = svc.Ingest(RecordFrame(1, 1));
  EXPECT_EQ(shed.code, service::AdmissionCode::kShedDraining);
  EXPECT_FALSE(shed.accepted());
  EXPECT_EQ(shed.lane, -1);  // shed before routing
  EXPECT_EQ(svc.stats().frames_rejected, 1u);
  (void)svc.TakeResult();
}

TEST(AdmissionTest, RejectPolicyAttributesShedsToVehicleSlots) {
  // One worker, a capacity-2 lane and kReject: flooding a single vehicle
  // must eventually shed, and every shed must name the per-vehicle slot it
  // would have taken.
  service::FleetService svc(
      TinyServiceConfig(service::BackpressurePolicy::kReject));
  svc.RegisterVehicle(5);

  const int kFrames = 512;
  std::vector<service::Admission> sheds;
  std::uint64_t accepted = 0;
  for (int i = 0; i < kFrames; ++i) {
    const service::Admission result = svc.Ingest(RecordFrame(5, i));
    if (result.accepted()) {
      ++accepted;
    } else {
      EXPECT_EQ(result.code, service::AdmissionCode::kShedQueueFull);
      EXPECT_EQ(result.vehicle_id, 5);
      EXPECT_EQ(result.lane, 0);
      sheds.push_back(result);
    }
  }
  svc.Drain();

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.frames_submitted, static_cast<std::size_t>(kFrames));
  EXPECT_EQ(stats.frames_accepted, accepted);
  EXPECT_EQ(stats.frames_rejected, sheds.size());
  EXPECT_EQ(accepted + sheds.size(), static_cast<std::uint64_t>(kFrames));
  // vehicle_seq of a shed frame is the slot it failed to take, so each shed
  // repeats the then-current next slot; slots never decrease.
  for (std::size_t i = 1; i < sheds.size(); ++i)
    EXPECT_GE(sheds[i].vehicle_seq, sheds[i - 1].vehicle_seq);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, ShedsSurfaceAsNacksWithWireSequenceNumbers) {
  service::FleetService svc(
      TinyServiceConfig(service::BackpressurePolicy::kReject));
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  ClientConfig config;
  config.port = server.port();
  config.session_id = "nack-test";
  config.batch_frames = 32;
  IngestClient client(config);
  ASSERT_TRUE(client.Connect({5}).ok());

  const std::uint64_t kFrames = 512;
  for (std::uint64_t i = 0; i < kFrames; ++i)
    ASSERT_TRUE(client.Send(RecordFrame(5, static_cast<std::int64_t>(i))).ok());
  ASSERT_TRUE(client.Finish().ok());

  ASSERT_TRUE(server.WaitForFinishedSessions(1, 30000));
  server.Stop();
  svc.Drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_received, kFrames);
  EXPECT_EQ(stats.frames_admitted + stats.frames_shed, kFrames);
  // Every shed is attributable: one NACK per shed frame, carrying the
  // frame's wire sequence number and the vehicle it belonged to.
  ASSERT_EQ(client.nacks().size(), stats.frames_shed);
  for (const NackMessage& nack : client.nacks()) {
    EXPECT_LT(nack.seq, kFrames);
    EXPECT_EQ(nack.vehicle_id, 5);
    EXPECT_EQ(nack.code, NackCode::kQueueFull);
  }
  EXPECT_EQ(client.acked_through(), kFrames);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, ReplayedBatchIsSkippedExactlyOnce) {
  // A client that never saw its ACK re-sends the whole batch after
  // reconnecting; the server must admit none of the replayed frames twice.
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  FramesMessage batch;
  batch.first_seq = 0;
  for (int i = 0; i < 3; ++i) batch.frames.push_back(RecordFrame(1, i));

  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_EQ(raw.Hello("replay-test", false, {1}), 0);
  ASSERT_TRUE(raw.SendBytes(EncodeFrames(batch)));
  WireMessage message;
  ASSERT_TRUE(raw.ReadMessage(&message));
  ASSERT_EQ(message.type, MessageType::kAck);

  // Same batch again on the same connection (as a resumed client with a
  // stale cursor would): all three frames are duplicates.
  ASSERT_TRUE(raw.SendBytes(EncodeFrames(batch)));
  ASSERT_TRUE(raw.ReadMessage(&message));
  ASSERT_EQ(message.type, MessageType::kAck);
  AckMessage ack;
  ASSERT_TRUE(DecodeAck(message.payload, &ack).ok());
  EXPECT_EQ(ack.through_seq, 3u);  // cursor did not move

  raw.Close();
  server.Stop();
  svc.Drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_received, 6u);
  EXPECT_EQ(stats.frames_admitted, 3u);
  EXPECT_EQ(stats.duplicates_skipped, 3u);
  EXPECT_EQ(svc.stats().frames_accepted, 3u);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, ResumedSessionIsWelcomedWithItsCursor) {
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  ClientConfig config;
  config.port = server.port();
  config.session_id = "resume-test";
  {
    IngestClient first(config);
    ASSERT_TRUE(first.Connect({1}).ok());
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(first.Send(RecordFrame(1, i)).ok());
    ASSERT_TRUE(first.Flush().ok());
    first.Abort();  // connection dies after the batch was ACKed
  }
  {
    IngestClient second(config);
    ASSERT_TRUE(second.Connect({1}, /*resume=*/true).ok());
    EXPECT_EQ(second.next_seq(), 5u);  // WELCOME carried the cursor
    for (int i = 5; i < 8; ++i)
      ASSERT_TRUE(second.Send(RecordFrame(1, i)).ok());
    ASSERT_TRUE(second.Finish().ok());
  }
  ASSERT_TRUE(server.WaitForFinishedSessions(1, 30000));
  server.Stop();
  svc.Drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions_started, 1u);
  EXPECT_EQ(stats.resumes, 1u);
  EXPECT_EQ(stats.frames_admitted, 8u);
  EXPECT_EQ(stats.duplicates_skipped, 0u);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, SequenceGapFailsTheConnectionNotTheService) {
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_EQ(raw.Hello("gap-test", false, {1}), 0);

  FramesMessage gapped;
  gapped.first_seq = 5;  // nothing was ever sent below 5
  gapped.frames.push_back(RecordFrame(1, 0));
  ASSERT_TRUE(raw.SendBytes(EncodeFrames(gapped)));

  WireMessage message;
  ASSERT_TRUE(raw.ReadMessage(&message));
  EXPECT_EQ(message.type, MessageType::kError);
  ErrorMessage error;
  ASSERT_TRUE(DecodeError(message.payload, &error).ok());
  EXPECT_NE(error.message.find("gap"), std::string::npos);

  server.Stop();
  svc.Drain();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  EXPECT_EQ(svc.stats().frames_accepted, 0u);  // nothing leaked through
  (void)svc.TakeResult();
}

TEST(IngestServerTest, FramesBeforeHelloAreAProtocolError) {
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  FramesMessage batch;
  batch.first_seq = 0;
  batch.frames.push_back(RecordFrame(1, 0));
  ASSERT_TRUE(raw.SendBytes(EncodeFrames(batch)));

  WireMessage message;
  ASSERT_TRUE(raw.ReadMessage(&message));
  EXPECT_EQ(message.type, MessageType::kError);

  server.Stop();
  svc.Drain();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, ProtocolVersionMismatchIsRefused) {
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  HelloMessage hello;
  hello.protocol_version = kProtocolVersion + 1;
  hello.session_id = "future-client";
  ASSERT_TRUE(raw.SendBytes(EncodeHello(hello)));

  WireMessage message;
  ASSERT_TRUE(raw.ReadMessage(&message));
  EXPECT_EQ(message.type, MessageType::kError);
  ErrorMessage error;
  ASSERT_TRUE(DecodeError(message.payload, &error).ok());
  EXPECT_NE(error.message.find("version"), std::string::npos);

  server.Stop();
  svc.Drain();
  (void)svc.TakeResult();
}

TEST(IngestServerTest, CorruptBytesFailTheConnectionNotTheServer) {
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  {
    RawClient raw;
    ASSERT_TRUE(raw.Connect(server.port()));
    std::vector<std::uint8_t> garbage(64, 0xAB);
    ASSERT_TRUE(raw.SendBytes(garbage));
    WireMessage message;
    EXPECT_FALSE(raw.ReadMessage(&message) &&
                 message.type != MessageType::kError);
  }

  // The server survives and serves a well-behaved client afterwards.
  ClientConfig config;
  config.port = server.port();
  config.session_id = "after-garbage";
  IngestClient client(config);
  ASSERT_TRUE(client.Connect({1}).ok());
  ASSERT_TRUE(client.Send(RecordFrame(1, 0)).ok());
  ASSERT_TRUE(client.Finish().ok());
  ASSERT_TRUE(server.WaitForFinishedSessions(1, 30000));

  server.Stop();
  svc.Drain();
  EXPECT_GE(server.stats().protocol_errors, 1u);
  EXPECT_EQ(server.stats().frames_admitted, 1u);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, HelloWhileDrainingIsRefusedWithAnError) {
  // A client connecting while the served FleetService drains must get a
  // clean protocol ERROR, never crash the server process.
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  svc.Drain();

  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  HelloMessage hello;
  hello.session_id = "late-client";
  hello.vehicle_ids = {1};
  ASSERT_TRUE(raw.SendBytes(EncodeHello(hello)));

  WireMessage message;
  ASSERT_TRUE(raw.ReadMessage(&message));
  EXPECT_EQ(message.type, MessageType::kError);
  ErrorMessage error;
  ASSERT_TRUE(DecodeError(message.payload, &error).ok());
  EXPECT_NE(error.message.find("draining"), std::string::npos);

  server.Stop();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  EXPECT_EQ(svc.stats().frames_accepted, 0u);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, SecondHelloOnABoundSessionIsRefused) {
  // Two live connections must never share one session cursor; the second
  // HELLO is refused until the first connection closes, after which the
  // session rebinds and resumes from its cursor.
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  RawClient first;
  ASSERT_TRUE(first.Connect(server.port()));
  ASSERT_EQ(first.Hello("dup-session", false, {1}), 0);

  RawClient second;
  ASSERT_TRUE(second.Connect(server.port()));
  HelloMessage hello;
  hello.session_id = "dup-session";
  hello.resume = true;
  hello.vehicle_ids = {1};
  ASSERT_TRUE(second.SendBytes(EncodeHello(hello)));
  WireMessage message;
  ASSERT_TRUE(second.ReadMessage(&message));
  EXPECT_EQ(message.type, MessageType::kError);
  ErrorMessage error;
  ASSERT_TRUE(DecodeError(message.payload, &error).ok());
  EXPECT_NE(error.message.find("bound"), std::string::npos);

  // The refusal did not disturb the first connection's session.
  FramesMessage batch;
  batch.first_seq = 0;
  batch.frames.push_back(RecordFrame(1, 0));
  batch.frames.push_back(RecordFrame(1, 1));
  ASSERT_TRUE(first.SendBytes(EncodeFrames(batch)));
  ASSERT_TRUE(first.ReadMessage(&message));
  ASSERT_EQ(message.type, MessageType::kAck);

  // Once the owning connection closes, the session accepts a new HELLO
  // and WELCOMEs it with the preserved cursor.
  first.Close();
  RawClient third;
  ASSERT_TRUE(third.Connect(server.port()));
  EXPECT_EQ(third.Hello("dup-session", true, {1}), 2);

  server.Stop();
  svc.Drain();
  EXPECT_EQ(server.stats().frames_admitted, 2u);
  EXPECT_EQ(server.stats().resumes, 1u);
  (void)svc.TakeResult();
}

TEST(AdmissionTest, TryRegisterVehicleRefusesWhileDraining) {
  service::FleetService svc(TinyServiceConfig());
  int lane = -1;
  ASSERT_TRUE(svc.TryRegisterVehicle(3, &lane).ok());
  EXPECT_EQ(lane, 0);
  ASSERT_TRUE(svc.TryRegisterVehicle(3).ok());  // idempotent
  svc.Drain();
  const util::Status refused = svc.TryRegisterVehicle(4);
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("draining"), std::string::npos);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, SlowConsumerIsDisconnectedAtTheOutboundBound) {
  // A client that sends but never reads lets NACKs pile up: first in the
  // kernel buffers, then in the server's per-connection outbound queue.
  // Crossing the configured bound must disconnect that client - not wedge
  // the single serving thread in a blocking send - and the defence must be
  // exactly observable in ServerStats.
  service::FleetService svc(
      TinyServiceConfig(service::BackpressurePolicy::kReject));
  ServerConfig config;
  config.max_outbound_bytes = 2048;
  IngestServer server(&svc, config);
  ASSERT_TRUE(server.Start().ok());

  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_EQ(raw.Hello("slow-consumer", false, {5}), 0);
  std::uint64_t seq = 0;
  bool disconnected = false;
  for (int batch = 0; batch < 20000 && !disconnected; ++batch) {
    FramesMessage frames;
    frames.first_seq = seq;
    for (int i = 0; i < 64; ++i)
      frames.frames.push_back(RecordFrame(5, static_cast<std::int64_t>(seq + i)));
    seq += 64;
    // Never read a reply: eventually the server hangs up on us and the
    // send fails (reset), proving the disconnect reached the kernel.
    if (!raw.SendBytes(EncodeFrames(frames))) disconnected = true;
  }
  ASSERT_TRUE(disconnected);

  // The serving thread survived: an honest client is served normally.
  ClientConfig client_config;
  client_config.port = server.port();
  client_config.session_id = "after-slow-consumer";
  IngestClient client(client_config);
  ASSERT_TRUE(client.Connect({6}).ok());
  ASSERT_TRUE(client.Send(RecordFrame(6, 0)).ok());
  ASSERT_TRUE(client.Finish().ok());
  ASSERT_TRUE(server.WaitForFinishedSessions(1, 30000));

  server.Stop();
  svc.Drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.slow_consumer_disconnects, 1u);
  // Even the cut-short batch was counted exactly: the wire-side counters
  // agree with the service's own admission counters.
  EXPECT_EQ(stats.frames_received, svc.stats().frames_submitted);
  EXPECT_EQ(stats.frames_admitted, svc.stats().frames_accepted);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, IdleHalfOpenConnectionIsReapedAndItsSessionRebinds) {
  // A peer that dies without FIN or RST sends nothing forever. Only the
  // idle deadline can free its connection and session binding.
  service::FleetService svc(TinyServiceConfig());
  ServerConfig config;
  config.idle_timeout_ms = 100;
  IngestServer server(&svc, config);
  ASSERT_TRUE(server.Start().ok());

  RawClient first;
  ASSERT_TRUE(first.Connect(server.port()));
  ASSERT_EQ(first.Hello("idle-session", false, {1}), 0);
  FramesMessage batch;
  batch.first_seq = 0;
  batch.frames.push_back(RecordFrame(1, 0));
  batch.frames.push_back(RecordFrame(1, 1));
  ASSERT_TRUE(first.SendBytes(EncodeFrames(batch)));
  WireMessage message;
  ASSERT_TRUE(first.ReadMessage(&message));
  ASSERT_EQ(message.type, MessageType::kAck);

  // Go silent (the socket stays open) and wait for the reap.
  bool reaped = false;
  for (int i = 0; i < 500 && !reaped; ++i) {
    reaped = server.stats().idle_reaps >= 1;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(reaped);
  EXPECT_EQ(server.stats().idle_reaps, 1u);  // exactly our connection
  EXPECT_FALSE(first.ReadMessage(&message));  // the server hung up on us

  // The binding was released with the cursor intact: a resume rebinds at 2.
  RawClient second;
  ASSERT_TRUE(second.Connect(server.port()));
  EXPECT_EQ(second.Hello("idle-session", true, {1}), 2);

  server.Stop();
  svc.Drain();
  EXPECT_EQ(server.stats().resumes, 1u);
  EXPECT_EQ(server.stats().frames_admitted, 2u);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, AbandonedSessionExpiresAfterRetentionAndRestartsAtZero) {
  service::FleetService svc(TinyServiceConfig());
  ServerConfig config;
  config.session_retention_ms = 100;
  IngestServer server(&svc, config);
  ASSERT_TRUE(server.Start().ok());

  {
    RawClient raw;
    ASSERT_TRUE(raw.Connect(server.port()));
    ASSERT_EQ(raw.Hello("ephemeral", false, {1}), 0);
    FramesMessage batch;
    batch.first_seq = 0;
    for (int i = 0; i < 3; ++i) batch.frames.push_back(RecordFrame(1, i));
    ASSERT_TRUE(raw.SendBytes(EncodeFrames(batch)));
    WireMessage message;
    ASSERT_TRUE(raw.ReadMessage(&message));
    ASSERT_EQ(message.type, MessageType::kAck);
    raw.Close();  // disconnect without FIN: the session is now unbound
  }

  bool expired = false;
  for (int i = 0; i < 500 && !expired; ++i) {
    expired = server.stats().sessions_expired >= 1;
    if (!expired) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(expired);
  EXPECT_EQ(server.stats().sessions_expired, 1u);

  // The cursor is gone with the session: the same id starts over at 0
  // (and counts as a new session, not a resume).
  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  EXPECT_EQ(raw.Hello("ephemeral", true, {1}), 0);

  server.Stop();
  svc.Drain();
  EXPECT_EQ(server.stats().sessions_started, 2u);
  EXPECT_EQ(server.stats().resumes, 0u);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, StopReturnsPromptlyWhileBlockedInKBlockIngest) {
  // Under kBlock with a tiny lane, the serving thread spends most of a
  // large batch blocked inside FleetService::Ingest. Stop() must not wait
  // for the whole backlog: the stop flag is polled per admitted frame, the
  // rest of the batch is abandoned un-ACKed (it stays above the resume
  // cursor), and the wire/service counters still agree exactly.
  service::FleetService svc(TinyServiceConfig());  // kBlock, capacity 2
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_EQ(raw.Hello("stop-under-load", false, {1}), 0);

  const std::size_t kFrames = 20000;
  FramesMessage batch;
  batch.first_seq = 0;
  batch.frames.reserve(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i)
    batch.frames.push_back(RecordFrame(1, static_cast<std::int64_t>(i)));
  ASSERT_TRUE(raw.SendBytes(EncodeFrames(batch)));

  // Wait until the serving thread is demonstrably inside the batch.
  for (int i = 0; i < 10000 && svc.stats().frames_accepted < 64; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(svc.stats().frames_accepted, 64u);

  const auto stop_started = std::chrono::steady_clock::now();
  server.Stop();
  const auto stop_elapsed = std::chrono::steady_clock::now() - stop_started;
  EXPECT_LT(stop_elapsed, std::chrono::seconds(5));

  svc.Drain();
  EXPECT_EQ(server.stats().frames_received, svc.stats().frames_submitted);
  EXPECT_EQ(server.stats().frames_admitted, svc.stats().frames_accepted);
  (void)svc.TakeResult();
}

TEST(IngestServerTest, FinWithWrongTotalIsAProtocolError) {
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  RawClient raw;
  ASSERT_TRUE(raw.Connect(server.port()));
  ASSERT_EQ(raw.Hello("bad-fin", false, {1}), 0);
  ASSERT_TRUE(raw.SendBytes(EncodeFin(FinMessage{42})));

  WireMessage message;
  ASSERT_TRUE(raw.ReadMessage(&message));
  EXPECT_EQ(message.type, MessageType::kError);

  server.Stop();
  svc.Drain();
  EXPECT_EQ(server.finished_sessions(), 0u);
  (void)svc.TakeResult();
}

}  // namespace
}  // namespace navarchos::net
