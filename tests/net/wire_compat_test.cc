// Wire compatibility of the version-1 optional-tail extensions: every
// message type reassembles and decodes identically no matter how the TCP
// stream fragments it (every segmentation granularity from 1 to 7 bytes),
// the new HELLO/WELCOME/FRAMES tails round-trip bit-exactly, tail-less
// encodings stay BYTE-IDENTICAL to the pre-shard protocol (so old peers
// parse a single-shard fleet unchanged), and malformed tails are rejected
// with a clean Status. This is the regression fence under
// docs/WIRE_PROTOCOL.md's extension rule.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"

namespace navarchos::net {
namespace {

telemetry::SensorFrame RecordFrame(std::int32_t vehicle, std::int64_t minute) {
  telemetry::Record record;
  record.vehicle_id = vehicle;
  record.timestamp = minute;
  for (int i = 0; i < telemetry::kNumPids; ++i)
    record.pids[static_cast<std::size_t>(i)] = 7.0 * vehicle + i + 0.5;
  return telemetry::SensorFrame::OfRecord(record);
}

/// Feeds `bytes` to a reader in chunks of `step` bytes and expects exactly
/// one complete message out, whose type and payload are returned.
WireMessage ReassembleAt(const std::vector<std::uint8_t>& bytes,
                         std::size_t step) {
  MessageReader reader;
  WireMessage message;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const std::size_t chunk = std::min(step, bytes.size() - offset);
    reader.Append(bytes.data() + offset, chunk);
    offset += chunk;
    const MessageReader::Result result = reader.Next(&message);
    if (offset < bytes.size()) {
      EXPECT_EQ(result, MessageReader::Result::kNeedMore)
          << "message completed early at offset " << offset << " step "
          << step;
    } else {
      EXPECT_EQ(result, MessageReader::Result::kMessage)
          << "message incomplete after all bytes at step " << step;
    }
  }
  return message;
}

/// Round-trips `bytes` through every segmentation granularity 1..7 and
/// checks each reassembly agrees with the whole-buffer read byte for byte.
void ExpectSegmentationInvariant(const std::vector<std::uint8_t>& bytes) {
  const WireMessage whole = ReassembleAt(bytes, bytes.size());
  for (std::size_t step = 1; step <= 7; ++step) {
    const WireMessage part = ReassembleAt(bytes, step);
    ASSERT_EQ(part.type, whole.type) << "step " << step;
    ASSERT_EQ(part.payload, whole.payload) << "step " << step;
  }
}

TEST(WireCompatTest, EveryMessageTypeSurvivesEverySegmentation) {
  HelloMessage hello;
  hello.session_id = "segmented";
  hello.vehicle_ids = {1, 2, 3};
  hello.fleet_order = {4, 0, 9};
  ExpectSegmentationInvariant(EncodeHello(hello));

  WelcomeMessage welcome;
  welcome.next_seq = 0x0102030405060708ull;
  welcome.shard_map.shard_count = 3;
  welcome.shard_map.hash_seed = 0x9E3779B97F4A7C15ull;
  welcome.shard_map.ports = {7001, 7002, 7003};
  ExpectSegmentationInvariant(EncodeWelcome(welcome));

  FramesMessage frames;
  frames.first_seq = 41;
  frames.frames = {RecordFrame(5, 100), RecordFrame(6, 101)};
  frames.fleet_seqs = {9000, 9002};
  ExpectSegmentationInvariant(EncodeFrames(frames));

  ExpectSegmentationInvariant(EncodeAck(AckMessage{1234, 5}));
  ExpectSegmentationInvariant(
      EncodeNack(NackMessage{77, 3, NackCode::kQueueFull}));
  ExpectSegmentationInvariant(EncodeFin(FinMessage{99}));
  ExpectSegmentationInvariant(EncodeError(ErrorMessage{"segmented error"}));

  QueryMessage query;
  query.kind = QueryKind::kTimeline;
  query.timeline.vehicle_id = 12;
  query.timeline.max_records = 64;
  ExpectSegmentationInvariant(EncodeQuery(query));

  ResultMessage result;
  result.kind = QueryKind::kRank;
  result.rank_entries.resize(2);
  result.rank_entries[0].vehicle_id = 1;
  result.rank_entries[1].vehicle_id = 2;
  ExpectSegmentationInvariant(EncodeResult(result));
}

TEST(WireCompatTest, TaillessEncodingsAreByteIdenticalToThePreShardWire) {
  // The compatibility contract: defaults encode to NOTHING. A session that
  // never uses sharding produces byte streams a pre-shard peer accepts,
  // and vice versa. (The old encodings are reconstructed field by field
  // here - 13-byte frame header, then the documented payload layout.)
  HelloMessage hello;
  hello.session_id = "old";
  hello.resume = false;
  hello.vehicle_ids = {10, 20};
  const auto hello_bytes = EncodeHello(hello);
  // Old HELLO payload: u32 version, u64-length-prefixed session string,
  // u8 resume, u32 count, i32 ids - and nothing after.
  const std::size_t hello_payload = 4 + (8 + 3) + 1 + 4 + 2 * 4;
  EXPECT_EQ(hello_bytes.size(), kFrameOverheadBytes + hello_payload);

  WelcomeMessage welcome;
  welcome.next_seq = 17;
  const auto welcome_bytes = EncodeWelcome(welcome);
  // Old WELCOME payload: exactly one u64 cursor.
  EXPECT_EQ(welcome_bytes.size(), kFrameOverheadBytes + 8u);

  // An old client's decoder is exact-consumption, so "old client parses a
  // single-shard WELCOME" is equivalent to: the tail-less payload decodes
  // with zero remaining bytes and yields the unsharded default map.
  WireMessage message;
  MessageReader reader;
  reader.Append(welcome_bytes.data(), welcome_bytes.size());
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kMessage);
  EXPECT_EQ(message.payload.size(), 8u);
  WelcomeMessage decoded;
  ASSERT_TRUE(DecodeWelcome(message.payload, &decoded).ok());
  EXPECT_EQ(decoded.next_seq, 17u);
  EXPECT_TRUE(decoded.shard_map.unsharded());

  FramesMessage frames;
  frames.first_seq = 3;
  frames.frames = {RecordFrame(1, 50)};
  const auto with_tail_size =
      EncodeFrames([&] {
        FramesMessage tailed = frames;
        tailed.fleet_seqs = {123};
        return tailed;
      }()).size();
  const auto frames_bytes = EncodeFrames(frames);
  // The tail costs exactly 8 bytes per frame; without it the encoding is
  // the pre-shard one.
  EXPECT_EQ(with_tail_size, frames_bytes.size() + 8u);
}

TEST(WireCompatTest, ShardMapTailRoundTripsExactly) {
  WelcomeMessage welcome;
  welcome.next_seq = 5;
  welcome.shard_map.shard_count = 4;
  welcome.shard_map.hash_seed = 0xDEADBEEFCAFEF00Dull;
  welcome.shard_map.ports = {1, 65535, 40000, 7};
  const auto bytes = EncodeWelcome(welcome);

  MessageReader reader;
  reader.Append(bytes.data(), bytes.size());
  WireMessage message;
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kMessage);
  WelcomeMessage decoded;
  ASSERT_TRUE(DecodeWelcome(message.payload, &decoded).ok());
  EXPECT_EQ(decoded.next_seq, 5u);
  EXPECT_EQ(decoded.shard_map.shard_count, 4u);
  EXPECT_EQ(decoded.shard_map.hash_seed, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(decoded.shard_map.ports, welcome.shard_map.ports);
  EXPECT_FALSE(decoded.shard_map.unsharded());
}

TEST(WireCompatTest, HelloFleetOrderTailRoundTripsExactly) {
  HelloMessage hello;
  hello.session_id = "sharded#2";
  hello.resume = true;
  hello.vehicle_ids = {3, 1, 2};
  hello.fleet_order = {7, 0, 4};
  const auto bytes = EncodeHello(hello);

  MessageReader reader;
  reader.Append(bytes.data(), bytes.size());
  WireMessage message;
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kMessage);
  HelloMessage decoded;
  ASSERT_TRUE(DecodeHello(message.payload, &decoded).ok());
  EXPECT_EQ(decoded.vehicle_ids, hello.vehicle_ids);
  EXPECT_EQ(decoded.fleet_order, hello.fleet_order);
}

TEST(WireCompatTest, FleetSeqTailRoundTripsExactly) {
  FramesMessage frames;
  frames.first_seq = 1000;
  frames.frames = {RecordFrame(1, 10), RecordFrame(2, 11), RecordFrame(1, 12)};
  frames.fleet_seqs = {5000, 5003, 5004};
  const auto bytes = EncodeFrames(frames);

  MessageReader reader;
  reader.Append(bytes.data(), bytes.size());
  WireMessage message;
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kMessage);
  FramesMessage decoded;
  ASSERT_TRUE(DecodeFrames(message.payload, &decoded).ok());
  EXPECT_EQ(decoded.first_seq, 1000u);
  ASSERT_EQ(decoded.frames.size(), 3u);
  EXPECT_EQ(decoded.fleet_seqs, frames.fleet_seqs);
}

TEST(WireCompatTest, MalformedTailsAreRejectedCleanly) {
  // A truncated or oversized tail must fail with a Status, never crash or
  // mis-parse. Build valid messages, then surgically damage the tail.
  WelcomeMessage welcome;
  welcome.next_seq = 1;
  welcome.shard_map.shard_count = 2;
  welcome.shard_map.hash_seed = 9;
  welcome.shard_map.ports = {100, 200};
  const auto bytes = EncodeWelcome(welcome);
  MessageReader reader;
  reader.Append(bytes.data(), bytes.size());
  WireMessage message;
  ASSERT_EQ(reader.Next(&message), MessageReader::Result::kMessage);

  {
    // Chop the last port off the tail: count says 2, payload holds 1.
    auto payload = message.payload;
    payload.resize(payload.size() - 4);
    WelcomeMessage decoded;
    EXPECT_FALSE(DecodeWelcome(payload, &decoded).ok());
  }
  {
    // Stray trailing byte after a well-formed tail.
    auto payload = message.payload;
    payload.push_back(0xAB);
    WelcomeMessage decoded;
    EXPECT_FALSE(DecodeWelcome(payload, &decoded).ok());
  }
  {
    // A fleet-seq tail whose length is not frames*8.
    FramesMessage frames;
    frames.first_seq = 0;
    frames.frames = {RecordFrame(1, 1)};
    frames.fleet_seqs = {42};
    const auto frame_bytes = EncodeFrames(frames);
    MessageReader frames_reader;
    frames_reader.Append(frame_bytes.data(), frame_bytes.size());
    WireMessage frames_message;
    ASSERT_EQ(frames_reader.Next(&frames_message),
              MessageReader::Result::kMessage);
    auto payload = frames_message.payload;
    payload.resize(payload.size() - 3);  // tear the tail mid-integer
    FramesMessage decoded;
    EXPECT_FALSE(DecodeFrames(payload, &decoded).ok());
  }
  {
    // A fleet-order tail shorter than the vehicle list.
    HelloMessage hello;
    hello.session_id = "x";
    hello.vehicle_ids = {1, 2};
    hello.fleet_order = {0, 1};
    const auto hello_bytes = EncodeHello(hello);
    MessageReader hello_reader;
    hello_reader.Append(hello_bytes.data(), hello_bytes.size());
    WireMessage hello_message;
    ASSERT_EQ(hello_reader.Next(&hello_message),
              MessageReader::Result::kMessage);
    auto payload = hello_message.payload;
    payload.resize(payload.size() - 4);  // count 2, one entry left
    HelloMessage decoded;
    EXPECT_FALSE(DecodeHello(payload, &decoded).ok());
  }
}

}  // namespace
}  // namespace navarchos::net
