// The QUERY / RESULT wire family: codec roundtrips for all three query
// kinds, clean rejection of truncated and malformed payloads, and the
// served path - a loopback IngestServer answering queries over a real
// socket must return byte-identical results to a local QueryEngine over
// the same log directory, including multi-page replies, while a server
// without a history log refuses queries with a clean error.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "history/history_log.h"
#include "history/history_service.h"
#include "history/query.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/wire.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/stream.h"

namespace navarchos::net {
namespace {

/// Runs an encoded full wire frame through MessageReader and returns the
/// verified payload - the exact bytes DecodeQuery/DecodeResult see in
/// production.
std::vector<std::uint8_t> PayloadOf(const std::vector<std::uint8_t>& frame) {
  MessageReader reader;
  reader.Append(frame.data(), frame.size());
  WireMessage message;
  EXPECT_EQ(reader.Next(&message), MessageReader::Result::kMessage);
  return message.payload;
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

service::ServiceConfig TinyServiceConfig() {
  service::ServiceConfig config;
  config.runtime = runtime::RuntimeConfig{1};
  config.queue_capacity = 2;
  return config;
}

history::HistoryRecord MakeRecord(std::int32_t vehicle, std::uint64_t seq,
                                  std::int64_t ts, double score,
                                  double threshold, bool alarm,
                                  std::vector<std::uint32_t> channels) {
  history::HistoryRecord record;
  record.vehicle_id = vehicle;
  record.global_seq = seq;
  record.timestamp = ts;
  record.score = score;
  record.threshold = threshold;
  record.alarm = alarm;
  record.top_channels = std::move(channels);
  return record;
}

// ------------------------------------------------------------ codec level

TEST(QueryProtocolTest, RankQueryRoundtrips) {
  QueryMessage query;
  query.kind = QueryKind::kRank;
  query.rank.window_minutes = 1440;
  query.rank.end_ts = 987654;
  query.rank.limit = 25;
  QueryMessage decoded;
  ASSERT_TRUE(DecodeQuery(PayloadOf(EncodeQuery(query)), &decoded).ok());
  EXPECT_EQ(decoded.kind, QueryKind::kRank);
  EXPECT_EQ(decoded.rank.window_minutes, 1440);
  EXPECT_EQ(decoded.rank.end_ts, 987654);
  EXPECT_EQ(decoded.rank.limit, 25u);
}

TEST(QueryProtocolTest, TimelineQueryRoundtrips) {
  QueryMessage query;
  query.kind = QueryKind::kTimeline;
  query.timeline.vehicle_id = -7;
  query.timeline.start_ts = 100;
  query.timeline.end_ts = 2000;
  query.timeline.max_records = 64;
  QueryMessage decoded;
  ASSERT_TRUE(DecodeQuery(PayloadOf(EncodeQuery(query)), &decoded).ok());
  EXPECT_EQ(decoded.kind, QueryKind::kTimeline);
  EXPECT_EQ(decoded.timeline.vehicle_id, -7);
  EXPECT_EQ(decoded.timeline.start_ts, 100);
  EXPECT_EQ(decoded.timeline.end_ts, 2000);
  EXPECT_EQ(decoded.timeline.max_records, 64u);
}

TEST(QueryProtocolTest, ComoveQueryRoundtrips) {
  QueryMessage query;
  query.kind = QueryKind::kComove;
  query.comove.alarm_seq = 0xDEADBEEFCAFEull;
  query.comove.window = 5;
  QueryMessage decoded;
  ASSERT_TRUE(DecodeQuery(PayloadOf(EncodeQuery(query)), &decoded).ok());
  EXPECT_EQ(decoded.kind, QueryKind::kComove);
  EXPECT_EQ(decoded.comove.alarm_seq, 0xDEADBEEFCAFEull);
  EXPECT_EQ(decoded.comove.window, 5u);
}

TEST(QueryProtocolTest, ResultPagesRoundtripEveryKind) {
  {
    ResultMessage page;
    page.kind = QueryKind::kRank;
    page.page = 3;
    page.last = false;
    history::RankEntry entry;
    entry.vehicle_id = 12;
    entry.records = 400;
    entry.alarms = 7;
    entry.mean_ratio = 1.25;
    entry.max_ratio = 9.5;
    entry.last_ts = 86400;
    page.rank_entries = {entry, entry};
    ResultMessage decoded;
    ASSERT_TRUE(DecodeResult(PayloadOf(EncodeResult(page)), &decoded).ok());
    EXPECT_EQ(decoded.kind, QueryKind::kRank);
    EXPECT_EQ(decoded.page, 3u);
    EXPECT_FALSE(decoded.last);
    ASSERT_EQ(decoded.rank_entries.size(), 2u);
    EXPECT_EQ(decoded.rank_entries[1].vehicle_id, 12);
    EXPECT_EQ(decoded.rank_entries[1].records, 400u);
    EXPECT_EQ(decoded.rank_entries[1].alarms, 7u);
    EXPECT_EQ(decoded.rank_entries[1].mean_ratio, 1.25);
    EXPECT_EQ(decoded.rank_entries[1].max_ratio, 9.5);
    EXPECT_EQ(decoded.rank_entries[1].last_ts, 86400);
  }
  {
    ResultMessage page;
    page.kind = QueryKind::kTimeline;
    page.timeline_records = {
        MakeRecord(4, 99, 1234, 3.5, 2.0, true, {8, 2, 5})};
    ResultMessage decoded;
    ASSERT_TRUE(DecodeResult(PayloadOf(EncodeResult(page)), &decoded).ok());
    EXPECT_EQ(decoded.kind, QueryKind::kTimeline);
    EXPECT_TRUE(decoded.last);
    ASSERT_EQ(decoded.timeline_records.size(), 1u);
    const history::HistoryRecord& record = decoded.timeline_records[0];
    EXPECT_EQ(record.vehicle_id, 4);
    EXPECT_EQ(record.global_seq, 99u);
    EXPECT_EQ(record.timestamp, 1234);
    EXPECT_EQ(record.score, 3.5);
    EXPECT_EQ(record.threshold, 2.0);
    EXPECT_TRUE(record.alarm);
    EXPECT_EQ(record.top_channels, (std::vector<std::uint32_t>{8, 2, 5}));
  }
  {
    ResultMessage page;
    page.kind = QueryKind::kComove;
    page.comove_vehicle_id = 3;
    page.comove_alarm_ts = 777;
    history::ComoveEntry entry;
    entry.channel = 11;
    entry.hits = 4;
    entry.weight = 13;
    page.comove_entries = {entry};
    ResultMessage decoded;
    ASSERT_TRUE(DecodeResult(PayloadOf(EncodeResult(page)), &decoded).ok());
    EXPECT_EQ(decoded.kind, QueryKind::kComove);
    EXPECT_EQ(decoded.comove_vehicle_id, 3);
    EXPECT_EQ(decoded.comove_alarm_ts, 777);
    ASSERT_EQ(decoded.comove_entries.size(), 1u);
    EXPECT_EQ(decoded.comove_entries[0].channel, 11u);
    EXPECT_EQ(decoded.comove_entries[0].hits, 4u);
    EXPECT_EQ(decoded.comove_entries[0].weight, 13u);
  }
}

TEST(QueryProtocolTest, TruncatedQueryPayloadsFailCleanly) {
  for (const QueryKind kind :
       {QueryKind::kRank, QueryKind::kTimeline, QueryKind::kComove}) {
    QueryMessage query;
    query.kind = kind;
    const std::vector<std::uint8_t> payload = PayloadOf(EncodeQuery(query));
    for (std::size_t n = 0; n < payload.size(); ++n) {
      const std::vector<std::uint8_t> prefix(payload.begin(),
                                             payload.begin() + n);
      QueryMessage decoded;
      EXPECT_FALSE(DecodeQuery(prefix, &decoded).ok())
          << QueryKindName(kind) << " prefix of " << n << " bytes";
    }
  }
}

TEST(QueryProtocolTest, TruncatedResultPayloadsFailCleanly) {
  ResultMessage page;
  page.kind = QueryKind::kTimeline;
  page.timeline_records = {MakeRecord(1, 5, 60, 1.0, 2.0, false, {3})};
  const std::vector<std::uint8_t> payload = PayloadOf(EncodeResult(page));
  for (std::size_t n = 0; n < payload.size(); ++n) {
    const std::vector<std::uint8_t> prefix(payload.begin(),
                                           payload.begin() + n);
    ResultMessage decoded;
    EXPECT_FALSE(DecodeResult(prefix, &decoded).ok())
        << "prefix of " << n << " bytes";
  }
}

TEST(QueryProtocolTest, UnknownQueryKindIsRejected) {
  QueryMessage query;
  std::vector<std::uint8_t> payload = PayloadOf(EncodeQuery(query));
  payload[0] = 9;  // no such QueryKind
  QueryMessage decoded;
  const util::Status status = DecodeQuery(payload, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown query kind"), std::string::npos);
}

TEST(QueryProtocolTest, OverclaimedResultCountIsRejected) {
  ResultMessage page;
  page.kind = QueryKind::kRank;
  const std::vector<std::uint8_t> valid = PayloadOf(EncodeResult(page));
  // Layout: kind u8, page u32, last u8, then the entry count u32.
  std::vector<std::uint8_t> payload = valid;
  ASSERT_GE(payload.size(), 10u);
  payload[6] = payload[7] = payload[8] = payload[9] = 0xFF;
  ResultMessage decoded;
  const util::Status status = DecodeResult(payload, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exceeds payload size"), std::string::npos);
}

// ------------------------------------------------------------ served path

/// Populates `dir` with a deterministic log: `records` samples for vehicle
/// 1 (alarming every 10th), plus a few for vehicle 2.
void BuildLog(const std::string& dir, std::size_t records) {
  history::HistoryWriter writer;
  ASSERT_TRUE(writer.Open(dir).ok());
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < records; ++i) {
    const bool alarm = i % 10 == 9;
    ASSERT_TRUE(writer
                    .Append(MakeRecord(
                        1, seq++, static_cast<std::int64_t>(60 + i * 10),
                        1.0 + 0.001 * static_cast<double>(i), 2.0, alarm,
                        {static_cast<std::uint32_t>(i % 5), 7}))
                    .ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(writer
                      .Append(MakeRecord(
                          2, seq++, static_cast<std::int64_t>(60 + i * 10),
                          0.5, 2.0, false, {1}))
                      .ok());
    }
  }
  ASSERT_TRUE(writer.Close().ok());
}

TEST(QueryProtocolTest, ServedQueriesMatchTheLocalEngineIncludingPaging) {
  const std::string dir = FreshDir("navhist_qproto_served");
  // 1300 vehicle-1 records force a 3-page TIMELINE reply (512 per page).
  BuildLog(dir, 1300);

  history::HistoryService history(dir);
  ASSERT_TRUE(history.Open().ok());
  service::FleetService svc(TinyServiceConfig());
  ServerConfig server_config;
  server_config.history = &history;
  IngestServer server(&svc, server_config);
  ASSERT_TRUE(server.Start().ok());

  ClientConfig client_config;
  client_config.port = server.port();
  IngestClient client(client_config);
  const history::QueryEngine local(dir);

  history::RankQuery rank_query;
  history::RankResult wire_rank, local_rank;
  ASSERT_TRUE(client.QueryRank(rank_query, &wire_rank).ok());
  ASSERT_TRUE(local.Rank(rank_query, &local_rank).ok());
  ASSERT_EQ(wire_rank.entries.size(), local_rank.entries.size());
  for (std::size_t i = 0; i < wire_rank.entries.size(); ++i) {
    EXPECT_EQ(wire_rank.entries[i].vehicle_id,
              local_rank.entries[i].vehicle_id);
    EXPECT_EQ(wire_rank.entries[i].records, local_rank.entries[i].records);
    EXPECT_EQ(wire_rank.entries[i].alarms, local_rank.entries[i].alarms);
    EXPECT_EQ(wire_rank.entries[i].mean_ratio,
              local_rank.entries[i].mean_ratio);
    EXPECT_EQ(wire_rank.entries[i].max_ratio,
              local_rank.entries[i].max_ratio);
    EXPECT_EQ(wire_rank.entries[i].last_ts, local_rank.entries[i].last_ts);
  }

  history::TimelineQuery timeline_query;
  timeline_query.vehicle_id = 1;
  history::TimelineResult wire_timeline, local_timeline;
  ASSERT_TRUE(client.QueryTimeline(timeline_query, &wire_timeline).ok());
  ASSERT_TRUE(local.Timeline(timeline_query, &local_timeline).ok());
  ASSERT_GT(local_timeline.records.size(), 2 * kMaxResultEntriesPerPage)
      << "test must exercise pagination";
  ASSERT_EQ(wire_timeline.records.size(), local_timeline.records.size());
  for (std::size_t i = 0; i < wire_timeline.records.size(); ++i) {
    EXPECT_EQ(wire_timeline.records[i].global_seq,
              local_timeline.records[i].global_seq);
    EXPECT_EQ(wire_timeline.records[i].timestamp,
              local_timeline.records[i].timestamp);
    EXPECT_EQ(wire_timeline.records[i].score,
              local_timeline.records[i].score);
    EXPECT_EQ(wire_timeline.records[i].top_channels,
              local_timeline.records[i].top_channels);
  }

  history::ComoveQuery comove_query;
  comove_query.alarm_seq = local_timeline.records[9].global_seq;
  ASSERT_TRUE(local_timeline.records[9].alarm);
  history::ComoveResult wire_comove, local_comove;
  ASSERT_TRUE(client.QueryComove(comove_query, &wire_comove).ok());
  ASSERT_TRUE(local.Comove(comove_query, &local_comove).ok());
  EXPECT_EQ(wire_comove.vehicle_id, local_comove.vehicle_id);
  EXPECT_EQ(wire_comove.alarm_ts, local_comove.alarm_ts);
  ASSERT_EQ(wire_comove.entries.size(), local_comove.entries.size());
  for (std::size_t i = 0; i < wire_comove.entries.size(); ++i) {
    EXPECT_EQ(wire_comove.entries[i].channel, local_comove.entries[i].channel);
    EXPECT_EQ(wire_comove.entries[i].hits, local_comove.entries[i].hits);
    EXPECT_EQ(wire_comove.entries[i].weight, local_comove.entries[i].weight);
  }

  server.Stop();
  svc.Drain();
  (void)svc.TakeResult();
  std::filesystem::remove_all(dir);
}

TEST(QueryProtocolTest, QueriesWorkMidIngestSession) {
  const std::string dir = FreshDir("navhist_qproto_midsession");
  BuildLog(dir, 40);

  history::HistoryService history(dir);
  ASSERT_TRUE(history.Open().ok());
  service::FleetService svc(TinyServiceConfig());
  svc.RegisterVehicle(1);
  ServerConfig server_config;
  server_config.history = &history;
  IngestServer server(&svc, server_config);
  ASSERT_TRUE(server.Start().ok());

  ClientConfig client_config;
  client_config.port = server.port();
  IngestClient client(client_config);
  ASSERT_TRUE(client.Connect({1}).ok());

  telemetry::Record record;
  record.vehicle_id = 1;
  record.timestamp = 0;
  record.pids.fill(1.0);
  ASSERT_TRUE(client.Send(telemetry::SensorFrame::OfRecord(record)).ok());
  ASSERT_TRUE(client.Flush().ok());

  // The stream is quiet between batches; a query shares the connection.
  history::RankResult rank;
  ASSERT_TRUE(client.QueryRank(history::RankQuery{}, &rank).ok());
  EXPECT_EQ(rank.entries.size(), 2u);

  ASSERT_TRUE(client.Finish().ok());
  EXPECT_EQ(server.stats().queries_served, 1u);
  server.Stop();
  svc.Drain();
  (void)svc.TakeResult();
  std::filesystem::remove_all(dir);
}

TEST(QueryProtocolTest, ServerWithoutHistoryRefusesQueriesCleanly) {
  service::FleetService svc(TinyServiceConfig());
  IngestServer server(&svc, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  ClientConfig client_config;
  client_config.port = server.port();
  IngestClient client(client_config);
  history::RankResult rank;
  const util::Status status = client.QueryRank(history::RankQuery{}, &rank);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not enabled"), std::string::npos)
      << status.message();

  server.Stop();
  svc.Drain();
  (void)svc.TakeResult();
}

}  // namespace
}  // namespace navarchos::net
