// The headline invariant of the network ingest front end: a fleet streamed
// over loopback TCP - clean or corrupted input, with or without a
// mid-stream disconnect + RESUME - produces alarms, scores and calibration
// stats bit-identical to the in-process FleetService run, at worker thread
// counts 1 and 4. The wire is a transport, never a semantic layer.
#include <vector>

#include <gtest/gtest.h>

#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "runtime/runtime_config.h"
#include "service/fleet_service.h"
#include "telemetry/corruption.h"
#include "telemetry/fleet.h"
#include "telemetry/stream.h"

namespace navarchos {
namespace {

telemetry::FleetConfig SmallFleetConfig() {
  telemetry::FleetConfig config = telemetry::FleetConfig::TestScale();
  config.days = 30;
  return config;
}

core::MonitorConfig FastMonitorConfig() {
  core::MonitorConfig config;
  config.transform_options.window = 60;
  config.transform_options.stride = 10;
  config.profile_minutes = 400.0;
  config.threshold.burn_in_minutes = 120.0;
  config.threshold.persistence_minutes = 60.0;
  return config;
}

service::ServiceConfig ServiceConfigWith(int threads) {
  service::ServiceConfig config;
  config.monitor = FastMonitorConfig();
  config.runtime = runtime::RuntimeConfig{threads};
  config.queue_capacity = 32;  // small enough to exercise backpressure
  return config;
}

void ExpectAlarmsIdentical(const std::vector<core::Alarm>& a,
                           const std::vector<core::Alarm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].vehicle_id, b[i].vehicle_id);
    ASSERT_EQ(a[i].timestamp, b[i].timestamp);
    ASSERT_EQ(a[i].channel, b[i].channel);
    ASSERT_EQ(a[i].channel_name, b[i].channel_name);
    ASSERT_EQ(a[i].score, b[i].score);
    ASSERT_EQ(a[i].threshold, b[i].threshold);
  }
}

void ExpectRunsIdentical(const core::FleetRunResult& a,
                         const core::FleetRunResult& b) {
  ExpectAlarmsIdentical(a.alarms, b.alarms);
  ASSERT_EQ(a.channel_names, b.channel_names);
  ASSERT_EQ(a.persistence_window, b.persistence_window);
  ASSERT_EQ(a.persistence_min, b.persistence_min);

  ASSERT_EQ(a.scored_samples.size(), b.scored_samples.size());
  for (std::size_t v = 0; v < a.scored_samples.size(); ++v) {
    ASSERT_EQ(a.scored_samples[v].size(), b.scored_samples[v].size());
    for (std::size_t s = 0; s < a.scored_samples[v].size(); ++s) {
      ASSERT_EQ(a.scored_samples[v][s].timestamp, b.scored_samples[v][s].timestamp);
      ASSERT_EQ(a.scored_samples[v][s].calibration_index,
                b.scored_samples[v][s].calibration_index);
      ASSERT_EQ(a.scored_samples[v][s].scores, b.scored_samples[v][s].scores);
    }
  }

  ASSERT_EQ(a.calibrations.size(), b.calibrations.size());
  for (std::size_t v = 0; v < a.calibrations.size(); ++v) {
    ASSERT_EQ(a.calibrations[v].size(), b.calibrations[v].size());
    for (std::size_t c = 0; c < a.calibrations[v].size(); ++c) {
      ASSERT_EQ(a.calibrations[v][c].mean, b.calibrations[v][c].mean);
      ASSERT_EQ(a.calibrations[v][c].stddev, b.calibrations[v][c].stddev);
      ASSERT_EQ(a.calibrations[v][c].median, b.calibrations[v][c].median);
      ASSERT_EQ(a.calibrations[v][c].mad, b.calibrations[v][c].mad);
      ASSERT_EQ(a.calibrations[v][c].max, b.calibrations[v][c].max);
    }
  }

  ASSERT_EQ(a.quality.size(), b.quality.size());
  for (std::size_t v = 0; v < a.quality.size(); ++v) {
    ASSERT_EQ(a.quality[v].records_seen, b.quality[v].records_seen);
    ASSERT_EQ(a.quality[v].RecordsDropped(), b.quality[v].RecordsDropped());
  }
}

/// Streams `stream` into a fresh service behind an IngestServer over
/// loopback TCP and returns the drained result. When `disconnect_at` is
/// positive, the first client is Abort()ed (no FIN, no flush) after that
/// many frames and a second client RESUMEs the session to finish the
/// stream - exercising the reconnect path mid-run.
core::FleetRunResult RunOverLoopback(
    const std::vector<telemetry::SensorFrame>& stream,
    const std::vector<std::int32_t>& ids, const service::ServiceConfig& config,
    std::size_t disconnect_at = 0) {
  service::FleetService svc(config);
  net::IngestServer server(&svc, net::ServerConfig{});
  EXPECT_TRUE(server.Start().ok());

  net::ClientConfig client_config;
  client_config.port = server.port();
  client_config.session_id = "loopback-test";
  client_config.batch_frames = 64;

  if (disconnect_at > 0 && disconnect_at < stream.size()) {
    net::IngestClient first(client_config);
    EXPECT_TRUE(first.Connect(ids).ok());
    for (std::size_t i = 0; i < disconnect_at; ++i) {
      const util::Status status = first.Send(stream[i]);
      if (!status.ok()) break;
    }
    first.Abort();  // simulated crash: cut mid-batch, no FIN
  }

  net::IngestClient client(client_config);
  EXPECT_TRUE(client.Connect(ids, /*resume=*/disconnect_at > 0).ok());
  // The WELCOME cursor tells the client where the server's decisions end;
  // for a fresh session it is 0, after a cut it is the resume point.
  for (std::size_t i = client.next_seq(); i < stream.size(); ++i)
    EXPECT_TRUE(client.Send(stream[i]).ok());
  EXPECT_TRUE(client.Finish().ok());
  EXPECT_TRUE(client.nacks().empty());  // kBlock never sheds

  EXPECT_TRUE(server.WaitForFinishedSessions(1, 30000));
  server.Stop();
  svc.Drain();
  return svc.TakeResult();
}

TEST(LoopbackDeterminismTest, CleanStreamOverTcpEqualsInProcessRun) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  const auto in_process = service::RunStream(stream, ids, ServiceConfigWith(1));
  const auto over_tcp_serial = RunOverLoopback(stream, ids, ServiceConfigWith(1));
  const auto over_tcp_parallel =
      RunOverLoopback(stream, ids, ServiceConfigWith(4));

  ExpectRunsIdentical(in_process, over_tcp_serial);
  ExpectRunsIdentical(in_process, over_tcp_parallel);
}

TEST(LoopbackDeterminismTest, DisconnectAndResumeEqualsUninterruptedRun) {
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const auto stream = telemetry::InterleaveFleetStream(fleet);
  const auto ids = service::VehicleIdsOf(fleet);

  const auto in_process = service::RunStream(stream, ids, ServiceConfigWith(1));
  // Cut mid-batch (not on a batch boundary): frames sent but never ACKed
  // must be re-sent by the resumed client, and frames the server already
  // decided must not be admitted twice.
  const std::size_t cut = stream.size() / 2 + 17;
  const auto resumed_serial =
      RunOverLoopback(stream, ids, ServiceConfigWith(1), cut);
  const auto resumed_parallel =
      RunOverLoopback(stream, ids, ServiceConfigWith(4), cut);

  ExpectRunsIdentical(in_process, resumed_serial);
  ExpectRunsIdentical(in_process, resumed_parallel);
}

TEST(LoopbackDeterminismTest, CorruptedStreamOverTcpEqualsInProcessRun) {
  // Transport-corrupted telemetry (reorder, duplicates, NaN spikes, skew)
  // must survive the wire bit-exactly: the monitors' quarantine decisions
  // depend on exact byte patterns, so any wire-layer mangling would show
  // up as a result mismatch here.
  const auto fleet = telemetry::GenerateFleet(SmallFleetConfig());
  const telemetry::CorruptionModel model(telemetry::CorruptionConfig::Moderate());
  const auto stream = telemetry::InterleaveFleetStream(fleet, model);
  const auto ids = service::VehicleIdsOf(fleet);

  const auto in_process = service::RunStream(stream, ids, ServiceConfigWith(1));
  const auto over_tcp = RunOverLoopback(stream, ids, ServiceConfigWith(4));
  ExpectRunsIdentical(in_process, over_tcp);

  // And with a mid-stream disconnect on top of the corruption.
  const auto resumed =
      RunOverLoopback(stream, ids, ServiceConfigWith(4), stream.size() / 3);
  ExpectRunsIdentical(in_process, resumed);

  // The corruption actually bit.
  std::size_t dropped = 0;
  for (const auto& quality : in_process.quality)
    dropped += quality.RecordsDropped();
  ASSERT_GT(dropped, 0u);
}

}  // namespace
}  // namespace navarchos
