#include "stats/ranking.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace navarchos::stats {
namespace {

using util::Matrix;

TEST(FriedmanTest, DetectsClearDifference) {
  // Treatment 2 always best, treatment 0 always worst, across 12 datasets.
  Matrix scores(12, 3);
  util::Rng rng(1);
  for (std::size_t r = 0; r < 12; ++r) {
    scores.At(r, 0) = 0.1 + 0.01 * rng.Uniform();
    scores.At(r, 1) = 0.5 + 0.01 * rng.Uniform();
    scores.At(r, 2) = 0.9 + 0.01 * rng.Uniform();
  }
  const FriedmanResult result = FriedmanTest(scores);
  EXPECT_LT(result.p_value, 0.001);
  // Rank 1 = best: treatment 2 should have mean rank 1.
  EXPECT_DOUBLE_EQ(result.mean_ranks[2], 1.0);
  EXPECT_DOUBLE_EQ(result.mean_ranks[0], 3.0);
}

TEST(FriedmanTest, NoDifferenceGivesHighPValue) {
  Matrix scores(10, 3);
  util::Rng rng(2);
  for (std::size_t r = 0; r < 10; ++r)
    for (std::size_t c = 0; c < 3; ++c) scores.At(r, c) = rng.Uniform();
  const FriedmanResult result = FriedmanTest(scores);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(FriedmanTest, AllTiedIsInconclusive) {
  Matrix scores(5, 3, 1.0);
  const FriedmanResult result = FriedmanTest(scores);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  for (double rank : result.mean_ranks) EXPECT_DOUBLE_EQ(rank, 2.0);
}

TEST(FriedmanTest, MeanRanksSumInvariant) {
  // Mean ranks always sum to k(k+1)/2.
  Matrix scores(8, 4);
  util::Rng rng(3);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 4; ++c) scores.At(r, c) = rng.Gaussian();
  const FriedmanResult result = FriedmanTest(scores);
  double sum = 0.0;
  for (double rank : result.mean_ranks) sum += rank;
  EXPECT_NEAR(sum, 10.0, 1e-9);
}

TEST(WilcoxonTest, IdenticalSamplesInconclusive) {
  std::vector<double> x{1.0, 2.0, 3.0};
  const WilcoxonResult result = WilcoxonSignedRank(x, x);
  EXPECT_EQ(result.effective_n, 0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(WilcoxonTest, ClearShiftIsSignificant) {
  std::vector<double> x, y;
  util::Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    const double base = rng.Gaussian();
    x.push_back(base + 1.0);
    y.push_back(base);
  }
  const WilcoxonResult result = WilcoxonSignedRank(x, y);
  EXPECT_LT(result.p_value, 0.001);
}

TEST(WilcoxonTest, SymmetricDifferencesNotSignificant) {
  std::vector<double> x, y;
  util::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    x.push_back(rng.Gaussian());
    y.push_back(rng.Gaussian());
  }
  const WilcoxonResult result = WilcoxonSignedRank(x, y);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(WilcoxonTest, SymmetryInArguments) {
  std::vector<double> x{1.0, 3.0, 2.0, 5.0, 4.0, 7.0};
  std::vector<double> y{2.0, 1.0, 4.0, 3.0, 6.0, 5.0};
  const WilcoxonResult a = WilcoxonSignedRank(x, y);
  const WilcoxonResult b = WilcoxonSignedRank(y, x);
  EXPECT_NEAR(a.p_value, b.p_value, 1e-9);
}

TEST(HolmCorrectionTest, SingleHypothesisUnchanged) {
  const auto adjusted = HolmCorrection({0.03});
  ASSERT_EQ(adjusted.size(), 1u);
  EXPECT_DOUBLE_EQ(adjusted[0], 0.03);
}

TEST(HolmCorrectionTest, KnownExample) {
  // Sorted p: 0.01, 0.02, 0.04 -> adjusted 0.03, 0.04, 0.04.
  const auto adjusted = HolmCorrection({0.04, 0.01, 0.02});
  EXPECT_NEAR(adjusted[1], 0.03, 1e-12);
  EXPECT_NEAR(adjusted[2], 0.04, 1e-12);
  EXPECT_NEAR(adjusted[0], 0.04, 1e-12);
}

TEST(HolmCorrectionTest, NeverExceedsOne) {
  const auto adjusted = HolmCorrection({0.5, 0.6, 0.9});
  for (double p : adjusted) EXPECT_LE(p, 1.0);
}

TEST(HolmCorrectionTest, AdjustedAtLeastRaw) {
  const auto adjusted = HolmCorrection({0.01, 0.2, 0.05, 0.5});
  const std::vector<double> raw{0.01, 0.2, 0.05, 0.5};
  for (std::size_t i = 0; i < raw.size(); ++i) EXPECT_GE(adjusted[i], raw[i]);
}

TEST(AnalyzeRanksTest, OrdersTreatmentsByRank) {
  Matrix scores(10, 3);
  util::Rng rng(6);
  for (std::size_t r = 0; r < 10; ++r) {
    scores.At(r, 0) = 0.9 + 0.01 * rng.Uniform();  // best
    scores.At(r, 1) = 0.1 + 0.01 * rng.Uniform();  // worst
    scores.At(r, 2) = 0.5 + 0.01 * rng.Uniform();  // middle
  }
  const auto result = AnalyzeRanks(scores, {"A", "B", "C"});
  ASSERT_EQ(result.order.size(), 3u);
  EXPECT_EQ(result.order[0], 0u);
  EXPECT_EQ(result.order[1], 2u);
  EXPECT_EQ(result.order[2], 1u);
}

TEST(AnalyzeRanksTest, IndistinguishableTreatmentsGrouped) {
  Matrix scores(10, 3);
  util::Rng rng(7);
  for (std::size_t r = 0; r < 10; ++r) {
    const double noise = rng.Gaussian();
    scores.At(r, 0) = noise + 0.001 * rng.Gaussian();
    scores.At(r, 1) = noise + 0.001 * rng.Gaussian();
    scores.At(r, 2) = noise + 5.0;  // clearly better
  }
  const auto result = AnalyzeRanks(scores, {"A", "B", "C"});
  // A and B should share a group; C stands alone at rank 1.
  bool found_ab_group = false;
  for (const auto& group : result.groups) {
    if (group.size() == 2) {
      const bool has_a = group[0] == 0 || group[1] == 0;
      const bool has_b = group[0] == 1 || group[1] == 1;
      found_ab_group = has_a && has_b;
    }
  }
  EXPECT_TRUE(found_ab_group);
}

TEST(AnalyzeRanksTest, AdjustedPMatrixSymmetric) {
  Matrix scores(8, 4);
  util::Rng rng(8);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 4; ++c) scores.At(r, c) = rng.Gaussian();
  const auto result = AnalyzeRanks(scores, {"A", "B", "C", "D"});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(result.adjusted_p[i][i], 1.0);
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(result.adjusted_p[i][j], result.adjusted_p[j][i]);
  }
}

TEST(RenderDiagramTest, ContainsAllTreatmentNames) {
  Matrix scores(10, 3);
  util::Rng rng(9);
  for (std::size_t r = 0; r < 10; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      scores.At(r, c) = static_cast<double>(c) + rng.Uniform();
  const auto result = AnalyzeRanks(scores, {"alpha", "beta", "gamma"});
  const std::string diagram = RenderCriticalDifferenceDiagram(result);
  EXPECT_NE(diagram.find("alpha"), std::string::npos);
  EXPECT_NE(diagram.find("beta"), std::string::npos);
  EXPECT_NE(diagram.find("gamma"), std::string::npos);
  EXPECT_NE(diagram.find("Friedman"), std::string::npos);
}

}  // namespace
}  // namespace navarchos::stats
