#include <gtest/gtest.h>

#include "util/args.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace navarchos::util {
namespace {

TEST(ArgsTest, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "pos", "--days", "150", "--seed=7", "--verbose"};
  Args args(6, argv);
  EXPECT_EQ(args.GetInt("days", 0), 150);
  EXPECT_EQ(args.GetInt("seed", 0), 7);
  EXPECT_TRUE(args.Has("verbose"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(ArgsTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.GetInt("days", 42), 42);
  EXPECT_DOUBLE_EQ(args.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(args.GetString("s", "d"), "d");
  EXPECT_FALSE(args.Has("days"));
}

TEST(ArgsTest, DoubleParsing) {
  const char* argv[] = {"prog", "--factor", "3.25"};
  Args args(3, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("factor", 0.0), 3.25);
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::Error("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

TEST(TableTest, AlignsColumnsAndPadsShortRows) {
  Table table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(TableTest, CsvOutput) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, AsciiBarScales) {
  EXPECT_EQ(AsciiBar(1.0, 1.0, 10).size(), 10u);
  EXPECT_EQ(AsciiBar(0.5, 1.0, 10).size(), 5u);
  EXPECT_TRUE(AsciiBar(0.0, 1.0, 10).empty());
  EXPECT_EQ(AsciiBar(2.0, 1.0, 10).size(), 10u);  // clamped
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

}  // namespace
}  // namespace navarchos::util
