#include "util/rng.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace navarchos::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(123), b(124);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() != b.NextU64()) ++differing;
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(2, 6));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-10, -3);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -3);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaledMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(31);
  std::vector<int> counts(3, 0);
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical({1.0, 2.0, 3.0})];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 6.0, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 6.0, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 3.0 / 6.0, 0.01);
}

TEST(RngTest, CategoricalSkipsZeroWeights) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.Categorical({0.0, 1.0, 0.0}), 1u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() != b.NextU64()) ++differing;
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng p1(99), p2(99);
  Rng a = p1.Fork(5);
  Rng b = p2.Fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

}  // namespace
}  // namespace navarchos::util
