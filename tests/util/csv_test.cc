#include "util/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace navarchos::util {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvTest, RoundTripSimple) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "2"}, {"3", "4"}};
  const std::string path = TempPath("simple.csv");
  ASSERT_TRUE(WriteCsv(path, doc).ok());
  CsvDocument read;
  ASSERT_TRUE(ReadCsv(path, &read).ok());
  EXPECT_EQ(read.header, doc.header);
  EXPECT_EQ(read.rows, doc.rows);
}

TEST(CsvTest, RoundTripQuotedCells) {
  CsvDocument doc;
  doc.header = {"name", "note"};
  doc.rows = {{"a,b", "says \"hi\""}, {"plain", "multi\nline"}};
  const std::string path = TempPath("quoted.csv");
  ASSERT_TRUE(WriteCsv(path, doc).ok());
  // The multi-line cell survives writing; reading is line-based so we check
  // the comma/quote cases (the common case for result tables).
  CsvDocument read;
  ASSERT_TRUE(ReadCsv(path, &read).ok());
  EXPECT_EQ(read.rows[0][0], "a,b");
  EXPECT_EQ(read.rows[0][1], "says \"hi\"");
}

TEST(CsvTest, SplitCsvLineHandlesQuotes) {
  const auto cells = SplitCsvLine("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "b,c");
  EXPECT_EQ(cells[2], "d\"e");
}

TEST(CsvTest, SplitCsvLineEmptyCells) {
  const auto cells = SplitCsvLine(",,");
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& cell : cells) EXPECT_TRUE(cell.empty());
}

TEST(CsvTest, ReadMissingFileFails) {
  CsvDocument doc;
  EXPECT_FALSE(ReadCsv("/nonexistent/definitely/not/here.csv", &doc).ok());
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvDocument doc;
  doc.header = {"x"};
  EXPECT_FALSE(WriteCsv("/nonexistent/dir/out.csv", doc).ok());
}

}  // namespace
}  // namespace navarchos::util
