#include "util/statistics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace navarchos::util {
namespace {

TEST(StatisticsTest, MeanOfConstants) {
  std::vector<double> v(10, 4.2);
  EXPECT_DOUBLE_EQ(Mean(v), 4.2);
}

TEST(StatisticsTest, MeanSimple) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
}

TEST(StatisticsTest, VarianceOfConstantsIsZero) {
  std::vector<double> v(5, 7.0);
  EXPECT_DOUBLE_EQ(Variance(v), 0.0);
}

TEST(StatisticsTest, PopulationVsSampleVariance) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-12);
}

TEST(StatisticsTest, StdDevIsSqrtVariance) {
  std::vector<double> v{1.0, 3.0};
  EXPECT_DOUBLE_EQ(StdDev(v), 1.0);
}

TEST(StatisticsTest, MedianOddCount) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
}

TEST(StatisticsTest, MedianEvenCountAveragesCenter) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
}

TEST(StatisticsTest, MedianSingleElement) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(Median(v), 42.0);
}

TEST(StatisticsTest, QuantileEndpoints) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
}

TEST(StatisticsTest, QuantileInterpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
}

TEST(StatisticsTest, MinMax) {
  std::vector<double> v{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
}

TEST(StatisticsTest, PearsonPerfectPositive) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(StatisticsTest, PearsonPerfectNegative) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{5.0, 3.0, 1.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(StatisticsTest, PearsonConstantSideIsZeroByConvention) {
  std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(StatisticsTest, PearsonAffineInvariance) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Gaussian();
    x.push_back(v);
    y.push_back(0.8 * v + 0.3 * rng.Gaussian());
  }
  const double r = PearsonCorrelation(x, y);
  std::vector<double> x2, y2;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x2.push_back(5.0 * x[i] - 100.0);
    y2.push_back(-2.0 * y[i] + 7.0);
  }
  EXPECT_NEAR(PearsonCorrelation(x2, y2), -r, 1e-10);
}

TEST(StatisticsTest, PearsonBounded) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
      x.push_back(rng.Gaussian());
      y.push_back(rng.Gaussian());
    }
    const double r = PearsonCorrelation(x, y);
    EXPECT_GE(r, -1.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(StatisticsTest, EuclideanDistanceKnown) {
  std::vector<double> a{0.0, 0.0};
  std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

TEST(StatisticsTest, DistanceToSelfIsZero) {
  std::vector<double> a{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(StatisticsTest, MidRanksNoTies) {
  std::vector<double> v{30.0, 10.0, 20.0};
  const auto ranks = MidRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(StatisticsTest, MidRanksAveragesTies) {
  std::vector<double> v{1.0, 2.0, 2.0, 3.0};
  const auto ranks = MidRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatisticsTest, MidRanksAllTied) {
  std::vector<double> v{5.0, 5.0, 5.0};
  const auto ranks = MidRanks(v);
  for (double r : ranks) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(StatisticsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(StatisticsTest, ChiSquaredSurvivalKnownValues) {
  // chi2 with 1 dof: P(X > 3.841) = 0.05.
  EXPECT_NEAR(ChiSquaredSurvival(3.841, 1), 0.05, 1e-3);
  // chi2 with 3 dof: P(X > 7.815) = 0.05.
  EXPECT_NEAR(ChiSquaredSurvival(7.815, 3), 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquaredSurvival(0.0, 2), 1.0);
}

TEST(StatisticsTest, ChiSquaredSurvivalMonotone) {
  double previous = 1.0;
  for (double x = 0.5; x < 20.0; x += 0.5) {
    const double s = ChiSquaredSurvival(x, 4);
    EXPECT_LE(s, previous);
    previous = s;
  }
}

}  // namespace
}  // namespace navarchos::util
