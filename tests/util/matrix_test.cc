#include "util/matrix.h"

#include <gtest/gtest.h>

namespace navarchos::util {
namespace {

TEST(MatrixTest, ConstructWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
}

TEST(MatrixTest, RowViewMutates) {
  Matrix m(2, 2);
  auto row = m.Row(1);
  row[0] = 9.0;
  EXPECT_DOUBLE_EQ(m.At(1, 0), 9.0);
}

TEST(MatrixTest, ColCopies) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  const auto col = m.Col(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[1], 4.0);
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix b = Matrix::FromRows({{5.0, 6.0}, {7.0, 8.0}});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, MatMulIdentity) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix identity = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  Matrix c = a.MatMul(identity);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t k = 0; k < 2; ++k) EXPECT_DOUBLE_EQ(c.At(r, k), a.At(r, k));
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a = Matrix::FromRows({{1.0, 2.0, 3.0}});     // 1x3
  Matrix b = Matrix::FromRows({{1.0}, {2.0}, {3.0}}); // 3x1
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 14.0);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix m = Matrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t.At(c, r), m.At(r, c));
}

}  // namespace
}  // namespace navarchos::util
